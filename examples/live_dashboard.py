#!/usr/bin/env python
"""Live dashboard: delta streams, health telemetry and a scrape endpoint.

Builds an instrumented pipeline over a skewed (hotspot) workload: a
2-shard monitor wrapped in a :class:`MonitoringService`, driven by an
:class:`IngestDriver` whose deliberately small DROP_OLDEST buffer sheds
load — so the tiered health policy's drop-rate rule fires soft alerts
while the run keeps going.  Three queries stream onto the dashboard as
pre-chewed deltas (who entered, who left, who merely reordered), every
published delta is verified against a snapshot diff of the monitor's
result table, and the run's health surfaces three ways that must agree:

* per-cycle alert lines as the health monitor emits them,
* the service health snapshot rendered after the run,
* a Prometheus scrape over a real socket, parsed back and compared
  key-for-key against the in-process registry.

Exit code != 0 on any delta mismatch, missing alert, counter/report
disagreement, or scrape divergence.

Run:  python examples/live_dashboard.py
"""

from __future__ import annotations

from repro.ingest.buffer import BackPressurePolicy, IngestBuffer
from repro.ingest.driver import CycleIngestStats, IngestDriver
from repro.ingest.feeds import WorkloadFeed
from repro.mobility.skewed import SkewedGenerator
from repro.mobility.workload import WorkloadSpec
from repro.obs.health import AlertEvent, DropRateSpike, HealthPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import ScrapeServer, parse_prometheus, scrape_text
from repro.service.deltas import ResultDelta, diff_results
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor


def describe(timestamp: int | None, delta: ResultDelta) -> str:
    """One dashboard line per delta."""
    when = "install" if timestamp is None else f"t={timestamp}"
    if delta.terminated:
        return f"[{when}] q{delta.qid}: terminated ({len(delta.outgoing)} drained)"
    parts = []
    for dist, oid in delta.incoming:
        parts.append(f"+obj{oid}@{dist:.3f}")
    for dist, oid in delta.outgoing:
        parts.append(f"-obj{oid}@{dist:.3f}")
    if delta.reordered:
        parts.append("~reordered")
    change = " ".join(parts) if parts else "(no change)"
    nearest = delta.result[0] if delta.result else None
    tail = f"; nearest obj{nearest[1]}@{nearest[0]:.3f}" if nearest else ""
    return f"[{when}] q{delta.qid}: {change}{tail}"


def stable(snapshot: dict) -> dict:
    """Strip the wall-clock series before comparing scrape vs registry."""
    return {k: v for k, v in snapshot.items() if "staleness" not in k}


def main() -> None:
    spec = WorkloadSpec(
        n_objects=600,
        n_queries=12,
        k=4,
        timestamps=8,
        seed=42,
        object_agility=0.6,
        query_agility=0.0,
    )
    workload = SkewedGenerator(spec).generate()

    registry = MetricsRegistry()
    monitor = ShardedMonitor(2, cells_per_axis=32)
    service = MonitoringService(monitor, metrics=registry)

    # Watch three of the queries on the dashboard.  Subscribing to their
    # topics *before* priming means even the install snapshots stream in
    # as all-incoming deltas.
    watched = sorted(workload.initial_queries)[:3]
    lines: list[str] = []
    dashboard = service.subscribe(
        lambda ts, delta: lines.append(describe(ts, delta)), qids=watched
    )
    # The verifier sees everything, no-op deltas included.
    published: dict[int, ResultDelta] = {}
    verifier = service.subscribe(
        lambda ts, delta: published.__setitem__(delta.qid, delta),
        include_unchanged=True,
    )

    mismatches = 0
    previous: dict[int, list] = {}

    def on_cycle(stats: CycleIngestStats) -> None:
        """Verify the cycle's stream, then render the dashboard lines."""
        nonlocal mismatches, previous
        current = monitor.result_table()
        for qid, delta in published.items():
            reference = diff_results(
                qid,
                previous.get(qid, []),
                current.get(qid, []),
                terminated=delta.terminated,
            )
            if delta != reference:
                mismatches += 1
        published.clear()
        previous = current
        for line in lines:
            print(line)
        lines.clear()
        if stats.dropped:
            print(
                f"  load shed at t={stats.timestamp}: {stats.offered} offered, "
                f"{stats.dropped} dropped, {stats.applied} applied"
            )

    alerts: list[AlertEvent] = []

    def on_alert(event: AlertEvent) -> None:
        alerts.append(event)
        print(f"  ALERT [{event.level}] {event.rule}: {event.message}")

    # A buffer an order of magnitude smaller than a cycle's update volume:
    # DROP_OLDEST keeps the pipeline live and the drop-rate rule alerting.
    driver = IngestDriver(
        WorkloadFeed(workload),
        service,
        buffer=IngestBuffer(capacity=64, policy=BackPressurePolicy.DROP_OLDEST),
        metrics=registry,
        health=HealthPolicy(rules=(DropRateSpike(max_rate=0.05, min_offered=10),)),
        on_alert=on_alert,
        on_cycle=on_cycle,
    )
    driver.prime(k=spec.k)
    # The installs streamed as all-incoming deltas; verification starts
    # from the post-prime table, so drop them from the pending set.
    published.clear()
    previous = monitor.result_table()

    print(
        f"watching queries {watched} on {monitor.n_shards} shards "
        f"(query load per shard: {monitor.shard_query_counts()})"
    )
    for line in lines:
        print(line)
    lines.clear()

    report = driver.run()

    # The handle-free view: the monitor agrees with the delta-built picture.
    nearest = monitor.result(watched[0])[0]
    print(f"q{watched[0]} final snapshot: nearest obj{nearest[1]}@{nearest[0]:.3f}")

    health = service.health_snapshot()
    print(
        "health snapshot: "
        + ", ".join(f"{key}={value}" for key, value in sorted(health.items()))
    )
    print(
        f"run complete: {report.n_cycles} cycles, "
        f"{report.total_offered} offered / {report.total_applied} applied "
        f"({report.total_dropped} dropped, {report.total_coalesced} coalesced), "
        f"{dashboard.delivered} dashboard deltas, {len(report.alerts)} soft alerts, "
        f"{mismatches} mismatching deltas"
    )

    # The scrape path: what a Prometheus poller sees over the socket must
    # equal the in-process registry, key for key.
    with ScrapeServer(registry) as scrape_server:
        body = scrape_text(scrape_server.host, scrape_server.port)
    scraped = parse_prometheus(body)
    scrape_ok = stable(scraped) == stable(registry.snapshot())
    ticks = scraped.get("repro_service_ticks_total", 0)
    print(
        f"scrape: {len(scraped)} series from {scrape_server.host}:"
        f"{scrape_server.port}, ticks={ticks}, "
        f"matches registry: {scrape_ok}"
    )

    dashboard.close()
    verifier.close()
    failures = []
    if mismatches:
        failures.append(f"{mismatches} deltas diverged from snapshot diffs")
    if not report.alerts or report.alerts != alerts:
        failures.append("drop-rate soft alerts missing or unrelayed")
    if any(event.level != "soft" for event in alerts):
        failures.append("a hard alert fired in a soft-only policy")
    if health["ticks"] != report.n_cycles or not ticks:
        failures.append("health snapshot disagrees with the run report")
    if registry.snapshot()["repro_ingest_dropped_total"] != report.total_dropped:
        failures.append("registry drop counter disagrees with the report")
    if not scrape_ok:
        failures.append("remote scrape diverged from the registry")
    if failures:
        print("FAILED: " + "; ".join(failures))
        raise SystemExit(1)


if __name__ == "__main__":
    main()
