#!/usr/bin/env python
"""Live dashboard: per-query delta streams through the client API.

Builds a :class:`repro.api.session.Session` over a 2-shard monitoring
service on a skewed (hotspot) workload, registers every query through
the typed-spec API, watches a handful of them on per-query topics and
prints the delta stream — which neighbors entered each watched result,
which left, and when only the ordering shifted.  A full-table subscriber
would have to diff snapshots itself; the delta stream hands the change
over pre-chewed, and the hub's topic routing means a dashboard watching
3 queries never even touches the other queries' traffic.

Every published delta is verified against a snapshot diff of the
monitor's result table, so the example doubles as an end-to-end check of
the service layer (exit code != 0 on any mismatch).

Run:  python examples/live_dashboard.py
"""

from __future__ import annotations

from repro.api.queries import KnnSpec
from repro.api.session import Session
from repro.mobility.skewed import SkewedGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.deltas import ResultDelta, diff_results
from repro.service.sharding import ShardedMonitor


def describe(timestamp: int | None, delta: ResultDelta) -> str:
    """One dashboard line per delta."""
    when = "install" if timestamp is None else f"t={timestamp}"
    if delta.terminated:
        return f"[{when}] q{delta.qid}: terminated ({len(delta.outgoing)} drained)"
    parts = []
    for dist, oid in delta.incoming:
        parts.append(f"+obj{oid}@{dist:.3f}")
    for dist, oid in delta.outgoing:
        parts.append(f"-obj{oid}@{dist:.3f}")
    if delta.reordered:
        parts.append("~reordered")
    change = " ".join(parts) if parts else "(no change)"
    nearest = delta.result[0] if delta.result else None
    tail = f"; nearest obj{nearest[1]}@{nearest[0]:.3f}" if nearest else ""
    return f"[{when}] q{delta.qid}: {change}{tail}"


def main() -> None:
    spec = WorkloadSpec(
        n_objects=600,
        n_queries=12,
        k=4,
        timestamps=8,
        seed=42,
        object_agility=0.6,
        query_agility=0.2,
    )
    workload = SkewedGenerator(spec).generate()

    monitor = ShardedMonitor(2, cells_per_axis=32)
    session = Session(monitor)

    # Watch three of the queries on the dashboard.  Subscribing to their
    # topics *before* registration means even the install snapshots
    # stream in as all-incoming deltas.
    watched = sorted(workload.initial_queries)[:3]
    lines: list[str] = []
    dashboard = session.subscribe(
        lambda ts, delta: lines.append(describe(ts, delta)), qids=watched
    )
    # A firehose subscriber counting every changed query in the system.
    firehose = session.subscribe(lambda ts, delta: None)
    # The verifier sees everything, no-op deltas included.
    published: dict[int, ResultDelta] = {}
    verifier = session.subscribe(
        lambda ts, delta: published.__setitem__(delta.qid, delta),
        include_unchanged=True,
    )

    session.load_objects(workload.initial_objects.items())
    handles = {
        qid: session.register(KnnSpec(point=point, k=spec.k), qid=qid)
        for qid, point in workload.initial_queries.items()
    }

    print(f"watching queries {watched} on {monitor.n_shards} shards "
          f"(query load per shard: {monitor.shard_query_counts()})")
    for line in lines:
        print(line)
    lines.clear()

    mismatches = 0
    previous = monitor.result_table()
    for batch in workload.batches:
        published.clear()
        session.tick_batch(batch)
        current = monitor.result_table()
        # Verify the stream: every delta must equal the snapshot diff.
        for qid, delta in published.items():
            reference = diff_results(
                qid,
                previous.get(qid, []),
                current.get(qid, []),
                terminated=delta.terminated,
            )
            if delta != reference:
                mismatches += 1
        previous = current
        for line in lines:
            print(line)
        lines.clear()

    # The handle view agrees with the delta-built picture.
    sample = handles[watched[0]]
    nearest = sample.snapshot()[0]
    print(f"handle q{sample.qid} snapshot: nearest obj{nearest[1]}@{nearest[0]:.3f}")

    print(
        f"stream complete: {dashboard.delivered} deltas on the dashboard, "
        f"{firehose.delivered} deltas on the firehose, "
        f"{mismatches} mismatching deltas"
    )
    dashboard.close()
    firehose.close()
    verifier.close()
    session.close()
    if mismatches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
