#!/usr/bin/env python
"""Ride hailing: each rider continuously monitors the 3 nearest taxis.

The scenario the paper's introduction motivates: taxis (objects) move
along a road network; riders (queries) watch their k nearest taxis in
real time.  We build a synthetic city road network, drive 600 taxis on
shortest paths, and install one continuous 3-NN query per rider.  Every
cycle the results are verified against a brute-force scan.

Run:  python examples/ride_hailing.py
"""

from __future__ import annotations

from repro import (
    BrinkhoffGenerator,
    BruteForceMonitor,
    CPMMonitor,
    WorkloadSpec,
    grid_network,
    replay_workload,
)


def main() -> None:
    spec = WorkloadSpec(
        n_objects=600,      # taxis
        n_queries=8,        # riders
        k=3,                # nearest taxis each rider watches
        object_speed="medium",
        query_speed="slow",  # riders walk, taxis drive
        object_agility=0.8,  # most taxis move every tick
        query_agility=0.2,
        timestamps=20,
        seed=42,
    )
    city = grid_network(12, 12, jitter=0.35, dropout=0.15, seed=42)
    workload = BrinkhoffGenerator(spec, city).generate()
    print(
        f"city: {city.node_count} intersections, {city.edge_count} roads; "
        f"{spec.n_objects} taxis, {spec.n_queries} riders"
    )

    cpm_log: list = []
    brute_log: list = []
    cpm_report = replay_workload(
        CPMMonitor(cells_per_axis=32),
        workload,
        collect_results=True,
        result_log=cpm_log,
    )
    replay_workload(
        BruteForceMonitor(), workload, collect_results=True, result_log=brute_log
    )

    # Verify: CPM's answer distances equal brute force at every timestamp
    # (ids may differ only on exact distance ties).
    def dist_table(table):
        return {qid: [d for d, _oid in entries] for qid, entries in table.items()}

    mismatches = sum(
        1
        for got, want in zip(cpm_log, brute_log)
        if dist_table(got) != dist_table(want)
    )
    print(f"verification: {mismatches} mismatching cycles (expected 0)")

    # Show one rider's taxi feed over time.
    rider = sorted(workload.initial_queries)[0]
    print(f"\nrider {rider}: nearest taxi over time")
    for t, table in enumerate(cpm_log[1:], start=0):
        dist, taxi = table[rider][0]
        print(f"  t={t:2d}: taxi {taxi:4d} at {dist:.4f}")

    print(
        f"\nCPM totals: {cpm_report.total_processing_sec * 1000:.1f} ms processing, "
        f"{cpm_report.total_cell_scans} cell scans, "
        f"{cpm_report.cell_accesses_per_query_per_timestamp:.2f} accesses/rider/tick"
    )


if __name__ == "__main__":
    main()
