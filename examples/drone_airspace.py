#!/usr/bin/env python
"""Drone airspace: 3-dimensional continuous NN monitoring.

Footnote 3 of the paper notes CPM "can be applied to higher
dimensionality".  Here a control tower continuously monitors the 3
nearest drones in a 1 km x 1 km x 120 m airspace — a genuinely
3-dimensional problem (vertical separation matters).

Run:  python examples/drone_airspace.py
"""

from __future__ import annotations

import math
import random

from repro.ndim.cpm import NdCPMMonitor
from repro.updates import ObjectUpdate

AIRSPACE = [(0.0, 1000.0), (0.0, 1000.0), (0.0, 120.0)]  # meters


def main() -> None:
    rng = random.Random(99)

    monitor = NdCPMMonitor(cells_per_axis=8, bounds=AIRSPACE)
    drones = {
        oid: (
            rng.uniform(0, 1000),
            rng.uniform(0, 1000),
            rng.uniform(10, 120),
        )
        for oid in range(200)
    }
    monitor.load_objects(drones.items())

    tower = (500.0, 500.0, 0.0)
    result = monitor.install_query(qid=0, point=tower, k=3)
    print("tower at (500, 500, 0): three nearest drones")
    for dist, oid in result:
        x, y, z = drones[oid]
        print(f"  drone {oid:3d} at ({x:6.1f}, {y:6.1f}, {z:5.1f}) m, range {dist:6.1f} m")

    print("\nsimulating 10 radar sweeps (40% of drones move each sweep):")
    for sweep in range(10):
        updates = []
        for oid in rng.sample(sorted(drones), 80):
            old = drones[oid]
            new = (
                min(max(old[0] + rng.uniform(-40, 40), 0.0), 1000.0),
                min(max(old[1] + rng.uniform(-40, 40), 0.0), 1000.0),
                min(max(old[2] + rng.uniform(-8, 8), 0.0), 120.0),
            )
            drones[oid] = new
            updates.append(ObjectUpdate(oid, old, new))
        changed = monitor.process(updates)
        nearest = monitor.result(0)[0]
        print(
            f"  sweep {sweep}: nearest = drone {nearest[1]:3d} at "
            f"{nearest[0]:6.1f} m ({'changed' if 0 in changed else 'stable'})"
        )

    # Brute-force verification in 3D.
    expected = sorted(
        (math.dist(p, tower), oid) for oid, p in drones.items()
    )[:3]
    assert monitor.result(0) == expected
    print("\nbrute-force verification (3D): OK")


if __name__ == "__main__":
    main()
