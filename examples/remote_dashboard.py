#!/usr/bin/env python
"""Remote dashboard: two processes, one ndjson wire protocol.

The **server process** hosts a CPM monitor behind a
:class:`repro.api.server.MonitorSocketServer` on a localhost socket.
The **client process** (this one) connects with
:class:`repro.api.client.Client`, registers kNN queries through the
versioned wire protocol, streams the workload's object updates in and
receives per-query result deltas back.

Two properties are verified (exit code != 0 on failure):

* **isolation** — the client subscribes to only one of its queries, and
  every ``delta`` frame that arrives on the connection belongs to that
  query: the server's per-query topic routing, observed from outside.
* **fidelity** — an in-process :class:`repro.api.session.Session`
  replays the identical workload; both delta streams are re-encoded as
  wire frames and must match **byte for byte**.

Both processes derive the same deterministic workload from the same
seed, so nothing but queries, updates and deltas crosses the socket.

Run:  python examples/remote_dashboard.py
"""

from __future__ import annotations

import subprocess
import sys

from repro.api import wire
from repro.api.client import Client
from repro.api.queries import KnnSpec
from repro.api.server import MonitorSocketServer
from repro.api.session import Session
from repro.core.cpm import CPMMonitor
from repro.mobility.skewed import SkewedGenerator
from repro.mobility.workload import WorkloadSpec

SPEC = WorkloadSpec(
    n_objects=400,
    n_queries=6,
    k=3,
    timestamps=6,
    seed=77,
    object_agility=0.5,
    query_agility=0.0,  # queries move only through the client's API
)
CELLS = 32


def build_workload():
    return SkewedGenerator(SPEC).generate()


def serve() -> None:
    """The server process: monitor + socket endpoint, port on stdout."""
    workload = build_workload()
    session = Session(CPMMonitor(cells_per_axis=CELLS))
    session.load_objects(workload.initial_objects.items())
    server = MonitorSocketServer(session, "127.0.0.1", 0, name="remote-dashboard")
    host, port = server.start()
    print(f"PORT {port}", flush=True)
    # Serve until the parent kills us (examples-smoke bounds the runtime).
    import time

    time.sleep(120)


def main() -> None:
    if "--serve" in sys.argv:
        serve()
        return

    workload = build_workload()
    queries = sorted(workload.initial_queries.items())[:2]
    (watched_qid, watched_point), (silent_qid, silent_point) = queries

    # ---- process 1: the server ---------------------------------------
    proc = subprocess.Popen(
        [sys.executable, __file__, "--serve"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("PORT "), f"unexpected server output: {line!r}"
        port = int(line.split()[1])
        print(f"server process {proc.pid} listening on 127.0.0.1:{port}")

        # ---- process 2 (this one): the wire client -------------------
        client = Client.connect("127.0.0.1", port, client_name="dashboard")
        frames: list[wire.Delta] = []
        client.delta_frame_log = frames  # record *everything* that arrives

        watched = client.register(
            KnnSpec(point=watched_point, k=SPEC.k), qid=watched_qid
        )
        silent = client.register(
            KnnSpec(point=silent_point, k=SPEC.k), qid=silent_qid, watch=False
        )
        remote_lines: list[str] = []
        watched.subscribe(
            lambda ts, d: remote_lines.append(wire.encode_delta(ts, d))
        )
        print(
            f"registered q{watched.qid} (subscribed) and q{silent.qid} "
            f"(unwatched) over the wire; initial |NN| = "
            f"{len(watched.snapshot())}/{len(silent.snapshot())}"
        )

        for batch in workload.batches:
            client.send_updates(batch.object_updates)
            changed = client.tick(timestamp=batch.timestamp)
            print(
                f"t={batch.timestamp}: {len(batch.object_updates)} updates "
                f"sent, {len(changed)} queries changed, "
                f"{len(remote_lines)} deltas streamed so far"
            )
        client.close()
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    # ---- isolation: only the subscribed topic crossed the socket -----
    leaked = sorted({f.delta.qid for f in frames} - {watched_qid})
    print(
        f"isolation: {len(frames)} delta frames on the connection, "
        f"leaked topics: {leaked if leaked else 'none'}"
    )

    # ---- fidelity: byte-equivalent to an in-process session ----------
    local = Session(CPMMonitor(cells_per_axis=CELLS))
    local.load_objects(workload.initial_objects.items())
    local_watched = local.register(
        KnnSpec(point=watched_point, k=SPEC.k), qid=watched_qid
    )
    local.register(KnnSpec(point=silent_point, k=SPEC.k), qid=silent_qid)
    local_lines: list[str] = []
    local_watched.subscribe(
        lambda ts, d: local_lines.append(wire.encode_delta(ts, d))
    )
    for batch in workload.batches:
        local.tick_batch(batch)

    matches = remote_lines == local_lines
    print(
        f"fidelity: {len(remote_lines)} remote vs {len(local_lines)} local "
        f"delta frames — byte-identical: {matches}"
    )
    if remote_lines and matches:
        print(f"sample frame: {remote_lines[-1]}")
    if leaked or not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
