#!/usr/bin/env python
"""Algorithm shootout: CPM vs YPK-CNN vs SEA-CNN on one workload.

Replays an identical Brinkhoff-style update stream into all three
monitoring algorithms (plus the brute-force oracle for verification) and
prints the Section 6 metrics side by side: CPU time, cell accesses per
query per timestamp, and total cell scans.

Run:  python examples/algorithm_shootout.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro import (
    BruteForceMonitor,
    replay_workload,
)
from repro.experiments.common import (
    build_monitor,
    make_workload,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import format_table


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's workload size (default 0.05)")
    args = parser.parse_args(argv)

    spec = scaled_spec(args.scale)
    grid = scaled_grid(args.scale)
    print(
        f"workload: N={spec.n_objects} objects, n={spec.n_queries} queries, "
        f"k={spec.k}, T={spec.timestamps} timestamps, grid {grid}x{grid}"
    )
    workload = make_workload(spec)

    rows = []
    logs = {}
    for name in ("CPM", "YPK-CNN", "SEA-CNN"):
        log: list = []
        report = replay_workload(
            build_monitor(name, grid),
            workload,
            collect_results=True,
            result_log=log,
        )
        logs[name] = log
        rows.append([
            name,
            f"{report.total_processing_sec:.3f}",
            f"{report.cell_accesses_per_query_per_timestamp:.2f}",
            report.total_cell_scans,
            report.total_results_changed,
        ])

    brute_log: list = []
    replay_workload(
        BruteForceMonitor(), workload, collect_results=True, result_log=brute_log
    )

    print()
    print(format_table(
        ["algorithm", "cpu (s)", "accesses/q/ts", "cell scans", "result changes"],
        rows,
    ))

    # Compare result *distances* (object ids may legitimately differ when
    # several objects tie at exactly the k-th distance — common on a
    # lattice road network).
    def distances(log):
        return [
            {qid: [d for d, _oid in entries] for qid, entries in table.items()}
            for table in log
        ]

    reference = distances(brute_log)
    ok = all(distances(logs[name]) == reference for name in logs)
    print(f"\nall algorithms agree with brute force on every cycle: {ok}")


if __name__ == "__main__":
    main()
