#!/usr/bin/env python
"""Partition gallery: the paper's figures, rendered in ASCII.

Draws the conceptual partitioning of Figure 3.1b (point query and
aggregate-query MBR variants), a live influence region, and the object
density of a skewed grid — all with the library's terminal renderers.

Run:  python examples/partition_gallery.py
"""

from __future__ import annotations

from repro import CPMMonitor, WorkloadSpec
from repro.core.partition import ConceptualPartition
from repro.core.strategies import AggregateNNStrategy
from repro.mobility.skewed import SkewedGenerator
from repro.vis.ascii import (
    partition_legend,
    render_grid_occupancy,
    render_influence_region,
    render_partition,
)


def main() -> None:
    print("Figure 3.1b — conceptual partitioning around a query cell:")
    partition = ConceptualPartition.around_cell((4, 4), 9, 9)
    print(render_partition(partition))
    print(partition_legend())

    print("\nFigure 5.1a — partitioning around an aggregate query's MBR:")
    monitor = CPMMonitor(cells_per_axis=9)
    strategy = AggregateNNStrategy([(0.30, 0.35), (0.55, 0.45), (0.45, 0.60)], "sum")
    block = strategy.partition(monitor.grid)
    print(render_partition(block))

    print("\nA live influence region (200 objects, k=8):")
    import random

    rng = random.Random(5)
    monitor = CPMMonitor(cells_per_axis=24)
    monitor.load_objects(
        (oid, (rng.random(), rng.random())) for oid in range(200)
    )
    monitor.install_query(0, (0.45, 0.55), k=8)
    print(render_influence_region(monitor, 0))
    print("Q = query cell, # = influence region (marked cells)")

    print("\nObject density of a skewed workload (4 hotspots):")
    spec = WorkloadSpec(n_objects=600, n_queries=0, timestamps=0, seed=2)
    workload = SkewedGenerator(spec, hotspots=4, spread=0.05).generate()
    from repro.grid.grid import Grid

    grid = Grid(24)
    for oid, (x, y) in workload.initial_objects.items():
        grid.insert(oid, x, y)
    print(render_grid_occupancy(grid))


if __name__ == "__main__":
    main()
