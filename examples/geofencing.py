#!/usr/bin/env python
"""Geofencing: continuous range monitoring on the CPM substrate.

A logistics operator watches three geofences (delivery zones) over a
fleet moving on a road network.  Zone membership is maintained purely
from the update stream — the monitor never rescans a grid cell after
installation, the best case of the influence-list methodology.

Run:  python examples/geofencing.py
"""

from __future__ import annotations

from repro import BrinkhoffGenerator, Rect, WorkloadSpec, grid_network
from repro.core.range_monitor import GridRangeMonitor


def main() -> None:
    spec = WorkloadSpec(
        n_objects=500,
        n_queries=0,          # range queries are installed manually below
        object_speed="medium",
        object_agility=0.7,
        timestamps=15,
        seed=19,
    )
    network = grid_network(10, 10, seed=19)
    workload = BrinkhoffGenerator(spec, network).generate()

    monitor = GridRangeMonitor(cells_per_axis=32)
    monitor.load_objects(workload.initial_objects.items())

    zones = {
        "dock-north": Rect(0.10, 0.70, 0.45, 0.95),
        "downtown":   Rect(0.35, 0.35, 0.65, 0.65),
        "airport":    Rect(0.70, 0.05, 0.95, 0.30),
    }
    for qid, (name, rect) in enumerate(zones.items()):
        members = monitor.install_range_query(qid, rect)
        print(f"zone {name:10s}: {len(members):3d} vehicles initially inside")

    print("\nstreaming updates (cell scans should stay at zero):")
    monitor.reset_stats()
    positions = dict(workload.initial_objects)
    for batch in workload.batches:
        changed = monitor.process(batch.object_updates)
        for upd in batch.object_updates:
            if upd.new is None:
                positions.pop(upd.oid, None)
            else:
                positions[upd.oid] = upd.new
        sizes = ", ".join(
            f"{name}={len(monitor.result(qid))}"
            for qid, name in enumerate(zones)
        )
        print(f"  t={batch.timestamp:2d}: {len(changed)} zones changed ({sizes})")

    print(f"\ncell scans during the whole stream: {monitor.stats.cell_scans}")

    # Verify against brute force.
    ok = all(
        monitor.result(qid)
        == {o for o, p in positions.items() if rect.contains_point(*p)}
        for qid, rect in enumerate(zones.values())
    )
    print(f"brute-force verification: {'OK' if ok else 'MISMATCH'}")


if __name__ == "__main__":
    main()
