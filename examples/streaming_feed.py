#!/usr/bin/env python
"""Streaming ingestion: a live feed that outruns the monitor.

A Brinkhoff-style generator feed runs on its own producer thread,
pushing location updates into a deliberately small ingest buffer as fast
as it can — far faster than the consumer's cycle budget.  The
:class:`repro.ingest.IngestDriver` drains the buffer on batch-size /
deadline triggers into a CPM-backed monitoring service over the columnar
``tick_flat`` fast path, printing the back-pressure accounting per
cycle: how many updates the feed offered, how many coalesced into a
pending object (last-write-wins), how many the DROP_OLDEST policy shed,
and whether the cycle overran its deadline.

The run self-verifies (exit code != 0 on mismatch): every applied batch
is recorded, and an offline replay of that exact coalesced stream into a
fresh monitor must reproduce the live end state — drops lose freshness,
never consistency.

Run:  python examples/streaming_feed.py
"""

from __future__ import annotations

from repro.core.cpm import CPMMonitor
from repro.ingest import (
    BackPressurePolicy,
    GeneratorFeed,
    IngestBuffer,
    IngestDriver,
    ThreadedFeedPump,
)
from repro.mobility.workload import WorkloadSpec
from repro.service.service import MonitoringService

#: nearly every object moves every timestamp (sampled in random order):
#: the firehose setting.
SPEC = WorkloadSpec(
    n_objects=400,
    n_queries=8,
    k=4,
    timestamps=40,
    seed=2026,
    object_speed="fast",
    object_agility=0.9,
    query_agility=0.0,
)

GRID = 16
BUFFER_CAPACITY = 160
MAX_BATCH = 32
CYCLE_DEADLINE = 0.01  # seconds: far less than the feed needs per step


def main() -> None:
    feed = GeneratorFeed(SPEC, timestamps=SPEC.timestamps)
    buffer = IngestBuffer(
        capacity=BUFFER_CAPACITY, policy=BackPressurePolicy.DROP_OLDEST
    )
    service = MonitoringService(CPMMonitor(GRID, bounds=SPEC.bounds))

    def show(stats) -> None:
        overrun = " OVERRUN" if stats.deadline_overrun else ""
        print(
            f"cycle {stats.cycle:>3} [{stats.trigger:>8}] "
            f"offered={stats.offered:>4} coalesced={stats.coalesced:>4} "
            f"dropped={stats.dropped:>4} applied={stats.applied:>3} "
            f"changed={stats.changed:>2}"
            f" ingest={stats.ingest_sec * 1e3:5.1f}ms"
            f" tick={stats.process_sec * 1e3:5.1f}ms{overrun}"
        )

    driver = IngestDriver(
        feed,
        service,
        buffer=buffer,
        max_batch=MAX_BATCH,
        cycle_deadline=CYCLE_DEADLINE,
        honor_marks=False,
        record=True,
        on_cycle=show,
    )
    driver.prime(k=SPEC.k)

    print(
        f"live feed: {SPEC.n_objects} objects at 100% agility; "
        f"buffer capacity {BUFFER_CAPACITY} ({buffer.policy.value}), "
        f"cycle = {MAX_BATCH} updates or {CYCLE_DEADLINE * 1e3:.0f}ms"
    )
    pump = ThreadedFeedPump(feed, buffer).start()
    report = driver.run(from_buffer=True)
    pump.stop()

    print(
        f"\n{report.n_cycles} cycles: offered={report.total_offered} "
        f"applied={report.total_applied} coalesced={report.total_coalesced} "
        f"dropped={report.total_dropped} overruns={report.deadline_overruns}"
    )
    if report.total_coalesced + report.total_dropped == 0:
        print("warning: the feed never outran the buffer on this machine")

    # Offline verification: replay the recorded coalesced stream into a
    # fresh monitor; the end state must match the live service exactly.
    offline = CPMMonitor(GRID, bounds=SPEC.bounds)
    offline.load_objects(sorted(feed.initial_objects().items()))
    for qid, point in sorted(feed.initial_queries().items()):
        offline.install_query(qid, point, SPEC.k)
    for batch in driver.recorded:
        offline.process_flat(batch)

    live = service.monitor.result_table()
    replayed = offline.result_table()
    ok = replayed == live and offline.object_count == service.monitor.object_count
    print(
        f"offline replay of the recorded stream: "
        f"{'MATCHES the live end state' if ok else 'MISMATCH'}"
    )
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
