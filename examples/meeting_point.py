#!/usr/bin/env python
"""Meeting point: aggregate-NN monitoring for a group of friends.

Section 5's motivating scenario.  Three friends move through the city;
the system continuously reports the restaurant (static object) that
optimizes the group trip under each aggregate:

* ``sum`` — minimizes the total distance everyone travels;
* ``max`` — minimizes the arrival time of the last friend;
* ``min`` — the restaurant closest to any single friend.

Run:  python examples/meeting_point.py
"""

from __future__ import annotations

import random

from repro import CPMMonitor, ObjectUpdate, adist


def main() -> None:
    rng = random.Random(3)

    # 400 restaurants scattered over the city (static objects).
    restaurants = {oid: (rng.random(), rng.random()) for oid in range(400)}

    # Three friends starting in different districts.
    friends = [(0.15, 0.20), (0.80, 0.25), (0.50, 0.85)]

    monitors = {}
    for fn in ("sum", "max", "min"):
        monitor = CPMMonitor(cells_per_axis=32)
        monitor.load_objects(restaurants.items())
        monitor.install_ann_query(qid=0, points=friends, k=1, fn=fn)
        monitors[fn] = monitor

    print("initial recommendations:")
    for fn, monitor in monitors.items():
        dist, oid = monitor.result(0)[0]
        print(f"  f={fn:3s}: restaurant {oid:3d} (adist {dist:.4f})")

    # A new restaurant opens right between the friends — all three
    # aggregates should notice without rescanning the grid.
    centroid = (
        sum(x for x, _y in friends) / 3.0,
        sum(y for _x, y in friends) / 3.0,
    )
    print(f"\na new restaurant (#999) opens at the centroid {centroid}:")
    for fn, monitor in monitors.items():
        monitor.reset_stats()
        monitor.process([ObjectUpdate(999, None, centroid)])
        dist, oid = monitor.result(0)[0]
        note = "<- the newcomer" if oid == 999 else ""
        print(
            f"  f={fn:3s}: restaurant {oid:3d} (adist {dist:.4f}, "
            f"{monitor.stats.cell_scans} cell scans) {note}"
        )

    # Sanity check against a direct aggregate-distance scan.
    restaurants[999] = centroid
    print("\nbrute-force verification:")
    for fn, monitor in monitors.items():
        best = min(
            (adist(p, friends, fn), oid) for oid, p in restaurants.items()
        )
        got = monitor.result(0)[0]
        ok = "OK" if abs(best[0] - got[0]) < 1e-9 and best[1] == got[1] else "MISMATCH"
        print(f"  f={fn:3s}: {ok}")


if __name__ == "__main__":
    main()
