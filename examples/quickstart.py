#!/usr/bin/env python
"""Quickstart: continuous k-NN monitoring with CPM in ~40 lines.

Index a handful of moving objects in the grid, install a 3-NN query,
stream a few update cycles and watch the result stay current.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import CPMMonitor, ObjectUpdate


def main() -> None:
    rng = random.Random(7)

    # 1. A CPM monitor over the unit square with a 64x64 grid.
    monitor = CPMMonitor(cells_per_axis=64)

    # 2. Load an initial population of 1000 objects.
    positions = {oid: (rng.random(), rng.random()) for oid in range(1000)}
    monitor.load_objects(positions.items())

    # 3. Install a continuous 3-NN query at the center.
    result = monitor.install_query(qid=0, point=(0.5, 0.5), k=3)
    print("initial 3-NN result:")
    for dist, oid in result:
        print(f"  object {oid:4d} at distance {dist:.4f}")

    # 4. Stream five update cycles: 10% of objects move each timestamp.
    for t in range(5):
        updates = []
        for oid in rng.sample(sorted(positions), 100):
            old = positions[oid]
            new = (
                min(max(old[0] + rng.uniform(-0.05, 0.05), 0.0), 1.0),
                min(max(old[1] + rng.uniform(-0.05, 0.05), 0.0), 1.0),
            )
            positions[oid] = new
            updates.append(ObjectUpdate(oid, old, new))
        changed = monitor.process(updates)
        status = "result changed" if 0 in changed else "result unchanged"
        best = monitor.result(0)[0]
        print(
            f"t={t}: {len(updates)} updates, {status}; "
            f"nearest = object {best[1]} at {best[0]:.4f} "
            f"({monitor.stats.cell_scans} cell scans this run)"
        )

    print("\nCPM touched the grid only when the update stream demanded it.")


if __name__ == "__main__":
    main()
