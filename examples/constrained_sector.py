#!/usr/bin/env python
"""Constrained NN monitoring: watch the nearest object inside a sector.

Figure 5.3's scenario: a dispatcher at q only cares about units to the
northeast (say, the direction of an incident).  CPM restricts the search
and the monitoring to cells intersecting the constraint region; objects
outside it never enter the result, no matter how close they come.

Run:  python examples/constrained_sector.py
"""

from __future__ import annotations

import random

from repro import CPMMonitor, ObjectUpdate, Rect


def main() -> None:
    rng = random.Random(11)

    monitor = CPMMonitor(cells_per_axis=32)
    units = {oid: (rng.random(), rng.random()) for oid in range(300)}
    monitor.load_objects(units.items())

    q = (0.5, 0.5)
    northeast = Rect(0.5, 0.5, 1.0, 1.0)
    result = monitor.install_constrained_query(qid=0, point=q, region=northeast, k=2)
    print("dispatcher at (0.5, 0.5), sector = northeast quadrant")
    print("initial 2 nearest units in sector:")
    for dist, oid in result:
        x, y = units[oid]
        print(f"  unit {oid:3d} at ({x:.3f}, {y:.3f}), distance {dist:.4f}")

    # A unit rushes toward the dispatcher but from the southwest: it gets
    # arbitrarily close yet never enters the sector-constrained result.
    intruder = max(
        units, key=lambda o: (units[o][0] - 0.5) ** 2 + (units[o][1] - 0.5) ** 2
    )
    print(f"\nunit {intruder} approaches from the southwest (outside sector):")
    monitor.process([ObjectUpdate(intruder, units[intruder], (0.499, 0.499))])
    units[intruder] = (0.499, 0.499)
    top = monitor.result(0)
    assert intruder not in [oid for _d, oid in top]
    print(f"  result unchanged: {[oid for _d, oid in top]} (intruder excluded)")

    # The same unit crosses into the sector: now it dominates the result.
    print(f"unit {intruder} crosses into the sector at (0.501, 0.501):")
    monitor.process([ObjectUpdate(intruder, units[intruder], (0.501, 0.501))])
    units[intruder] = (0.501, 0.501)
    top = monitor.result(0)
    print(f"  new nearest-in-sector: unit {top[0][1]} at distance {top[0][0]:.4f}")
    assert top[0][1] == intruder

    # Verify against a filtered brute-force scan.
    import math

    expected = sorted(
        (math.hypot(x - q[0], y - q[1]), oid)
        for oid, (x, y) in units.items()
        if northeast.contains_point(x, y)
    )[:2]
    assert monitor.result(0) == expected
    print("\nbrute-force verification: OK")


if __name__ == "__main__":
    main()
