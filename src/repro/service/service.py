"""The cycle-driven monitoring service facade.

A :class:`MonitoringService` couples one monitor — single-engine or
:class:`repro.service.sharding.ShardedMonitor` — with a
:class:`repro.service.subscriptions.SubscriptionHub`.  Callers feed it
update batches (:meth:`tick`); the service decides per cycle whether the
cheap path (``process``/``process_flat``) suffices or the delta path
(``process_deltas``/``process_deltas_flat``) must run to feed
subscribers, and publishes the resulting stream through the hub's
per-query routing.

Programs normally talk to the service through the typed client surface
(:class:`repro.api.session.Session` in-process,
:class:`repro.api.client.Client` over a socket); the replay loop
(:meth:`repro.api.session.Session.replay`) and the ingest driver drive
it batch by batch.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.geometry.points import Point
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.obs.metrics import MetricsRegistry
from repro.service.deltas import diff_results
from repro.service.subscriptions import SubscriptionHub
from repro.updates import FlatUpdateBatch, ObjectUpdate, QueryUpdate, UpdateBatch


@dataclass(slots=True)
class TickReport:
    """Everything one processing cycle produced, for callers that need
    more than the bare changed-set (the ingestion driver, dashboards).

    ``timestamp`` is echoed back verbatim: the service itself only
    *labels* cycles with it (see :meth:`MonitoringService.tick`), it never
    interprets it.
    """

    timestamp: int | None
    #: ids of queries whose result changed this cycle (the
    #: :meth:`ContinuousMonitor.process` contract).
    changed: set[int] = field(default_factory=set)
    #: whether the delta path ran (i.e. subscribers were listening).
    streamed: bool = False
    object_updates: int = 0
    query_updates: int = 0
    #: wall-clock spent producing the cycle's outcome: the monitor's
    #: update handling *plus*, when :attr:`streamed` is set, the
    #: per-query delta diffing of the ``process_deltas`` path.  On the
    #: no-subscriber cheap path this is exactly the monitor's cycle
    #: time; either way it excludes subscriber fan-out, which is
    #: reported separately as :attr:`publish_sec`.
    process_sec: float = 0.0
    #: wall-clock spent inside ``SubscriptionHub.publish`` delivering the
    #: cycle's deltas to subscriber callbacks (0.0 when not streamed).
    publish_sec: float = 0.0
    #: the service's health snapshot taken right after the cycle
    #: (:meth:`MonitoringService.health_snapshot`); ``None`` unless a
    #: metrics registry is attached — the uninstrumented path builds
    #: nothing.
    health: dict[str, int | float] | None = None


class MonitoringService:
    """One monitor plus delta streaming, driven cycle by cycle."""

    def __init__(
        self,
        monitor: ContinuousMonitor,
        *,
        hub: SubscriptionHub | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.monitor = monitor
        self.hub = hub if hub is not None else SubscriptionHub()
        #: timestamp handed to :meth:`tick` last (diagnostics).
        self.last_timestamp: int | None = None
        #: running totals mirrored into the registry (kept as plain
        #: attributes too so :meth:`health_snapshot` is registry-free).
        self.ticks = 0
        self.total_changed = 0
        self.metrics = metrics
        if metrics is not None:
            self._m_ticks = metrics.counter(
                "repro_service_ticks_total", "Cycles processed."
            )
            self._m_streamed = metrics.counter(
                "repro_service_streamed_ticks_total",
                "Cycles that ran the delta-streaming path.",
            )
            self._m_changed = metrics.counter(
                "repro_service_results_changed_total",
                "Query results changed across all cycles.",
            )
            metrics.gauge_fn(
                "repro_service_subscriptions",
                lambda: len(self.hub),
                "Active hub subscriptions.",
            )
        else:
            self._m_ticks = None
            self._m_streamed = None
            self._m_changed = None

    def health_snapshot(self) -> dict[str, int | float]:
        """Point-in-time service health (rides on :class:`TickReport`)."""
        return {
            "ticks": self.ticks,
            "results_changed": self.total_changed,
            "subscriptions": len(self.hub),
            "last_timestamp": -1 if self.last_timestamp is None else
            self.last_timestamp,
        }

    # ------------------------------------------------------------------
    # Population / query management (pass-through with install streaming)
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        self.monitor.load_objects(objects)

    def set_object_tags(self, tags) -> None:
        """Merge attribute tags into the monitor's object tag table (the
        predicate state of filtered subscriptions)."""
        self.monitor.set_object_tags(tags)

    def install_query(
        self, qid: int, point: Point, k: int = 1
    ) -> list[ResultEntry]:
        """Install a query; subscribers receive its initial snapshot as an
        all-incoming delta with ``timestamp=None``."""
        result = self.monitor.install_query(qid, point, k)
        if self.hub.has_subscribers:
            self.hub.publish(None, {qid: diff_results(qid, [], result)})
        return result

    def remove_query(self, qid: int) -> None:
        """Terminate a query; subscribers receive the draining delta."""
        if not self.hub.has_subscribers:
            self.monitor.remove_query(qid)
            return
        old = self.monitor.result(qid)
        self.monitor.remove_query(qid)
        self.hub.publish(None, {qid: diff_results(qid, old, [], terminated=True)})

    def subscribe(self, callback, **kwargs):
        """Shorthand for ``service.hub.subscribe`` (see SubscriptionHub)."""
        return self.hub.subscribe(callback, **kwargs)

    # ------------------------------------------------------------------
    # Cycle processing
    # ------------------------------------------------------------------

    def tick(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
        *,
        timestamp: int | None = None,
    ) -> set[int]:
        """Process one cycle; streams deltas iff anyone is listening.

        Returns the changed-query id set (the :meth:`ContinuousMonitor.process`
        contract) so metrics collection is identical on both paths.

        **Timestamp contract.**  ``timestamp`` is a cycle *label*, never an
        input to processing: it is recorded as :attr:`last_timestamp` on
        every path and stamped onto the published deltas when (and only
        when) subscribers are listening.  With no subscribers there is no
        delta capture, so the label has no further effect — that asymmetry
        is intentional, not a dropped value.  Callers that need the label
        echoed back alongside cycle timing use :meth:`tick_report`.
        """
        self.last_timestamp = timestamp
        if not self.hub.has_subscribers:
            changed = self.monitor.process(object_updates, query_updates)
        else:
            changed = self._publish_cycle(
                timestamp,
                self.monitor.process_deltas(object_updates, query_updates),
            )
        self._count_tick(changed)
        return changed

    def _count_tick(self, changed: set[int]) -> None:
        self.ticks += 1
        self.total_changed += len(changed)
        if self._m_ticks is not None:
            self._m_ticks.inc()
            self._m_changed.inc(len(changed))

    def _publish_cycle(self, timestamp: int | None, deltas) -> set[int]:
        """The streamed cycle tail shared by every tick flavor: fan the
        deltas out, then reduce them to the ``process`` changed-set
        contract (terminated queries are deltas, not changes)."""
        self.hub.publish(timestamp, deltas)
        return {qid for qid, delta in deltas.items() if not delta.terminated}

    def tick_batch(self, batch: UpdateBatch) -> set[int]:
        """Process a packaged :class:`repro.updates.UpdateBatch`."""
        return self.tick(
            batch.object_updates, batch.query_updates, timestamp=batch.timestamp
        )

    def tick_flat(self, batch: FlatUpdateBatch) -> set[int]:
        """Process a columnar :class:`repro.updates.FlatUpdateBatch`.

        Both paths keep the columnar apply: with no subscribers the batch
        goes straight into the monitor's ``process_flat``; with
        subscribers listening the delta twin ``process_deltas_flat`` runs
        — CPM's flat loop with targeted pre-cycle capture — so streaming
        deployments never fall back to the dataclass vocabulary.
        """
        self.last_timestamp = batch.timestamp
        if not self.hub.has_subscribers:
            changed = self.monitor.process_flat(batch)
        else:
            changed = self._publish_cycle(
                batch.timestamp, self.monitor.process_deltas_flat(batch)
            )
        self._count_tick(changed)
        return changed

    def tick_report(self, batch: UpdateBatch | FlatUpdateBatch) -> TickReport:
        """Process one packaged cycle and report label, changes and timing.

        Accepts either batch encoding (columnar batches take the
        :meth:`tick_flat` fast path) and returns a :class:`TickReport` —
        the surface the ingestion driver consumes (``tick`` stays the
        backward-compatible changed-set entry point).  The timing is
        decomposed so streaming callers can see the diff cost:
        ``process_sec`` covers the monitor cycle *including* the
        per-query delta diffing of the streamed path, ``publish_sec``
        covers only the subscriber fan-out.
        """
        flat = isinstance(batch, FlatUpdateBatch)
        if flat:
            n_objects = len(batch.oids)
        else:
            n_objects = len(batch.object_updates)
        self.last_timestamp = batch.timestamp
        streamed = self.hub.has_subscribers
        publish_sec = 0.0
        t0 = time.perf_counter()
        if not streamed:
            if flat:
                changed = self.monitor.process_flat(batch)
            else:
                changed = self.monitor.process_batch(batch)
            process_sec = time.perf_counter() - t0
        else:
            if flat:
                deltas = self.monitor.process_deltas_flat(batch)
            else:
                deltas = self.monitor.process_deltas(
                    batch.object_updates, batch.query_updates
                )
            process_sec = time.perf_counter() - t0
            t1 = time.perf_counter()
            changed = self._publish_cycle(batch.timestamp, deltas)
            publish_sec = time.perf_counter() - t1
        self._count_tick(changed)
        if streamed and self._m_streamed is not None:
            self._m_streamed.inc()
        return TickReport(
            timestamp=batch.timestamp,
            changed=changed,
            streamed=streamed,
            object_updates=n_objects,
            query_updates=len(batch.query_updates),
            process_sec=process_sec,
            publish_sec=publish_sec,
            health=None if self.metrics is None else self.health_snapshot(),
        )
