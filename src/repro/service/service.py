"""The cycle-driven monitoring service facade.

A :class:`MonitoringService` couples one monitor — single-engine or
:class:`repro.service.sharding.ShardedMonitor` — with a
:class:`repro.service.subscriptions.SubscriptionHub`.  Callers feed it
update batches (:meth:`tick`); the service decides per cycle whether the
cheap path (``process``) suffices or the delta path (``process_deltas``)
must run to feed subscribers, and publishes the resulting stream.

The replay engine (:class:`repro.engine.server.MonitoringServer`) is a
thin adapter over this class; interactive callers (see
``examples/live_dashboard.py``) drive it directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.points import Point
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.deltas import diff_results
from repro.service.subscriptions import SubscriptionHub
from repro.updates import ObjectUpdate, QueryUpdate, UpdateBatch


class MonitoringService:
    """One monitor plus delta streaming, driven cycle by cycle."""

    def __init__(
        self,
        monitor: ContinuousMonitor,
        *,
        hub: SubscriptionHub | None = None,
    ) -> None:
        self.monitor = monitor
        self.hub = hub if hub is not None else SubscriptionHub()
        #: timestamp handed to :meth:`tick` last (diagnostics).
        self.last_timestamp: int | None = None

    # ------------------------------------------------------------------
    # Population / query management (pass-through with install streaming)
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        self.monitor.load_objects(objects)

    def install_query(
        self, qid: int, point: Point, k: int = 1
    ) -> list[ResultEntry]:
        """Install a query; subscribers receive its initial snapshot as an
        all-incoming delta with ``timestamp=None``."""
        result = self.monitor.install_query(qid, point, k)
        if self.hub.has_subscribers:
            self.hub.publish(None, {qid: diff_results(qid, [], result)})
        return result

    def remove_query(self, qid: int) -> None:
        """Terminate a query; subscribers receive the draining delta."""
        if not self.hub.has_subscribers:
            self.monitor.remove_query(qid)
            return
        old = self.monitor.result(qid)
        self.monitor.remove_query(qid)
        self.hub.publish(None, {qid: diff_results(qid, old, [], terminated=True)})

    def subscribe(self, callback, **kwargs):
        """Shorthand for ``service.hub.subscribe`` (see SubscriptionHub)."""
        return self.hub.subscribe(callback, **kwargs)

    # ------------------------------------------------------------------
    # Cycle processing
    # ------------------------------------------------------------------

    def tick(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
        *,
        timestamp: int | None = None,
    ) -> set[int]:
        """Process one cycle; streams deltas iff anyone is listening.

        Returns the changed-query id set (the :meth:`ContinuousMonitor.process`
        contract) so metrics collection is identical on both paths.
        """
        self.last_timestamp = timestamp
        if not self.hub.has_subscribers:
            return self.monitor.process(object_updates, query_updates)
        deltas = self.monitor.process_deltas(object_updates, query_updates)
        self.hub.publish(timestamp, deltas)
        return {qid for qid, delta in deltas.items() if not delta.terminated}

    def tick_batch(self, batch: UpdateBatch) -> set[int]:
        """Process a packaged :class:`repro.updates.UpdateBatch`."""
        return self.tick(
            batch.object_updates, batch.query_updates, timestamp=batch.timestamp
        )
