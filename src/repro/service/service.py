"""The cycle-driven monitoring service facade.

A :class:`MonitoringService` couples one monitor — single-engine or
:class:`repro.service.sharding.ShardedMonitor` — with a
:class:`repro.service.subscriptions.SubscriptionHub`.  Callers feed it
update batches (:meth:`tick`); the service decides per cycle whether the
cheap path (``process``) suffices or the delta path (``process_deltas``)
must run to feed subscribers, and publishes the resulting stream.

The replay engine (:class:`repro.engine.server.MonitoringServer`) is a
thin adapter over this class; interactive callers (see
``examples/live_dashboard.py``) drive it directly.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.geometry.points import Point
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.deltas import diff_results
from repro.service.subscriptions import SubscriptionHub
from repro.updates import FlatUpdateBatch, ObjectUpdate, QueryUpdate, UpdateBatch


@dataclass(slots=True)
class TickReport:
    """Everything one processing cycle produced, for callers that need
    more than the bare changed-set (the ingestion driver, dashboards).

    ``timestamp`` is echoed back verbatim: the service itself only
    *labels* cycles with it (see :meth:`MonitoringService.tick`), it never
    interprets it.
    """

    timestamp: int | None
    #: ids of queries whose result changed this cycle (the
    #: :meth:`ContinuousMonitor.process` contract).
    changed: set[int] = field(default_factory=set)
    #: whether the delta path ran (i.e. subscribers were listening).
    streamed: bool = False
    object_updates: int = 0
    query_updates: int = 0
    #: wall-clock spent inside the monitor's cycle processing.
    process_sec: float = 0.0


class MonitoringService:
    """One monitor plus delta streaming, driven cycle by cycle."""

    def __init__(
        self,
        monitor: ContinuousMonitor,
        *,
        hub: SubscriptionHub | None = None,
    ) -> None:
        self.monitor = monitor
        self.hub = hub if hub is not None else SubscriptionHub()
        #: timestamp handed to :meth:`tick` last (diagnostics).
        self.last_timestamp: int | None = None

    # ------------------------------------------------------------------
    # Population / query management (pass-through with install streaming)
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        self.monitor.load_objects(objects)

    def install_query(
        self, qid: int, point: Point, k: int = 1
    ) -> list[ResultEntry]:
        """Install a query; subscribers receive its initial snapshot as an
        all-incoming delta with ``timestamp=None``."""
        result = self.monitor.install_query(qid, point, k)
        if self.hub.has_subscribers:
            self.hub.publish(None, {qid: diff_results(qid, [], result)})
        return result

    def remove_query(self, qid: int) -> None:
        """Terminate a query; subscribers receive the draining delta."""
        if not self.hub.has_subscribers:
            self.monitor.remove_query(qid)
            return
        old = self.monitor.result(qid)
        self.monitor.remove_query(qid)
        self.hub.publish(None, {qid: diff_results(qid, old, [], terminated=True)})

    def subscribe(self, callback, **kwargs):
        """Shorthand for ``service.hub.subscribe`` (see SubscriptionHub)."""
        return self.hub.subscribe(callback, **kwargs)

    # ------------------------------------------------------------------
    # Cycle processing
    # ------------------------------------------------------------------

    def tick(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
        *,
        timestamp: int | None = None,
    ) -> set[int]:
        """Process one cycle; streams deltas iff anyone is listening.

        Returns the changed-query id set (the :meth:`ContinuousMonitor.process`
        contract) so metrics collection is identical on both paths.

        **Timestamp contract.**  ``timestamp`` is a cycle *label*, never an
        input to processing: it is recorded as :attr:`last_timestamp` on
        every path and stamped onto the published deltas when (and only
        when) subscribers are listening.  With no subscribers there is no
        delta capture, so the label has no further effect — that asymmetry
        is intentional, not a dropped value.  Callers that need the label
        echoed back alongside cycle timing use :meth:`tick_report`.
        """
        self.last_timestamp = timestamp
        if not self.hub.has_subscribers:
            return self.monitor.process(object_updates, query_updates)
        deltas = self.monitor.process_deltas(object_updates, query_updates)
        self.hub.publish(timestamp, deltas)
        return {qid for qid, delta in deltas.items() if not delta.terminated}

    def tick_batch(self, batch: UpdateBatch) -> set[int]:
        """Process a packaged :class:`repro.updates.UpdateBatch`."""
        return self.tick(
            batch.object_updates, batch.query_updates, timestamp=batch.timestamp
        )

    def tick_flat(self, batch: FlatUpdateBatch) -> set[int]:
        """Process a columnar :class:`repro.updates.FlatUpdateBatch`.

        The fast path: with no subscribers the batch goes straight into
        the monitor's ``process_flat`` (CPM iterates the flat arrays end
        to end).  With subscribers listening the cycle must capture
        per-query deltas, so the batch is translated back to the
        :class:`ObjectUpdate` vocabulary — correctness over speed on the
        streaming path; both paths observe the identical update stream.
        """
        self.last_timestamp = batch.timestamp
        if not self.hub.has_subscribers:
            return self.monitor.process_flat(batch)
        deltas = self.monitor.process_deltas(
            batch.to_object_updates(), batch.query_updates
        )
        self.hub.publish(batch.timestamp, deltas)
        return {qid for qid, delta in deltas.items() if not delta.terminated}

    def tick_report(self, batch: UpdateBatch | FlatUpdateBatch) -> TickReport:
        """Process one packaged cycle and report label, changes and timing.

        Accepts either batch encoding (columnar batches take the
        :meth:`tick_flat` fast path) and returns a :class:`TickReport` —
        the surface the ingestion driver consumes (``tick`` stays the
        backward-compatible changed-set entry point).
        """
        t0 = time.perf_counter()
        if isinstance(batch, FlatUpdateBatch):
            changed = self.tick_flat(batch)
            n_objects = len(batch.oids)
        else:
            changed = self.tick_batch(batch)
            n_objects = len(batch.object_updates)
        return TickReport(
            timestamp=batch.timestamp,
            changed=changed,
            streamed=self.hub.has_subscribers,
            object_updates=n_objects,
            query_updates=len(batch.query_updates),
            process_sec=time.perf_counter() - t0,
        )
