"""Delta streaming: subscriptions over per-query result changes.

A :class:`SubscriptionHub` fans each cycle's
:class:`repro.service.deltas.ResultDelta` objects out to registered
callbacks.  Subscribers choose a query filter
(specific qids or all queries) and receive ``callback(timestamp, delta)``
calls — only for deltas that actually changed the result, unless they ask
for unchanged ones too.

The hub is synchronous and single-threaded by design (the monitoring
cycle is); async ingestion and network transports are ROADMAP follow-ons
that would wrap this same interface.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.service.deltas import ResultDelta

DeltaCallback = Callable[[int | None, ResultDelta], None]


class Subscription:
    """One registered delta listener (returned by ``subscribe``)."""

    __slots__ = ("callback", "delivered", "include_unchanged", "qids", "_hub")

    def __init__(
        self,
        hub: "SubscriptionHub",
        callback: DeltaCallback,
        qids: frozenset[int] | None,
        include_unchanged: bool,
    ) -> None:
        self._hub = hub
        self.callback = callback
        #: ``None`` = all queries; otherwise the watched qid set.
        self.qids = qids
        self.include_unchanged = include_unchanged
        #: number of deltas delivered so far.
        self.delivered = 0

    @property
    def active(self) -> bool:
        return self._hub is not None and self in self._hub._subscriptions

    def matches(self, delta: ResultDelta) -> bool:
        if self.qids is not None and delta.qid not in self.qids:
            return False
        return self.include_unchanged or delta.changed

    def close(self) -> None:
        """Unsubscribe (idempotent)."""
        if self._hub is not None:
            self._hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SubscriptionHub:
    """Registry of delta subscribers and the publish fan-out."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []

    def subscribe(
        self,
        callback: DeltaCallback,
        *,
        qids: Iterable[int] | None = None,
        include_unchanged: bool = False,
    ) -> Subscription:
        """Register ``callback(timestamp, delta)`` for matching deltas.

        Args:
            callback: invoked synchronously during publish.
            qids: restrict to these query ids (``None`` = every query).
            include_unchanged: also deliver no-op deltas (e.g. a moved
                query whose result happens to be identical).
        """
        subscription = Subscription(
            self,
            callback,
            None if qids is None else frozenset(qids),
            include_unchanged,
        )
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op when already removed)."""
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscriptions)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def publish(
        self, timestamp: int | None, deltas: dict[int, ResultDelta]
    ) -> int:
        """Deliver a cycle's deltas; returns the number of deliveries.

        ``timestamp`` is the cycle timestamp, or ``None`` for
        installation-time snapshots published outside the replay loop.
        Deltas are delivered in ascending qid order so the stream is
        deterministic for a deterministic workload.
        """
        if not self._subscriptions:
            return 0
        delivered = 0
        # Snapshot the subscriber list: callbacks may unsubscribe (or
        # subscribe) during delivery without corrupting this fan-out.
        subscribers = list(self._subscriptions)
        for qid in sorted(deltas):
            delta = deltas[qid]
            for subscription in subscribers:
                if subscription.matches(delta):
                    subscription.callback(timestamp, delta)
                    subscription.delivered += 1
                    delivered += 1
        return delivered
