"""Delta streaming: per-query subscriptions over result changes.

A :class:`SubscriptionHub` routes each cycle's
:class:`repro.service.deltas.ResultDelta` objects to registered
callbacks.  Routing is *topic based*: the topic of a delta is its query
id, a subscription watching specific qids is registered under exactly
those topics, and a subscription with no qid filter sits on the
**firehose** topic that observes every query.  Publishing a cycle
therefore touches only the subscriptions that can possibly want each
delta — a handle watching one query out of a million never sees (or
pays for) the other 999 999 — instead of probing every subscriber
against every delta as a global broadcast would.

Subscribers receive ``callback(timestamp, delta)`` calls — only for
deltas that actually changed the result, unless they ask for unchanged
ones too.

The hub is synchronous and single-threaded by design (the monitoring
cycle is); the socket transport (:mod:`repro.api.server`) wraps this
same interface with per-connection locking on the outside.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.service.deltas import ResultDelta

DeltaCallback = Callable[[int | None, ResultDelta], None]


class Subscription:
    """One registered delta listener (returned by ``subscribe``)."""

    __slots__ = ("callback", "delivered", "include_unchanged", "qids", "seq", "_hub")

    def __init__(
        self,
        hub: "SubscriptionHub",
        callback: DeltaCallback,
        qids: frozenset[int] | None,
        include_unchanged: bool,
        seq: int,
    ) -> None:
        self._hub = hub
        self.callback = callback
        #: ``None`` = firehose (all queries); otherwise the watched qid set.
        self.qids = qids
        self.include_unchanged = include_unchanged
        #: registration ordinal — the deterministic delivery order within
        #: one delta (bucketed and firehose subscribers interleave by it).
        self.seq = seq
        #: number of deltas delivered so far.
        self.delivered = 0

    @property
    def active(self) -> bool:
        return self._hub is not None and self._hub.is_active(self)

    def matches(self, delta: ResultDelta) -> bool:
        if self.qids is not None and delta.qid not in self.qids:
            return False
        return self.include_unchanged or delta.changed

    def close(self) -> None:
        """Unsubscribe (idempotent)."""
        if self._hub is not None:
            self._hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SubscriptionHub:
    """Per-query routing table of delta subscribers plus the publish loop.

    Internally two structures share the subscriptions:

    * ``_by_qid`` — topic buckets: qid -> subscriptions watching it (a
      subscription watching n qids appears in n buckets);
    * ``_firehose`` — subscriptions with no qid filter.

    Both keep registration order; delivery within one delta merges the
    two by registration ordinal so the stream stays deterministic.
    """

    def __init__(self) -> None:
        self._by_qid: dict[int, list[Subscription]] = {}
        self._firehose: list[Subscription] = []
        self._count = 0
        self._next_seq = 0

    def subscribe(
        self,
        callback: DeltaCallback,
        *,
        qids: Iterable[int] | None = None,
        include_unchanged: bool = False,
    ) -> Subscription:
        """Register ``callback(timestamp, delta)`` for matching deltas.

        Args:
            callback: invoked synchronously during publish.
            qids: restrict to these query ids (``None`` = the firehose:
                every query).
            include_unchanged: also deliver no-op deltas (e.g. a moved
                query whose result happens to be identical).
        """
        qid_set = None if qids is None else frozenset(qids)
        subscription = Subscription(
            self, callback, qid_set, include_unchanged, self._next_seq
        )
        self._next_seq += 1
        if qid_set is None:
            self._firehose.append(subscription)
        else:
            for qid in qid_set:
                self._by_qid.setdefault(qid, []).append(subscription)
        self._count += 1
        return subscription

    def subscribe_query(
        self,
        qid: int,
        callback: DeltaCallback,
        *,
        include_unchanged: bool = False,
    ) -> Subscription:
        """Shorthand: watch exactly one query (the handle/topic idiom)."""
        return self.subscribe(
            callback, qids=(qid,), include_unchanged=include_unchanged
        )

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op when already removed)."""
        removed = False
        if subscription.qids is None:
            if subscription in self._firehose:
                self._firehose.remove(subscription)
                removed = True
        else:
            for qid in subscription.qids:
                bucket = self._by_qid.get(qid)
                if bucket and subscription in bucket:
                    bucket.remove(subscription)
                    removed = True
                    if not bucket:
                        del self._by_qid[qid]
        if removed:
            self._count -= 1

    def is_active(self, subscription: Subscription) -> bool:
        """Whether the subscription is still registered."""
        if subscription.qids is None:
            return subscription in self._firehose
        return any(
            subscription in self._by_qid.get(qid, ()) for qid in subscription.qids
        )

    @property
    def has_subscribers(self) -> bool:
        """O(1): anything registered at all (the tick cheap-path probe)."""
        return self._count > 0

    @property
    def has_firehose(self) -> bool:
        """Whether any subscription watches every query."""
        return bool(self._firehose)

    def watched_qids(self) -> set[int]:
        """Qids with at least one targeted subscription (diagnostics)."""
        return set(self._by_qid)

    def __len__(self) -> int:
        return self._count

    def publish(
        self, timestamp: int | None, deltas: dict[int, ResultDelta]
    ) -> int:
        """Deliver a cycle's deltas; returns the number of deliveries.

        ``timestamp`` is the cycle timestamp, or ``None`` for
        installation-time snapshots published outside the replay loop.
        Deltas are delivered in ascending qid order, and within one delta
        in subscriber-registration order, so the stream is deterministic
        for a deterministic workload.  Per-topic snapshots are taken
        before delivery: callbacks may subscribe or unsubscribe during
        the fan-out without corrupting it.
        """
        if not self._count:
            return 0
        delivered = 0
        by_qid = self._by_qid
        firehose = list(self._firehose)
        for qid in sorted(deltas):
            delta = deltas[qid]
            bucket = by_qid.get(qid)
            if bucket:
                if firehose:
                    targets = sorted(bucket + firehose, key=lambda s: s.seq)
                else:
                    targets = list(bucket)
            elif firehose:
                targets = firehose
            else:
                continue
            changed = delta.changed
            for subscription in targets:
                if changed or subscription.include_unchanged:
                    subscription.callback(timestamp, delta)
                    subscription.delivered += 1
                    delivered += 1
        return delivered
