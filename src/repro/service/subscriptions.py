"""Delta streaming: per-query subscriptions over result changes.

A :class:`SubscriptionHub` routes each cycle's
:class:`repro.service.deltas.ResultDelta` objects to registered
callbacks.  Routing is *topic based*: the topic of a delta is its query
id, a subscription watching specific qids is registered under exactly
those topics, and a subscription with no qid filter sits on the
**firehose** topic that observes every query.  Publishing a cycle
therefore touches only the subscriptions that can possibly want each
delta — a handle watching one query out of a million never sees (or
pays for) the other 999 999 — instead of probing every subscriber
against every delta as a global broadcast would.

Subscribers receive ``callback(timestamp, delta)`` calls — only for
deltas that actually changed the result, unless they ask for unchanged
ones too.

The hub is synchronous and single-threaded by design (the monitoring
cycle is); the socket transport (:mod:`repro.api.server`) wraps this
same interface with per-connection locking on the outside.

The **fan-out tier** lives next to the hub: a :class:`FanoutQueue` is a
bounded per-consumer outbound queue drained by its own writer thread,
with an explicit :class:`SlowConsumerPolicy` deciding what happens when
a consumer cannot keep up.  The publish loop above only ever *enqueues*
(O(1) per delivery, never blocks on a socket), so one stalled consumer
cannot extend the cycle's ``publish_sec`` for everyone else.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Iterable
from enum import Enum

from repro.service.deltas import ResultDelta

DeltaCallback = Callable[[int | None, ResultDelta], None]


class SlowConsumerPolicy(Enum):
    """What a :class:`FanoutQueue` does when its bound is hit.

    * ``DISCONNECT`` — the consumer is marked broken and dropped (the
      transport's ``on_overflow`` hook closes the connection).  Strict:
      a lagging subscriber loses its stream rather than degrade it.
    * ``DROP_AND_SNAPSHOT`` — queued *droppable* items (deltas) are
      discarded and a single coalesced lag marker is enqueued in their
      place, telling the consumer how many deliveries it lost so it can
      request a fresh snapshot.  Lossy but connected.
    """

    DISCONNECT = "disconnect"
    DROP_AND_SNAPSHOT = "drop_and_snapshot"


class _LagMarker:
    """Placeholder for dropped items; resolved to a real item at write
    time via ``lag_factory`` so consecutive overflows coalesce."""

    __slots__ = ()


_LAG = _LagMarker()


class FanoutQueue:
    """A bounded outbound queue drained by a dedicated writer thread.

    ``put`` never blocks: the producer (the monitoring cycle's publish
    loop) enqueues and moves on, while the writer thread feeds
    ``deliver(item)`` — typically encode-and-send on a socket — at
    whatever pace the consumer sustains.  When the queue is full the
    ``policy`` is applied *at the producer*, so backpressure from one
    slow consumer is converted into an explicit local decision instead
    of a global stall.

    Args:
        deliver: called on the writer thread for every item.  An
            exception marks the queue broken (the consumer is gone).
        limit: queue bound (items) before the policy triggers.
        policy: the :class:`SlowConsumerPolicy` applied on overflow.
        lag_factory: ``lag_factory(dropped) -> item`` building the lag
            marker item delivered in place of ``dropped`` discarded
            items.  Required for ``DROP_AND_SNAPSHOT``.
        lag_followup: ``lag_followup() -> iterable of items`` delivered
            on the writer thread immediately after a resolved lag
            marker — the transport's chance to push fresh snapshots so
            a drained consumer converges without asking.  Both hooks
            run *outside* the queue lock and may therefore take
            application locks and read live state.
        on_overflow: called once (on the producer thread) when
            ``DISCONNECT`` fires — the transport's close hook.
        name: diagnostics label.
    """

    def __init__(
        self,
        deliver: Callable[[object], None],
        *,
        limit: int = 1024,
        policy: SlowConsumerPolicy = SlowConsumerPolicy.DISCONNECT,
        lag_factory: Callable[[int], object] | None = None,
        lag_followup: Callable[[], Iterable[object]] | None = None,
        on_overflow: Callable[[], None] | None = None,
        name: str = "fanout",
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if policy is SlowConsumerPolicy.DROP_AND_SNAPSHOT and lag_factory is None:
            raise ValueError("DROP_AND_SNAPSHOT needs a lag_factory")
        self._deliver = deliver
        self.limit = limit
        self.policy = policy
        self._lag_factory = lag_factory
        self._lag_followup = lag_followup
        self._on_overflow = on_overflow
        self.name = name
        self._items: deque[tuple[object, bool]] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self.broken = False
        #: items handed to ``deliver`` so far (lag markers included).
        self.delivered = 0
        #: droppable items discarded by DROP_AND_SNAPSHOT so far.
        self.dropped = 0
        #: times the overflow policy fired.
        self.overflows = 0
        self._pending_lag = 0
        self._inflight = False
        self._writer = threading.Thread(
            target=self._drain, name=f"{name}-writer", daemon=True
        )
        self._writer.start()

    def put(self, item: object, *, droppable: bool = False) -> bool:
        """Enqueue without blocking; returns False when closed/broken.

        ``droppable`` marks items the DROP_AND_SNAPSHOT policy may shed
        (deltas); control frames stay queued regardless.
        """
        overflow_hook = None
        with self._lock:
            if self._closed or self.broken:
                return False
            if len(self._items) >= self.limit:
                self.overflows += 1
                if self.policy is SlowConsumerPolicy.DISCONNECT:
                    self.broken = True
                    self._items.clear()
                    overflow_hook = self._on_overflow
                    self._wakeup.notify()
                else:
                    kept: deque[tuple[object, bool]] = deque()
                    shed = 0
                    for queued, d in self._items:
                        if d:
                            shed += 1
                        elif queued is not _LAG:
                            kept.append((queued, d))
                    self.dropped += shed
                    self._pending_lag += shed
                    if droppable:
                        # The overflowing item itself is shed too.
                        self.dropped += 1
                        self._pending_lag += 1
                        item = None
                    if self._pending_lag:
                        # One coalesced marker; its count resolves at
                        # write time so back-to-back overflows merge.
                        kept.append((_LAG, False))
                    if item is not None:
                        kept.append((item, droppable))
                    self._items = kept
                    self._wakeup.notify()
                    return True
            else:
                self._items.append((item, droppable))
                self._wakeup.notify()
                return True
        # DISCONNECT fired: run the close hook outside the lock.
        if overflow_hook is not None:
            overflow_hook()
        return False

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._items and not self._closed and not self.broken:
                    self._wakeup.wait()
                if self.broken or (self._closed and not self._items):
                    return
                item, _ = self._items.popleft()
                lagged = None
                if item is _LAG:
                    lagged, self._pending_lag = self._pending_lag, 0
                self._inflight = True
            delivered = 0
            try:
                if lagged is not None:
                    # Resolve the coalesced marker outside the lock so
                    # the factory/follow-up hooks may take application
                    # locks and snapshot live state.
                    item = self._lag_factory(lagged)
                self._deliver(item)
                delivered += 1
                if lagged is not None and self._lag_followup is not None:
                    for extra in self._lag_followup():
                        self._deliver(extra)
                        delivered += 1
            except Exception:
                with self._lock:
                    self.broken = True
                    self._inflight = False
                    self._items.clear()
                    self._wakeup.notify_all()
                return
            with self._lock:
                self.delivered += delivered
                self._inflight = False
                if not self._items:
                    self._wakeup.notify_all()

    def join(self, timeout: float | None = None) -> bool:
        """Wait until everything queued is delivered; True when drained."""
        with self._lock:
            if timeout is None:
                while (self._items or self._inflight) and not self.broken:
                    self._wakeup.wait()
            elif (self._items or self._inflight) and not self.broken:
                self._wakeup.wait(timeout)
            return not self._items and not self._inflight and not self.broken

    def close(self, *, flush: bool = True, timeout: float = 5.0) -> None:
        """Stop the writer; by default after draining what's queued."""
        if flush:
            self.join(timeout=timeout)
        with self._lock:
            self._closed = True
            if not flush:
                self._items.clear()
            self._wakeup.notify_all()
        if threading.current_thread() is not self._writer:
            self._writer.join(timeout=timeout)

    @property
    def depth(self) -> int:
        """Items currently queued (diagnostics)."""
        with self._lock:
            return len(self._items)

    def stats(self) -> dict[str, int | bool]:
        """One consistent counter snapshot (all fields under one lock).

        This is what :meth:`repro.api.server.MonitorSocketServer.stats`
        aggregates per connection — the counters themselves always
        existed, this read makes them reachable from the embedding
        process without racing the writer thread.
        """
        with self._lock:
            return {
                "depth": len(self._items),
                "delivered": self.delivered,
                "dropped": self.dropped,
                "overflows": self.overflows,
                "broken": self.broken,
            }


class Subscription:
    """One registered delta listener (returned by ``subscribe``)."""

    __slots__ = ("callback", "delivered", "include_unchanged", "qids", "seq", "_hub")

    def __init__(
        self,
        hub: "SubscriptionHub",
        callback: DeltaCallback,
        qids: frozenset[int] | None,
        include_unchanged: bool,
        seq: int,
    ) -> None:
        self._hub = hub
        self.callback = callback
        #: ``None`` = firehose (all queries); otherwise the watched qid set.
        self.qids = qids
        self.include_unchanged = include_unchanged
        #: registration ordinal — the deterministic delivery order within
        #: one delta (bucketed and firehose subscribers interleave by it).
        self.seq = seq
        #: number of deltas delivered so far.
        self.delivered = 0

    @property
    def active(self) -> bool:
        return self._hub is not None and self._hub.is_active(self)

    def matches(self, delta: ResultDelta) -> bool:
        if self.qids is not None and delta.qid not in self.qids:
            return False
        return self.include_unchanged or delta.changed

    def close(self) -> None:
        """Unsubscribe (idempotent)."""
        if self._hub is not None:
            self._hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SubscriptionHub:
    """Per-query routing table of delta subscribers plus the publish loop.

    Internally two structures share the subscriptions:

    * ``_by_qid`` — topic buckets: qid -> subscriptions watching it (a
      subscription watching n qids appears in n buckets);
    * ``_firehose`` — subscriptions with no qid filter.

    Both keep registration order; delivery within one delta merges the
    two by registration ordinal so the stream stays deterministic.
    """

    def __init__(self) -> None:
        self._by_qid: dict[int, list[Subscription]] = {}
        self._firehose: list[Subscription] = []
        self._count = 0
        self._next_seq = 0

    def subscribe(
        self,
        callback: DeltaCallback,
        *,
        qids: Iterable[int] | None = None,
        include_unchanged: bool = False,
    ) -> Subscription:
        """Register ``callback(timestamp, delta)`` for matching deltas.

        Args:
            callback: invoked synchronously during publish.
            qids: restrict to these query ids (``None`` = the firehose:
                every query).
            include_unchanged: also deliver no-op deltas (e.g. a moved
                query whose result happens to be identical).
        """
        qid_set = None if qids is None else frozenset(qids)
        subscription = Subscription(
            self, callback, qid_set, include_unchanged, self._next_seq
        )
        self._next_seq += 1
        if qid_set is None:
            self._firehose.append(subscription)
        else:
            for qid in qid_set:
                self._by_qid.setdefault(qid, []).append(subscription)
        self._count += 1
        return subscription

    def subscribe_query(
        self,
        qid: int,
        callback: DeltaCallback,
        *,
        include_unchanged: bool = False,
    ) -> Subscription:
        """Shorthand: watch exactly one query (the handle/topic idiom)."""
        return self.subscribe(
            callback, qids=(qid,), include_unchanged=include_unchanged
        )

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription (no-op when already removed)."""
        removed = False
        if subscription.qids is None:
            if subscription in self._firehose:
                self._firehose.remove(subscription)
                removed = True
        else:
            for qid in subscription.qids:
                bucket = self._by_qid.get(qid)
                if bucket and subscription in bucket:
                    bucket.remove(subscription)
                    removed = True
                    if not bucket:
                        del self._by_qid[qid]
        if removed:
            self._count -= 1

    def is_active(self, subscription: Subscription) -> bool:
        """Whether the subscription is still registered."""
        if subscription.qids is None:
            return subscription in self._firehose
        return any(
            subscription in self._by_qid.get(qid, ()) for qid in subscription.qids
        )

    @property
    def has_subscribers(self) -> bool:
        """O(1): anything registered at all (the tick cheap-path probe)."""
        return self._count > 0

    @property
    def has_firehose(self) -> bool:
        """Whether any subscription watches every query."""
        return bool(self._firehose)

    def watched_qids(self) -> set[int]:
        """Qids with at least one targeted subscription (diagnostics)."""
        return set(self._by_qid)

    def __len__(self) -> int:
        return self._count

    def publish(
        self, timestamp: int | None, deltas: dict[int, ResultDelta]
    ) -> int:
        """Deliver a cycle's deltas; returns the number of deliveries.

        ``timestamp`` is the cycle timestamp, or ``None`` for
        installation-time snapshots published outside the replay loop.
        Deltas are delivered in ascending qid order, and within one delta
        in subscriber-registration order, so the stream is deterministic
        for a deterministic workload.  Per-topic snapshots are taken
        before delivery: callbacks may subscribe or unsubscribe during
        the fan-out without corrupting it.
        """
        if not self._count:
            return 0
        delivered = 0
        by_qid = self._by_qid
        firehose = list(self._firehose)
        for qid in sorted(deltas):
            delta = deltas[qid]
            bucket = by_qid.get(qid)
            if bucket:
                if firehose:
                    targets = sorted(bucket + firehose, key=lambda s: s.seq)
                else:
                    targets = list(bucket)
            elif firehose:
                targets = firehose
            else:
                continue
            changed = delta.changed
            for subscription in targets:
                if changed or subscription.include_unchanged:
                    subscription.callback(timestamp, delta)
                    subscription.delivered += 1
                    delivered += 1
        return delivered
