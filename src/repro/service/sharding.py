"""Space-partitioned sharding of the monitoring workload.

The cell space of the grid is split into ``S`` contiguous column blocks
(:class:`ShardPlan`); each shard owns one block and runs a full monitoring
engine (CPM by default).  A query is placed on the shard whose block
contains its point — per-query processing (influence probes, incremental
repair, re-computation: the dominant cost of the paper's workloads) is
thereby partitioned, and a pluggable executor
(:mod:`repro.service.executor`) can run the shards on separate cores.

**Replication contract.**  Per-shard results must stay *byte-identical* to
a single engine's.  CPM re-computation is pull-free: when a query loses
neighbors, the engine re-scans grid cells in ascending ``mindist`` order
and may expand past the query's previous influence region into any cell of
the workspace.  A shard therefore cannot answer exactly from a partial
object view — every shard keeps its full-workspace grid current, i.e.
object *maintenance* (two hash-table operations per update, the
``Time_ind`` of Section 4.1) is replicated to all shards, while the
per-query work an update triggers runs only on the shard holding the
affected queries (an update in a cell unmarked on a shard's grid is
discarded there after one influence probe).  Border-crossing updates thus
naturally "fan out" to exactly the shards whose installed influence
regions overlap them.  :mod:`repro.service.partition` is the
partitioned alternative: each shard materializes only its owned column
block plus a halo, the coordinator fans rows to exactly the tracking
shards, and a pull path covers re-computation expansion — same
byte-identity contract, without the replicated object maintenance.

:class:`ShardedMonitor` implements the full
:class:`repro.monitor.ContinuousMonitor` contract — including
``process_deltas`` — so the replay engine, the experiment drivers and the
equivalence tests can treat a sharded service exactly like a single
engine.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from math import ceil

from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.cell import cell_index
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.deltas import ResultDelta, diff_results
from repro.service.executor import (
    SerialShardExecutor,
    ShardExecutor,
)
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
)


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Partition of a grid's column space into contiguous blocks.

    Column addressing mirrors :class:`repro.grid.grid.Grid` exactly (same
    ``delta`` derivation, same clamped ``cell_index`` decision), so the
    shard owning a point is the shard owning the point's grid cell.
    """

    n_shards: int
    cols: int
    x0: float
    delta: float
    #: first owned column of each shard, ascending; shard ``s`` owns
    #: columns ``[col_starts[s], col_starts[s+1])``.
    col_starts: tuple[int, ...]

    @classmethod
    def build(
        cls,
        n_shards: int,
        cells_per_axis: int,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    ) -> "ShardPlan":
        """Balanced plan over the column space of a ``cells_per_axis`` grid."""
        if not isinstance(bounds, Rect):
            bounds = Rect(*bounds)
        if cells_per_axis <= 0:
            raise ValueError("cells_per_axis must be positive")
        # Same derivation as Grid.__init__ (square cells over the extent).
        extent = max(bounds.width, bounds.height)
        delta = extent / cells_per_axis
        cols = max(1, ceil(bounds.width / delta - 1e-9))
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if n_shards > cols:
            raise ValueError(
                f"cannot split {cols} grid columns into {n_shards} shards"
            )
        base, extra = divmod(cols, n_shards)
        starts = []
        start = 0
        for s in range(n_shards):
            starts.append(start)
            start += base + (1 if s < extra else 0)
        return cls(
            n_shards=n_shards,
            cols=cols,
            x0=bounds.x0,
            delta=delta,
            col_starts=tuple(starts),
        )

    def shard_of_column(self, i: int) -> int:
        """Owning shard of grid column ``i`` (clamped to the grid)."""
        if i < 0:
            i = 0
        elif i >= self.cols:
            i = self.cols - 1
        return bisect_right(self.col_starts, i) - 1

    def shard_of_cell(self, i: int, j: int) -> int:
        """Owning shard of cell ``c_{i,j}`` (column-block partition)."""
        return self.shard_of_column(i)

    def shard_of_point(self, x: float, y: float) -> int:
        """Owning shard of the point ``(x, y)``."""
        return self.shard_of_column(cell_index(x, self.x0, self.delta, self.cols))

    def owned_columns(self, shard: int) -> range:
        """The contiguous column block owned by ``shard``."""
        lo = self.col_starts[shard]
        hi = (
            self.col_starts[shard + 1]
            if shard + 1 < self.n_shards
            else self.cols
        )
        return range(lo, hi)


@dataclass(frozen=True, slots=True)
class ShardEngineFactory:
    """Picklable factory building one shard's engine.

    Shard engines cover the *full* workspace (see the replication contract
    in the module docstring); the factory simply captures the construction
    parameters so worker processes can rebuild the engine after a spawn.
    """

    cells_per_axis: int
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    algorithm: str = "CPM"

    def __call__(self) -> ContinuousMonitor:
        if self.algorithm == "CPM":
            from repro.core.cpm import CPMMonitor

            return CPMMonitor(self.cells_per_axis, bounds=self.bounds)
        if self.algorithm == "YPK-CNN":
            from repro.baselines.ypk import YpkCnnMonitor

            return YpkCnnMonitor(self.cells_per_axis, bounds=self.bounds)
        if self.algorithm == "SEA-CNN":
            from repro.baselines.sea import SeaCnnMonitor

            return SeaCnnMonitor(self.cells_per_axis, bounds=self.bounds)
        raise ValueError(f"unknown algorithm {self.algorithm!r}")


class ShardedMonitor(ContinuousMonitor):
    """A fleet of per-shard engines behind the single-monitor contract.

    Args:
        n_shards: number of shards ``S`` (1 measures pure service overhead).
        cells_per_axis: grid granularity of every shard engine.
        bounds: workspace rectangle.
        algorithm: engine algorithm per shard ("CPM", "YPK-CNN", "SEA-CNN").
        executor: a started-on-demand :class:`ShardExecutor`; defaults to
            :class:`SerialShardExecutor`.  Pass a
            :class:`repro.service.executor.ProcessShardExecutor` to run
            shards on separate cores.

    Every query type is routable.  Point k-NN queries go to the shard
    owning their point's cell; strategy-backed queries (constrained,
    range, aggregate, filtered) go to the shard owning their strategy's
    *reference point* — under the replication contract every shard holds
    the full object view, so any shard answers any query exactly and the
    anchor choice is purely a load-balancing decision.  Object attribute
    tags (filtered queries) are replicated to all shards like object
    maintenance is.
    """

    def __init__(
        self,
        n_shards: int,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        algorithm: str = "CPM",
        executor: ShardExecutor | None = None,
    ) -> None:
        rect = bounds if isinstance(bounds, Rect) else Rect(*bounds)
        self.plan = ShardPlan.build(n_shards, cells_per_axis, rect)
        self.algorithm = algorithm
        self.name = f"{algorithm}-S{n_shards}"
        self._executor = executor if executor is not None else SerialShardExecutor()
        factory = ShardEngineFactory(
            cells_per_axis, (rect.x0, rect.y0, rect.x1, rect.y1), algorithm
        )
        self._executor.start([factory] * n_shards)
        self._query_shard: dict[int, int] = {}
        self._positions: dict[int, Point] = {}
        self._stats = GridStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def executor(self) -> ShardExecutor:
        return self._executor

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def close(self) -> None:
        """Shut the executor down (required for process-backed shards)."""
        self._executor.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Stats aggregation
    # ------------------------------------------------------------------

    @property
    def stats(self) -> GridStats:
        """Aggregate counters folded from every shard command."""
        return self._stats

    def _absorb(self, delta: GridStats) -> None:
        stats = self._stats
        stats.cell_scans += delta.cell_scans
        stats.objects_scanned += delta.objects_scanned
        stats.inserts += delta.inserts
        stats.deletes += delta.deletes
        stats.mark_ops += delta.mark_ops

    def _call(self, shard: int, method: str, *args):
        payload, stats = self._executor.call(shard, method, *args)
        self._absorb(stats)
        return payload

    def _call_all(self, method: str, args_per_shard: Sequence[tuple]) -> list:
        results = self._executor.call_all(method, args_per_shard)
        payloads = []
        for payload, stats in results:
            self._absorb(stats)
            payloads.append(payload)
        return payloads

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        batch = list(objects)
        for oid, point in batch:
            self._positions[oid] = point
        self._call_all("load_objects", [(batch,)] * self.n_shards)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    @property
    def object_count(self) -> int:
        return len(self._positions)

    def set_object_tags(self, tags) -> None:
        """Replicate attribute tags to every shard (and the local table).

        Tags are object state, so they follow the replication contract:
        each shard engine keeps its own synchronized copy backing the
        filtered queries it hosts.
        """
        mapping = {
            int(oid): frozenset(str(t) for t in tag_set) if tag_set else frozenset()
            for oid, tag_set in tags.items()
        }
        super().set_object_tags(mapping)
        self._call_all("set_object_tags", [(mapping,)] * self.n_shards)

    # ------------------------------------------------------------------
    # Query management
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        if qid in self._query_shard:
            raise KeyError(f"query {qid} is already installed")
        shard = self.plan.shard_of_point(point[0], point[1])
        result = self._call(shard, "install_query", qid, point, k)
        self._query_shard[qid] = shard
        return result

    def install_strategy_query(
        self, qid: int, strategy, k: int = 1
    ) -> list[ResultEntry]:
        """Install a strategy-backed query, routed by its reference point.

        Correct on any shard (full object view per the replication
        contract); the anchor cell's owner is chosen so co-located
        queries cluster where their updates land.  Strategy objects must
        pickle for process-backed executors — engine-bound state (the
        filtered tag table) is rebound by the shard engine at install.
        """
        if qid in self._query_shard:
            raise KeyError(f"query {qid} is already installed")
        x, y = strategy.reference_point()
        shard = self.plan.shard_of_point(x, y)
        result = self._call(shard, "install_strategy_query", qid, strategy, k)
        self._query_shard[qid] = shard
        return result

    def remove_query(self, qid: int) -> None:
        shard = self._query_shard.pop(qid)
        self._call(shard, "remove_query", qid)

    def result(self, qid: int) -> list[ResultEntry]:
        return self._call(self._query_shard[qid], "result", qid)

    def result_table(self) -> dict[int, list[ResultEntry]]:
        merged: dict[int, list[ResultEntry]] = {}
        for table in self._call_all("result_table", [()] * self.n_shards):
            merged.update(table)
        return merged

    def query_ids(self) -> list[int]:
        return list(self._query_shard)

    def query_shard(self, qid: int) -> int:
        """Shard currently hosting a query (diagnostics)."""
        return self._query_shard[qid]

    def shard_query_counts(self) -> list[int]:
        """Number of queries per shard (load-balance diagnostics)."""
        counts = [0] * self.n_shards
        for shard in self._query_shard.values():
            counts[shard] += 1
        return counts

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def _split_query_updates(
        self, query_updates: Sequence[QueryUpdate]
    ) -> list[list[QueryUpdate]]:
        """Route query updates to shards, translating cross-shard moves.

        Figure 3.9 handles a moving query as termination + re-insertion;
        when old and new location fall on different shards the two halves
        are routed separately, preserving the single-engine semantics.

        Routing is validated against an overlay and committed only once
        the whole batch routes cleanly, so a bad update (unknown qid,
        duplicate insert) raises *before* the routing table or any shard
        engine has been touched.
        """
        per_shard: list[list[QueryUpdate]] = [[] for _ in range(self.n_shards)]
        _GONE = -1
        overlay: dict[int, int] = {}

        def lookup(qid: int) -> int:
            shard = overlay.get(qid)
            if shard is None:
                shard = self._query_shard.get(qid, _GONE)
            if shard == _GONE:
                raise KeyError(f"query {qid} is not installed")
            return shard

        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                per_shard[lookup(qu.qid)].append(qu)
                overlay[qu.qid] = _GONE
                continue
            assert qu.point is not None
            new_shard = self.plan.shard_of_point(qu.point[0], qu.point[1])
            if qu.kind is QueryUpdateKind.MOVE:
                old_shard = lookup(qu.qid)
                if old_shard == new_shard:
                    per_shard[new_shard].append(qu)
                else:
                    per_shard[old_shard].append(
                        QueryUpdate(qu.qid, QueryUpdateKind.TERMINATE)
                    )
                    per_shard[new_shard].append(
                        QueryUpdate(
                            qu.qid, QueryUpdateKind.INSERT, qu.point, qu.k
                        )
                    )
            else:
                gone = overlay.get(qu.qid) == _GONE
                if not gone and (
                    qu.qid in overlay or qu.qid in self._query_shard
                ):
                    # Match the single-engine failure mode (install_query
                    # raises KeyError on a duplicate insert).
                    raise KeyError(f"query {qu.qid} is already installed")
                per_shard[new_shard].append(qu)
            overlay[qu.qid] = new_shard
        for qid, shard in overlay.items():
            if shard == _GONE:
                # pop, not del: a query inserted and terminated within the
                # same batch was never committed to the routing table.
                self._query_shard.pop(qid, None)
            else:
                self._query_shard[qid] = shard
        return per_shard

    def _apply_positions(self, object_updates: Sequence[ObjectUpdate]) -> None:
        positions = self._positions
        for upd in object_updates:
            if upd.new is not None:
                positions[upd.oid] = upd.new
            else:
                positions.pop(upd.oid, None)

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        per_shard_qu = self._split_query_updates(query_updates)
        object_updates = tuple(object_updates)
        self._apply_positions(object_updates)
        changed_sets = self._call_all(
            "process",
            [(object_updates, tuple(qus)) for qus in per_shard_qu],
        )
        changed: set[int] = set()
        for shard_changed in changed_sets:
            changed.update(shard_changed)
        return changed

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        """Route a columnar batch: object maintenance replicated to every
        shard (the replication contract above — one flat batch fans out
        as-is, no per-shard re-packing), query updates split by owning
        shard exactly as in :meth:`process`.  Each shard engine runs its
        own ``process_flat`` (CPM's columnar loop), so the fast path stays
        flat end to end across the service layer."""
        if query_updates is None:
            query_updates = batch.query_updates
        per_shard_qu = self._split_query_updates(query_updates)
        positions = self._positions
        for oid, nx, ny, dis in zip(
            batch.oids, batch.new_xs, batch.new_ys, batch.disappear
        ):
            if dis:
                positions.pop(oid, None)
            else:
                positions[oid] = (nx, ny)
        changed_sets = self._call_all(
            "process_flat",
            [(batch, tuple(qus)) for qus in per_shard_qu],
        )
        changed: set[int] = set()
        for shard_changed in changed_sets:
            changed.update(shard_changed)
        return changed

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> dict[int, ResultDelta]:
        # Snapshot the routing before it mutates: the merge below needs to
        # know which shard held each query at the *start* of the cycle.
        origin_shard = dict(self._query_shard) if query_updates else {}
        per_shard_qu = self._split_query_updates(query_updates)
        object_updates = tuple(object_updates)
        self._apply_positions(object_updates)
        shard_deltas = self._call_all(
            "process_deltas",
            [(object_updates, tuple(qus)) for qus in per_shard_qu],
        )
        return self._merge_shard_deltas(origin_shard, shard_deltas)

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> dict[int, ResultDelta]:
        """Columnar delta reporting: :meth:`process_flat` routing with the
        :meth:`process_deltas` merge.  Each shard engine runs its own
        ``process_deltas_flat`` (CPM's columnar loop with capture), so the
        streaming path stays flat end to end across the service layer."""
        if query_updates is None:
            query_updates = batch.query_updates
        origin_shard = dict(self._query_shard) if query_updates else {}
        per_shard_qu = self._split_query_updates(query_updates)
        positions = self._positions
        for oid, nx, ny, dis in zip(
            batch.oids, batch.new_xs, batch.new_ys, batch.disappear
        ):
            if dis:
                positions.pop(oid, None)
            else:
                positions[oid] = (nx, ny)
        shard_deltas = self._call_all(
            "process_deltas_flat",
            [(batch, tuple(qus)) for qus in per_shard_qu],
        )
        return self._merge_shard_deltas(origin_shard, shard_deltas)

    def _merge_shard_deltas(
        self,
        origin_shard: dict[int, int],
        shard_deltas: Sequence[dict[int, ResultDelta]],
    ) -> dict[int, ResultDelta]:
        """Merge per-shard delta maps into the single-engine view."""
        merged: dict[int, ResultDelta] = {}
        reported: dict[int, list[tuple[int, ResultDelta]]] = {}
        for shard, deltas in enumerate(shard_deltas):
            for qid, delta in deltas.items():
                reported.setdefault(qid, []).append((shard, delta))
        for qid, entries in reported.items():
            if len(entries) == 1:
                merged[qid] = entries[0][1]
                continue
            # The query crossed shards this cycle.  Only the origin shard
            # knows the true pre-cycle result: transit shards saw the
            # query appear out of nowhere (empty "old" result).
            origin = origin_shard.get(qid)
            origin_delta = next((d for s, d in entries if s == origin), None)
            if origin_delta is not None and not origin_delta.terminated:
                # The query ended the cycle back on its origin shard,
                # whose delta already diffs against the true old result;
                # the other shards only saw transient installs.
                merged[qid] = origin_delta
                continue
            old = list(origin_delta.outgoing) if origin_delta is not None else []
            fresh = next((d for _s, d in entries if not d.terminated), None)
            if fresh is not None:
                merged[qid] = diff_results(qid, old, list(fresh.result))
            else:
                merged[qid] = diff_results(qid, old, [], terminated=True)
        return merged
