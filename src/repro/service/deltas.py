"""Structured per-query result deltas.

The CPM engine is inherently incremental: each cycle it touches only the
queries whose books changed.  The delta layer exposes that incrementality
at the API surface — instead of snapshotting full result tables, a cycle
reports, per affected query, which neighbors *entered* the result, which
*left* it, and whether the surviving neighbors were merely re-ordered by
their own movement.  Result streaming (``repro.service.subscriptions``)
ships these deltas to subscribers; a client holding the previous result
can reconstruct the new one from the delta alone (and the full table is
carried along for clients that prefer absolute state).

Deltas follow the library-wide result convention: entries are
``(distance, object_id)`` pairs sorted ascending by ``(distance, oid)``.
"""

from __future__ import annotations

from dataclasses import dataclass

ResultEntry = tuple[float, int]


@dataclass(frozen=True, slots=True)
class ResultDelta:
    """The change of one query's k-NN result over one processing cycle.

    Attributes:
        qid: the query id.
        incoming: entries present in the new result but not the old one
            (new-result distances), ascending.
        outgoing: entries present in the old result but not the new one
            (old-result distances), ascending.
        reordered: true when at least one *surviving* neighbor changed its
            distance (the common "NN set stable, order shuffled" cycle).
        result: the full new result table (ascending ``(dist, oid)``).
        terminated: true when the query was terminated this cycle; the
            delta then drains the old result (``outgoing`` = old entries,
            ``result`` empty).
    """

    qid: int
    incoming: tuple[ResultEntry, ...]
    outgoing: tuple[ResultEntry, ...]
    reordered: bool
    result: tuple[ResultEntry, ...]
    terminated: bool = False

    @property
    def changed(self) -> bool:
        """Whether the result actually differs from the previous cycle."""
        return bool(
            self.incoming or self.outgoing or self.reordered or self.terminated
        )

    def apply_to(self, old: list[ResultEntry]) -> list[ResultEntry]:
        """Reconstruct the new result from the previous one (client side).

        ``reordered`` survivors carry fresh distances, so reconstruction
        takes the authoritative distances from :attr:`result`; this method
        exists to *verify* delta consistency (tests, paranoid clients).
        """
        outgoing_ids = {oid for _d, oid in self.outgoing}
        survivors = [e for e in old if e[1] not in outgoing_ids]
        if len(survivors) + len(self.incoming) != len(self.result):
            raise ValueError(f"delta for query {self.qid} does not fit the old result")
        return list(self.result)


def diff_results(
    qid: int,
    old: list[ResultEntry] | tuple[ResultEntry, ...],
    new: list[ResultEntry] | tuple[ResultEntry, ...],
    *,
    terminated: bool = False,
) -> ResultDelta:
    """Compute the :class:`ResultDelta` between two result tables."""
    old_ids = {oid for _d, oid in old}
    new_ids = {oid for _d, oid in new}
    incoming = tuple(e for e in new if e[1] not in old_ids)
    outgoing = tuple(e for e in old if e[1] not in new_ids)
    # A survivor whose distance changed re-sorts the list: compare the
    # surviving sub-sequences rather than positions (an incomer shifts
    # positions without any survivor having moved).
    reordered = [e for e in old if e[1] in new_ids] != [
        e for e in new if e[1] in old_ids
    ]
    return ResultDelta(
        qid=qid,
        incoming=incoming,
        outgoing=outgoing,
        reordered=reordered,
        result=tuple(new),
        terminated=terminated,
    )
