"""Shared-memory transport for columnar update batches.

``ProcessShardExecutor`` talks to its workers over pipes, so by default
every argument — including a cycle's :class:`repro.updates.FlatUpdateBatch`
— is pickled, copied into the pipe, copied out and unpickled.  For the
update stream that is the dominant transfer cost of a sharded cycle: the
batch is 42 bytes per row (five 8-byte columns plus two mask bytes) and
crosses the pipe every timestamp.

Because the batch columns are buffer-backed (``array('q')`` /
``array('d')`` / ``bytearray``), they can instead be written into one
``multiprocessing.shared_memory`` block — a single memcpy per column on
the parent side, a single attach + memcpy on the worker side — while only
a fixed-size :class:`ShmBatchHandle` (segment name, row count, timestamp
and the rare query updates) travels through the pipe.

Lifetime protocol: the *parent* owns the segment.  :func:`pack_flat_batch`
creates it, the handle crosses the pipe, the worker attaches, copies the
columns out and detaches immediately (:func:`unpack_flat_batch`), and the
parent unlinks after the command's reply arrives.  Workers suppress the
resource tracker's registration while attaching — before Python 3.13
the tracker registers every attach as if it were ownership, and (with a
fork-context worker, which shares the parent's tracker process) either
keeping or undoing that registration corrupts the parent's own
ownership record.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.updates import FlatUpdateBatch, QueryUpdate

#: bytes per row: oids/old_xs/old_ys/new_xs/new_ys at 8 bytes + two masks.
ROW_BYTES = 42

#: default minimum batch length for the shared-memory path.  Below this the
#: fixed per-segment cost (shm_open/mmap/unlink syscalls on both sides)
#: exceeds what pickling a few KB through the pipe costs; measured
#: crossover is a few hundred rows (see ``python -m repro.perf micro``).
SHM_MIN_ROWS = 256


@dataclass(frozen=True, slots=True)
class ShmBatchHandle:
    """Fixed-size pipe-picklable descriptor of a batch parked in shm."""

    name: str
    n: int
    timestamp: int
    query_updates: tuple[QueryUpdate, ...]


def pack_flat_batch(
    batch: FlatUpdateBatch,
) -> tuple[ShmBatchHandle, shared_memory.SharedMemory]:
    """Write ``batch``'s columns into a fresh shared-memory block.

    Returns the pipe-ready handle and the segment itself; the caller owns
    the segment and must ``close()`` + ``unlink()`` it once the consumer
    has copied the columns out (i.e. after the command's reply).
    """
    n = len(batch)
    shm = shared_memory.SharedMemory(create=True, size=max(1, ROW_BYTES * n))
    buf = shm.buf
    offset = 0
    for view in batch.column_buffers():
        nbytes = view.nbytes
        buf[offset : offset + nbytes] = view
        offset += nbytes
    handle = ShmBatchHandle(shm.name, n, batch.timestamp, batch.query_updates)
    return handle, shm


def release_segment(shm: shared_memory.SharedMemory) -> None:
    """Detach and destroy a segment created by :func:`pack_flat_batch`."""
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def unpack_flat_batch(handle: ShmBatchHandle) -> FlatUpdateBatch:
    """Rebuild the batch from a segment some other process owns.

    Attaches, memcpys the columns into fresh buffer-backed arrays and
    detaches before returning — the returned batch never aliases the
    segment, so the owner may unlink it at any point afterwards.
    """
    # Attaching registers this process as an owner with the resource
    # tracker (unconditional before 3.13's track=False), which is wrong
    # twice over: a spawn-context worker's tracker would destroy (or
    # warn about) a segment the parent still owns, and a fork-context
    # worker SHARES the parent's tracker process, so un-registering
    # after the fact would strip the parent's own registration and make
    # its eventual unlink spew KeyErrors.  Suppressing the registration
    # during the attach sidesteps both.
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *a, **kw: None
    try:
        shm = shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = orig_register
    try:
        return FlatUpdateBatch.from_column_bytes(
            handle.n, shm.buf, handle.timestamp, handle.query_updates
        )
    finally:
        shm.close()


def encode_args(
    args: tuple, segments: list, min_rows: int = SHM_MIN_ROWS
) -> tuple:
    """Swap large :class:`FlatUpdateBatch` arguments for shm handles.

    Segments created along the way are appended to ``segments``; the
    caller releases them (:func:`release_segment`) after the reply.
    Arguments below ``min_rows`` — and everything that is not a flat
    batch — pass through untouched.
    """
    if not any(
        type(a) is FlatUpdateBatch and len(a) >= min_rows for a in args
    ):
        return args
    encoded = []
    for a in args:
        if type(a) is FlatUpdateBatch and len(a) >= min_rows:
            handle, shm = pack_flat_batch(a)
            segments.append(shm)
            encoded.append(handle)
        else:
            encoded.append(a)
    return tuple(encoded)


def decode_args(args: tuple) -> tuple:
    """Inverse of :func:`encode_args`, run inside the worker."""
    if not any(type(a) is ShmBatchHandle for a in args):
        return args
    return tuple(
        unpack_flat_batch(a) if type(a) is ShmBatchHandle else a for a in args
    )
