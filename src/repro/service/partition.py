"""True object partitioning: halo cells, cell-sync fan-out, pulls, migration.

The replicated tier (:mod:`repro.service.sharding`) keeps shards
byte-identical to a single engine by replaying *every* object update on
*every* shard — correct, but the cores buy nothing on object
maintenance.  This module is the partitioned alternative:

* **Ownership + halo** — each :class:`PartitionShardEngine` runs over
  the *full* workspace grid (identical packed cell ids everywhere) but
  materializes object data only for its owned column block plus a
  configurable halo of border columns.  Every other slot holds a
  :class:`_HaloCell` sentinel.
* **Cell-sync protocol** — the coordinator (:class:`PartitionedMonitor`)
  keeps the one authoritative object store and translates each cycle's
  :class:`FlatUpdateBatch` into per-shard row streams: a row is fanned
  only to the shards *tracking* the touched cells (static column mask ∪
  dynamic interest acquired through pulls/prefetch).  A move whose old
  cell is tracked but whose new cell is not becomes a **leave** row
  (``appear`` and ``disappear`` both set): the shard applies the delete
  phase and the influence probes of the cross-cell move, but no insert.
* **Pull path** — when CPM re-computation expands past the halo, the
  first attribute access on a sentinel fetches the cell's rows from the
  coordinator store, synchronously over the shard's command pipe.  The
  protocol guarantees consistency without per-cell versions: pulls can
  only happen during ``partition_finish`` (the begin/apply commands run
  no searches), and by then the coordinator has applied the *whole*
  cycle to its store — so pulled data always equals the post-cycle
  truth the single engine would see.  Every pull registers dynamic
  interest so later cycles fan rows to the copy; ``partition_finish``
  evicts pulled cells no influence region marks anymore and releases
  the interest.
* **Live query migration** — a cross-boundary query MOVE carries the
  query's bookkeeping (result list, influence marks, Figure 3.6 visit
  list) to the new owner via ``migrate_out_query``/``migrate_in_query``
  instead of the replicated tier's terminate+reinstall split.  See the
  method docstrings for what is reused and why the counters still match
  the single engine exactly.
* **Shard-parallel ingest** — the coordinator streams its translation
  in chunks through the executor's ``submit_all`` pipeline, so with
  :class:`~repro.service.executor.ProcessShardExecutor` the shards
  apply chunk *k* while the coordinator is still translating chunk
  *k+1* (and the ingest driver is assembling the next batch).

Byte-identity contract (property-pinned): results, changed sets,
deltas **and all five deterministic counters** equal the single
engine's — inserts/deletes come from the one coordinator store, and
search/probe/mark work happens exactly once, on the hosting shard.
This is *stronger* than the replicated tier, whose aggregate
inserts/deletes are ``n_shards``-fold.
"""

from __future__ import annotations

import pickle
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from math import hypot

from repro.core.bookkeeping import CycleScratch, QueryState
from repro.core.cpm import CPMMonitor
from repro.core.strategies import FilteredStrategy
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.grid.stats import GridStats
from repro.monitor import ResultEntry
from repro.service.deltas import ResultDelta, diff_results
from repro.service.executor import SerialShardExecutor, ShardExecutor
from repro.service.sharding import ShardedMonitor, ShardPlan
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
)

#: Dense cell stores only — the sentinel scheme swaps objects into grid
#: slots, which requires the list-backed store (every Grid backend uses
#: one below this cell count).
_DENSE_LIMIT = 1 << 21

#: Translation streams in chunks so process-backed shards overlap chunk
#: application with coordinator-side translation of the next chunk.
_CHUNK_ROWS = 2048
_MAX_CHUNKS = 64


class _HaloCell:
    """Sentinel occupying every untracked cell slot of a shard's grid.

    Any attribute access (``oids``, ``xs``, ``slot``, ``columns``, a
    method — the search loops only ever read attributes) materializes
    the real cell by pulling its rows from the coordinator and forwards
    to it.  After the first touch the grid slot holds the real cell, so
    subsequent slot reads never see the sentinel again.
    """

    __slots__ = ("_engine", "_cid")

    def __init__(self, engine: "PartitionShardEngine", cid: int) -> None:
        self._engine = engine
        self._cid = cid

    def __getattr__(self, name: str):
        return getattr(self._engine._materialize(self._cid), name)


@dataclass(frozen=True)
class PartitionShardFactory:
    """Picklable constructor spec for one partitioned shard engine."""

    cells_per_axis: int
    bounds: tuple[float, float, float, float]
    shard: int
    track_lo: int
    track_hi: int
    backend: str | None = None

    def __call__(self) -> "PartitionShardEngine":
        return PartitionShardEngine(
            self.cells_per_axis,
            bounds=self.bounds,
            shard=self.shard,
            track_lo=self.track_lo,
            track_hi=self.track_hi,
            backend=self.backend,
        )


class PartitionShardEngine(CPMMonitor):
    """CPM engine owning a column block + halo of the workspace grid.

    The grid spans the *full* workspace (cell ids identical to the
    single engine and to every peer shard); columns outside
    ``[track_lo, track_hi)`` start as :class:`_HaloCell` sentinels.
    The coordinator drives cycles through the three-command protocol
    ``partition_begin`` / ``partition_apply``* / ``partition_finish``
    and never routes a row here unless this shard tracks the touched
    cell — so the apply phase never pulls, and pulls are confined to
    the finish phase where the parent process is guaranteed to be
    listening on the command pipe.
    """

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        shard: int = 0,
        track_lo: int = 0,
        track_hi: int | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(cells_per_axis, bounds=bounds, backend=backend)
        grid = self._grid
        if not isinstance(grid._cells, list) or grid.cols * grid.rows > _DENSE_LIMIT:
            raise ValueError(
                "partitioned shards require the dense list cell store "
                f"(grid {grid.cols}x{grid.rows})"
            )
        self.shard = shard
        self.track_lo = track_lo
        self.track_hi = grid.cols if track_hi is None else track_hi
        self._dyn_tracked: set[int] = set()
        self._pull_fn = None
        cells = grid._cells
        rows = grid.rows
        for i in range(grid.cols):
            if self.track_lo <= i < self.track_hi:
                continue
            base = i * rows
            for j in range(rows):
                cells[base + j] = _HaloCell(self, base + j)

    # ------------------------------------------------------------------
    # Pull path
    # ------------------------------------------------------------------

    def bind_pull_transport(self, fn) -> None:
        """Install the executor-provided ``fn(cid) -> (oids, xs, ys)``."""
        self._pull_fn = fn

    def _materialize(self, cid: int):
        """Replace a sentinel with the real cell pulled from the store."""
        cell = self._grid._cells[cid]
        if type(cell) is not _HaloCell:
            return cell
        pull = self._pull_fn
        if pull is None:
            raise RuntimeError(
                f"shard {self.shard} touched untracked cell {cid} with no "
                "pull transport bound"
            )
        oids, xs, ys = pull(cid)
        return self._install_cell(cid, oids, xs, ys)

    def _install_cell(self, cid: int, oids, xs, ys):
        """Install pulled/prefetched rows as a real cell — zero counters.

        The single engine never performs this storage motion, so neither
        inserts nor scans are charged; the object→cell map and the grid
        occupancy tallies are fixed up so subsequent (counted) work is
        indistinguishable from running over a fully-populated grid.
        """
        grid = self._grid
        cell = grid.cell_factory()
        object_cells = self._object_cells
        for oid, x, y in zip(oids, xs, ys):
            cell.insert(oid, x, y)
            object_cells[oid] = cid
        grid._cells[cid] = cell
        if cell.oids:
            grid._occupied += 1
            grid._n_objects += len(cell.oids)
        self._dyn_tracked.add(cid)
        return cell

    def _evict_unmarked(self) -> list[int]:
        """Drop pulled cells no influence region marks; return their ids.

        Runs at the tail of ``partition_finish``: a pulled cell that is
        still inside some query's influence region stays (its rows keep
        syncing), everything else reverts to a sentinel so the dynamic
        fan-out stays bounded by the live influence surface.
        """
        grid = self._grid
        cells = grid._cells
        marks = grid._marks
        object_cells = self._object_cells
        released: list[int] = []
        for cid in sorted(self._dyn_tracked):
            if marks[cid]:
                continue
            cell = cells[cid]
            coids = cell.oids
            for oid in coids:
                del object_cells[oid]
            if coids:
                grid._occupied -= 1
                grid._n_objects -= len(coids)
            cells[cid] = _HaloCell(self, cid)
            released.append(cid)
        for cid in released:
            self._dyn_tracked.discard(cid)
        return released

    # ------------------------------------------------------------------
    # Partitioned cycle protocol
    # ------------------------------------------------------------------

    _cycle_scratch: dict[int, CycleScratch] | None = None
    _cycle_qus: tuple[QueryUpdate, ...] = ()
    _cycle_updated: set[int] = frozenset()  # type: ignore[assignment]
    _cycle_before: dict[int, list[ResultEntry]] | None = None

    def partition_begin(
        self, query_updates: tuple[QueryUpdate, ...], want_deltas: bool
    ) -> None:
        """Open one cycle: scratch + (optionally) targeted delta capture.

        Replicates the head of
        :meth:`repro.monitor.ContinuousMonitor._captured_deltas` so the
        shard-local capture is byte-identical to the single engine's.
        """
        if self._cycle_scratch is not None:
            raise RuntimeError("partitioned cycle already open")
        self._cycle_qus = query_updates
        self._cycle_updated = {qu.qid for qu in query_updates}
        self._cycle_scratch = {}
        if want_deltas:
            if self._delta_log is not None:
                raise RuntimeError("process_deltas is not re-entrant")
            before: dict[int, list[ResultEntry]] = {}
            installed = set(self.query_ids())
            for qu in query_updates:
                if qu.qid in installed and qu.qid not in before:
                    before[qu.qid] = self.result(qu.qid)
            self._delta_log = before
            self._cycle_before = before
        else:
            self._cycle_before = None

    def partition_apply(self, chunk: FlatUpdateBatch) -> None:
        """Apply one translated row chunk inside the open cycle."""
        scratch = self._cycle_scratch
        if scratch is None:
            raise RuntimeError("partition_apply outside a partitioned cycle")
        self._apply_flat_rows(chunk, scratch, self._cycle_updated)

    def partition_finish(self):
        """Close the cycle: finalize, query updates, deltas, eviction.

        Returns ``(payload, released)`` where ``payload`` is the changed
        set (or the delta dict when the cycle opened with
        ``want_deltas``) and ``released`` lists the dynamically-tracked
        cell ids evicted — the coordinator drops their fan-out interest.
        """
        scratch = self._cycle_scratch
        if scratch is None:
            raise RuntimeError("partition_finish outside a partitioned cycle")
        query_updates = self._cycle_qus
        before = self._cycle_before
        try:
            try:
                changed = self._finish_cycle(scratch, query_updates)
            finally:
                self._delta_log = None
            if before is None:
                payload = changed
            else:
                # Tail of ``_captured_deltas``, verbatim.
                deltas: dict[int, ResultDelta] = {}
                for qid in changed:
                    deltas[qid] = diff_results(
                        qid, before.get(qid, []), self.result(qid)
                    )
                live = set(self.query_ids())
                for qu in query_updates:
                    if qu.kind is QueryUpdateKind.TERMINATE and qu.qid not in live:
                        deltas[qu.qid] = diff_results(
                            qu.qid, before.get(qu.qid, []), [], terminated=True
                        )
                payload = deltas
            released = self._evict_unmarked()
            return payload, released
        finally:
            self._cycle_scratch = None
            self._cycle_qus = ()
            self._cycle_updated = frozenset()  # type: ignore[assignment]
            self._cycle_before = None

    # ------------------------------------------------------------------
    # Row application: leave rows
    # ------------------------------------------------------------------

    def _apply_flat_rows(
        self,
        batch: FlatUpdateBatch,
        scratch: dict[int, CycleScratch],
        updated_qids: set[int],
    ) -> None:
        """Splice **leave** rows (both masks set) into the base loop.

        The coordinator encodes "this object moved out of your tracked
        region" as a row with ``appear`` *and* ``disappear`` set and the
        real new coordinates in ``new_xs``/``new_ys`` (the influence
        probes need them).  The base loop never sees such rows — the
        stream is split into plain segments around them, preserving row
        order exactly.
        """
        appear = batch.appear
        disappear = batch.disappear
        leave_rows = [
            i for i, (a, d) in enumerate(zip(appear, disappear)) if a and d
        ]
        if not leave_rows:
            super()._apply_flat_rows(batch, scratch, updated_qids)
            return
        pos = 0
        for i in leave_rows:
            if i > pos:
                super()._apply_flat_rows(
                    _sub_batch(batch, pos, i), scratch, updated_qids
                )
            self._apply_leave(
                batch.oids[i], batch.new_xs[i], batch.new_ys[i], scratch, updated_qids
            )
            pos = i + 1
        if pos < len(batch.oids):
            super()._apply_flat_rows(
                _sub_batch(batch, pos, len(batch.oids)), scratch, updated_qids
            )

    def _apply_leave(
        self,
        oid: int,
        nx: float,
        ny: float,
        scratch: dict[int, CycleScratch],
        updated_qids: set[int],
    ) -> None:
        """A cross-cell move whose destination this shard does not track.

        Mirrors the delete phase of the base loop's cross-cell move
        byte-for-byte — including the influence probes evaluated at the
        *new* position — and then simply forgets the object instead of
        inserting it.  Probe equivalence with the single engine holds
        because a query marked on the old cell is hosted here (marked ⟹
        tracked), and its mark on the *new* cell (if any) lies in a
        tracked cell too — in which case the coordinator sent a plain
        move row instead of a leave row.
        """
        grid = self._grid
        cells_store = grid._cells
        marks_store = grid._marks
        probes = self._query_probes
        scratch_get = scratch.get
        old_cid = self._object_cells.pop(oid)
        cell = cells_store[old_cid]
        idx = None if cell is None else cell.slot.pop(oid, None)
        if idx is None:
            raise KeyError(
                f"object {oid} not found in cell {grid.unpack(old_cid)}"
            )
        coids = cell.oids
        last_oid = coids.pop()
        lx = cell.xs.pop()
        ly = cell.ys.pop()
        if last_oid != oid:
            coids[idx] = last_oid
            cell.xs[idx] = lx
            cell.ys[idx] = ly
            cell.slot[last_oid] = idx
        elif not coids:
            grid._occupied -= 1
        grid._n_objects -= 1
        grid.stats.deletes += 1
        ms = marks_store[old_cid]
        if ms:
            for qid in ms:
                if qid in updated_qids:
                    continue
                state, nn, pqx, pqy, ispt = probes[qid]
                sc = scratch_get(qid)
                if oid in nn._dists:
                    if sc is None:
                        sc = scratch[qid] = self._acquire_scratch(state)
                    if ispt:
                        d = hypot(nx - pqx, ny - pqy)
                        ok = True
                    else:
                        ok = state.strategy.accepts(nx, ny, oid)
                        d = state.strategy.dist(nx, ny) if ok else 0.0
                    if ok and d <= state.best_dist:
                        nn.update_dist(oid, d)
                        sc.note_reorder()
                    else:
                        nn.remove(oid)
                        sc.note_outgoing()
                elif sc is not None and oid in sc.in_list._dists:
                    sc.in_list.remove(oid)

    # ------------------------------------------------------------------
    # Live query migration
    # ------------------------------------------------------------------

    def migrate_out_query(self, qid: int) -> dict:
        """Extract a query's full bookkeeping for carriage to a peer.

        The influence marks are removed *silently* (no ``mark_ops``, the
        mark count fixed up directly): the marks are moving with the
        query, a storage motion the single engine never performs.  The
        counted unmark happens on the destination, inside its
        ``_finish_cycle`` MOVE handling — exactly where the single
        engine charges it.
        """
        state = self._queries.pop(qid)
        del self._query_probes[qid]
        grid = self._grid
        marks_store = grid._marks
        removed = 0
        for cid in state.visit_cids[: state.marked_upto]:
            ms = marks_store[cid]
            if ms and qid in ms:
                ms.remove(qid)
                removed += 1
        grid._mark_count -= removed
        return {
            "qid": qid,
            "k": state.k,
            "strategy": state.strategy,
            "entries": state.nn.entries(),
            "best_dist": state.best_dist,
            "visit_cids": list(state.visit_cids),
            "visit_keys": list(state.visit_keys),
            "marked_upto": state.marked_upto,
            "heap": list(state.heap._heap),
            "heap_seq": state.heap._seq,
        }

    def migrate_in_query(self, carried: dict, prefetch: Sequence[tuple]) -> None:
        """Adopt a migrated query: prefetched cells + verbatim bookkeeping.

        ``prefetch`` carries the cells around the query's influence
        region so the MOVE's re-search (Figure 3.9 → fresh Figure 3.4
        search, same as the single engine) runs on local data instead of
        pulling cell by cell.  The carried visit list, result list and
        heap are installed verbatim; the influence marks are re-applied
        silently (the counted removal happens in this cycle's
        ``_finish_cycle``, matching the single engine's ``remove_query``
        accounting for a moved query).
        """
        cells = self._grid._cells
        for cid, oids, xs, ys in prefetch:
            if type(cells[cid]) is _HaloCell:
                self._install_cell(cid, oids, xs, ys)
        qid = carried["qid"]
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        strategy = carried["strategy"]
        if isinstance(strategy, FilteredStrategy):
            strategy.bind_tags(self.tag_table)
        state = QueryState(
            qid, strategy, carried["k"], strategy.partition(self._grid)
        )
        state.nn.replace(carried["entries"])
        state.best_dist = carried["best_dist"]
        state.visit_cids = list(carried["visit_cids"])
        state.visit_keys = list(carried["visit_keys"])
        state.marked_upto = carried["marked_upto"]
        state.heap._heap = list(carried["heap"])
        state.heap._seq = carried["heap_seq"]
        grid = self._grid
        marks_store = grid._marks
        added = 0
        for cid in state.visit_cids[: state.marked_upto]:
            ms = marks_store[cid]
            if ms is None:
                marks_store[cid] = {qid}
                added += 1
            elif qid not in ms:
                ms.add(qid)
                added += 1
        grid._mark_count += added
        self._queries[qid] = state
        self._query_probes[qid] = (
            state,
            state.nn,
            state.qx,
            state.qy,
            state.is_point,
        )

    # ------------------------------------------------------------------
    # Checkpoint contract (supervisor)
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        """Full-fidelity snapshot: cells, marks, queries *with* bookkeeping.

        Unlike the base :class:`~repro.monitor.MonitorState` capture
        (which re-installs queries through fresh searches — searches
        that would pull cells nobody logged), this snapshot records the
        exact storage and bookkeeping and its restore performs **zero**
        searches and zero pulls.  Consequence: a checkpointed rebuild is
        counter-exact, not just results-exact.
        """
        grid = self._grid
        cells: dict[int, tuple] = {}
        for cid, cell in enumerate(grid._cells):
            if cell is None or type(cell) is _HaloCell:
                continue
            cells[cid] = (tuple(cell.oids), tuple(cell.xs), tuple(cell.ys))
        marks = {
            cid: sorted(ms)
            for cid, ms in enumerate(grid._marks)
            if ms
        }
        queries = []
        for qid, state in self._queries.items():
            queries.append(
                {
                    "qid": qid,
                    "k": state.k,
                    "strategy": state.strategy,
                    "entries": state.nn.entries(),
                    "best_dist": state.best_dist,
                    "visit_cids": list(state.visit_cids),
                    "visit_keys": list(state.visit_keys),
                    "marked_upto": state.marked_upto,
                    "heap": list(state.heap._heap),
                    "heap_seq": state.heap._seq,
                }
            )
        payload = {
            "partition_capture": True,
            "cells": cells,
            "dyn": sorted(self._dyn_tracked),
            "marks": marks,
            "mark_count": grid._mark_count,
            "tags": dict(self.tag_table),
            "queries": queries,
            "stats": self.stats.snapshot(),
        }
        # Round-trip so the snapshot shares no mutable state with the
        # live engine (same detachment the base capture performs).
        return pickle.loads(pickle.dumps(payload))

    def restore_state(self, state: dict) -> None:
        if not isinstance(state, dict) or not state.get("partition_capture"):
            raise ValueError(
                "partitioned shards restore only partition captures"
            )
        if self._queries or self._object_cells:
            raise RuntimeError(
                "restore_state requires an empty engine"
            )
        grid = self._grid
        cells_store = grid._cells
        object_cells = self._object_cells
        for cid, (oids, xs, ys) in state["cells"].items():
            cell = grid.cell_factory()
            for oid, x, y in zip(oids, xs, ys):
                cell.insert(oid, x, y)
                object_cells[oid] = cid
            cells_store[cid] = cell
            if oids:
                grid._occupied += 1
                grid._n_objects += len(oids)
        self._dyn_tracked = set(state["dyn"])
        marks_store = grid._marks
        for cid, qids in state["marks"].items():
            marks_store[cid] = set(qids)
        grid._mark_count = state["mark_count"]
        self.tag_table.update(state["tags"])
        for rec in state["queries"]:
            strategy = rec["strategy"]
            if isinstance(strategy, FilteredStrategy):
                strategy.bind_tags(self.tag_table)
            qstate = QueryState(
                rec["qid"], strategy, rec["k"], strategy.partition(grid)
            )
            qstate.nn.replace(rec["entries"])
            qstate.best_dist = rec["best_dist"]
            qstate.visit_cids = list(rec["visit_cids"])
            qstate.visit_keys = list(rec["visit_keys"])
            qstate.marked_upto = rec["marked_upto"]
            qstate.heap._heap = list(rec["heap"])
            qstate.heap._seq = rec["heap_seq"]
            self._queries[rec["qid"]] = qstate
            self._query_probes[rec["qid"]] = (
                qstate,
                qstate.nn,
                qstate.qx,
                qstate.qy,
                qstate.is_point,
            )
        self.stats.restore(state["stats"])


def _sub_batch(batch: FlatUpdateBatch, lo: int, hi: int) -> FlatUpdateBatch:
    """Contiguous row slice of a flat batch (columns keep their types)."""
    return FlatUpdateBatch(
        batch.timestamp,
        batch.oids[lo:hi],
        batch.old_xs[lo:hi],
        batch.old_ys[lo:hi],
        batch.new_xs[lo:hi],
        batch.new_ys[lo:hi],
        batch.appear[lo:hi],
        batch.disappear[lo:hi],
    )


class _ShardRows:
    """Per-shard row accumulator for one translation chunk."""

    __slots__ = ("oids", "old_xs", "old_ys", "new_xs", "new_ys", "appear", "disappear")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.oids: list[int] = []
        self.old_xs: list[float] = []
        self.old_ys: list[float] = []
        self.new_xs: list[float] = []
        self.new_ys: list[float] = []
        self.appear = bytearray()
        self.disappear = bytearray()

    def append(self, oid, ox, oy, nx, ny, app, dis) -> None:
        self.oids.append(oid)
        self.old_xs.append(ox)
        self.old_ys.append(oy)
        self.new_xs.append(nx)
        self.new_ys.append(ny)
        self.appear.append(app)
        self.disappear.append(dis)

    def take(self, timestamp: int) -> FlatUpdateBatch:
        batch = FlatUpdateBatch(
            timestamp,
            self.oids,
            self.old_xs,
            self.old_ys,
            self.new_xs,
            self.new_ys,
            self.appear,
            self.disappear,
        )
        self.reset()
        return batch


class PartitionedMonitor(ShardedMonitor):
    """Sharded CPM with true object partitioning (see module docstring).

    The coordinator owns the authoritative object store (a plain dense
    :class:`Grid` — its insert/delete tallies *are* the canonical
    counters) and per-cell shard-interest masks; shards receive only the
    rows they track.  Public surface and byte-identity contract match
    :class:`~repro.service.sharding.ShardedMonitor`; counters are
    additionally exact (not ``n_shards``-fold) on inserts/deletes.
    """

    def __init__(
        self,
        n_shards: int,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        halo: int = 1,
        backend: str | None = None,
        executor: ShardExecutor | None = None,
        metrics=None,
    ) -> None:
        if halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        rect = bounds if isinstance(bounds, Rect) else Rect(*bounds)
        self.plan = ShardPlan.build(n_shards, cells_per_axis, rect)
        self.algorithm = "CPM"
        self.name = f"CPM-P{n_shards}"
        self.halo = halo
        cols = self.plan.cols
        self._static_track: list[tuple[int, int]] = []
        col_mask = [0] * cols
        for s in range(n_shards):
            owned = self.plan.owned_columns(s)
            lo = max(0, owned.start - halo)
            hi = min(cols, owned.stop + halo)
            self._static_track.append((lo, hi))
            bit = 1 << s
            for i in range(lo, hi):
                col_mask[i] |= bit
        self._col_mask = col_mask
        self._dyn_mask: dict[int, int] = {}
        self._store = Grid(cells_per_axis, bounds=rect, backend="list")
        if (
            not isinstance(self._store._cells, list)
            or cols * self._store.rows > _DENSE_LIMIT
        ):
            raise ValueError(
                f"partitioning requires a dense cell store (grid {cols}x"
                f"{self._store.rows})"
            )
        self._store_cell: dict[int, int] = {}
        self._executor = executor if executor is not None else SerialShardExecutor()
        bounds_t = (rect.x0, rect.y0, rect.x1, rect.y1)
        self._executor.start(
            [
                PartitionShardFactory(cells_per_axis, bounds_t, s, lo, hi, backend)
                for s, (lo, hi) in enumerate(self._static_track)
            ]
        )
        self._executor.bind_pull_server(self._serve_pull)
        self._query_shard: dict[int, int] = {}
        self._positions: dict[int, Point] = {}
        self._stats = GridStats()
        self.metrics = metrics
        self._n_cycles = 0
        self._n_fanout_rows = 0
        self._n_sync_rows = 0
        self._n_pulls = 0
        self._n_pull_objects = 0
        self._n_prefetch_cells = 0
        self._n_evictions = 0
        self._n_migrations = 0
        if metrics is not None:
            self._m_migrations = metrics.counter(
                "repro_query_migrations_total",
                "Cross-shard query moves served by live bookkeeping migration.",
            )
            self._m_pulls = metrics.counter(
                "repro_partition_pulls_total",
                "Remote cells fetched on demand by partitioned shards.",
            )
            self._m_sync = metrics.counter(
                "repro_partition_sync_rows_total",
                "Update-row copies fanned beyond the first tracking shard.",
            )
        else:
            self._m_migrations = self._m_pulls = self._m_sync = None

    # ------------------------------------------------------------------
    # Stats: canonical inserts/deletes come from the coordinator store
    # ------------------------------------------------------------------

    def _absorb(self, delta: GridStats) -> None:
        """Fold shard counters, *excluding* storage maintenance.

        Shard-side inserts/deletes are replication artifacts (fan-out
        copies, halo churn); the one coordinator store's tallies are
        canonical and folded by :meth:`_fold_store_stats`.  Search,
        probe and mark work happens exactly once — on the hosting
        shard — so those counters fold unscaled.
        """
        stats = self._stats
        stats.cell_scans += delta.cell_scans
        stats.objects_scanned += delta.objects_scanned
        stats.mark_ops += delta.mark_ops

    def _fold_store_stats(self) -> None:
        store_stats = self._store.stats
        self._stats.inserts += store_stats.inserts
        self._stats.deletes += store_stats.deletes
        store_stats.reset()

    # ------------------------------------------------------------------
    # Interest masks + pull service
    # ------------------------------------------------------------------

    def _tracked_mask(self, cid: int) -> int:
        rows = self._store.rows
        return self._col_mask[cid // rows] | self._dyn_mask.get(cid, 0)

    def _serve_pull(self, shard: int, cid: int):
        """Serve one cell to a shard and register its fan-out interest.

        Only callable while the executor is collecting ``partition_finish``
        (or during a direct query call) — by then the coordinator store
        holds the complete post-cycle state, so the pulled rows are
        exactly what the single engine's grid would hold.
        """
        self._dyn_mask[cid] = self._dyn_mask.get(cid, 0) | (1 << shard)
        self._n_pulls += 1
        if self._m_pulls is not None:
            self._m_pulls.inc()
        cell = self._store._cells[cid]
        if cell is None:
            return (), (), ()
        self._n_pull_objects += len(cell.oids)
        return tuple(cell.oids), tuple(cell.xs), tuple(cell.ys)

    def _release_interest(self, shard: int, released: Sequence[int]) -> None:
        bit = 1 << shard
        dyn = self._dyn_mask
        for cid in released:
            mask = dyn.get(cid)
            if mask is None:
                continue
            mask &= ~bit
            if mask:
                dyn[cid] = mask
            else:
                del dyn[cid]
        self._n_evictions += len(released)

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Load the initial dataset — each shard gets only its tracked rows."""
        batch = list(objects)
        store = self._store
        rows = store.rows
        col_mask = self._col_mask
        per_shard: list[list[tuple[int, Point]]] = [
            [] for _ in range(self.n_shards)
        ]
        for oid, point in batch:
            x, y = point
            cid = store.cell_id(x, y)
            store.insert_at(cid, oid, point)
            self._store_cell[oid] = cid
            self._positions[oid] = point
            m = col_mask[cid // rows] | self._dyn_mask.get(cid, 0)
            while m:
                low = m & -m
                per_shard[low.bit_length() - 1].append((oid, point))
                m ^= low
        self._call_all(
            "load_objects", [(rows_,) for rows_ in per_shard]
        )
        self._fold_store_stats()

    # ------------------------------------------------------------------
    # Live query migration (coordinator side)
    # ------------------------------------------------------------------

    def _plan_migrations(
        self, query_updates: Sequence[QueryUpdate]
    ) -> dict[int, tuple[int, int]]:
        """Select the MOVEs served by live migration: ``{qid: (src, dst)}``.

        A query migrates when it is already committed to a shard, this
        batch carries exactly one update for it, that update is a MOVE,
        and the new anchor cell belongs to a different shard.  Anything
        more exotic (install-then-move in one batch, stacked updates)
        falls back to the inherited TERMINATE+INSERT split, which is
        byte-identical too — migration is the fast path, not a special
        semantic.
        """
        if not query_updates:
            return {}
        counts: dict[int, int] = {}
        for qu in query_updates:
            counts[qu.qid] = counts.get(qu.qid, 0) + 1
        migrations: dict[int, tuple[int, int]] = {}
        for qu in query_updates:
            if qu.kind is not QueryUpdateKind.MOVE or counts[qu.qid] != 1:
                continue
            src = self._query_shard.get(qu.qid)
            if src is None:
                continue
            assert qu.point is not None
            dst = self.plan.shard_of_point(qu.point[0], qu.point[1])
            if dst != src:
                migrations[qu.qid] = (src, dst)
        return migrations

    def _build_prefetch(self, carried: dict, dst: int) -> list[tuple]:
        """Cells around the carried influence region, for the destination.

        One bounding box of the influence cells, inflated by one cell —
        the MOVE's re-search at the new anchor lands inside it for any
        short move, so the search runs pull-free.  Every shipped cell
        (including empty ones — a stale empty copy would diverge)
        registers dynamic interest *before* this cycle's rows are
        translated, so the copies stay synchronized.
        """
        cids = carried["visit_cids"][: carried["marked_upto"]]
        if not cids:
            return []
        store = self._store
        rows = store.rows
        cols = self.plan.cols
        ilo = min(cid // rows for cid in cids) - 1
        ihi = max(cid // rows for cid in cids) + 1
        jlo = min(cid % rows for cid in cids) - 1
        jhi = max(cid % rows for cid in cids) + 1
        ilo = max(ilo, 0)
        jlo = max(jlo, 0)
        ihi = min(ihi, cols - 1)
        jhi = min(jhi, rows - 1)
        track_lo, track_hi = self._static_track[dst]
        bit = 1 << dst
        dyn = self._dyn_mask
        cells = store._cells
        payload: list[tuple] = []
        for i in range(ilo, ihi + 1):
            if track_lo <= i < track_hi:
                continue  # statically tracked: already synchronized
            base = i * rows
            for j in range(jlo, jhi + 1):
                cid = base + j
                if dyn.get(cid, 0) & bit:
                    continue  # already materialized on dst via pull
                cell = cells[cid]
                if cell is None:
                    payload.append((cid, (), (), ()))
                else:
                    payload.append(
                        (cid, tuple(cell.oids), tuple(cell.xs), tuple(cell.ys))
                    )
                dyn[cid] = dyn.get(cid, 0) | bit
                self._n_prefetch_cells += 1
        return payload

    def _migrate(self, migrations: dict[int, tuple[int, int]]) -> None:
        for qid, (src, dst) in migrations.items():
            carried = self._call(src, "migrate_out_query", qid)
            prefetch = self._build_prefetch(carried, dst)
            self._call(dst, "migrate_in_query", carried, prefetch)
            self._query_shard[qid] = dst
            self._n_migrations += 1
            if self._m_migrations is not None:
                self._m_migrations.inc()

    # ------------------------------------------------------------------
    # The partitioned cycle
    # ------------------------------------------------------------------

    def _partition_cycle(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate],
        want_deltas: bool,
    ):
        query_updates = tuple(query_updates)
        origin_shard = dict(self._query_shard) if query_updates else {}
        self._migrate(self._plan_migrations(query_updates))
        per_shard_qu = self._split_query_updates(query_updates)
        n = self.n_shards
        executor = self._executor
        executor.submit_all(
            "partition_begin",
            [(tuple(qus), want_deltas) for qus in per_shard_qu],
        )
        self._translate_and_stream(batch)
        self._fold_store_stats()
        executor.submit_all("partition_finish", [()] * n)
        groups = executor.collect_all()
        for group in groups:
            for _payload, stats in group:
                self._absorb(stats)
        self._n_cycles += 1
        finish = groups[-1]
        payloads = []
        for shard, (payload, _stats) in enumerate(finish):
            result, released = payload
            if released:
                self._release_interest(shard, released)
            payloads.append(result)
        if want_deltas:
            return self._merge_shard_deltas(origin_shard, payloads)
        changed: set[int] = set()
        for result in payloads:
            changed |= result
        return changed

    def _translate_and_stream(self, batch: FlatUpdateBatch) -> None:
        """Translate the authoritative batch into per-shard row streams.

        Applies every row to the coordinator store (canonical
        inserts/deletes) and fans it, chunk by chunk, to exactly the
        shards tracking the touched cells.  Cross-boundary moves send a
        plain move row to the new cell's trackers (shards that do not
        know the object take the appearance path off their object map,
        exactly like the single engine's flat loop) and a **leave** row
        to trackers of only the old cell.
        """
        n_rows = len(batch.oids)
        if not n_rows:
            return
        n = self.n_shards
        ts = batch.timestamp
        executor = self._executor
        store = self._store
        rows = store.rows
        cell_id = store.cell_id
        insert_at = store.insert_at
        delete_at = store.delete_at
        relocate_at = store.relocate_at
        col_mask = self._col_mask
        dyn_mask = self._dyn_mask
        store_cell = self._store_cell
        positions = self._positions
        builders = [_ShardRows() for _ in range(n)]
        chunk_rows = max(_CHUNK_ROWS, -(-n_rows // _MAX_CHUNKS))
        fanout = 0
        sync_extra = 0
        pending = 0

        def flush() -> None:
            nonlocal pending
            if not pending:
                return
            executor.submit_all(
                "partition_apply", [(b.take(ts),) for b in builders]
            )
            pending = 0

        for row, (oid, ox, oy, nx, ny, dis) in enumerate(
            zip(
                batch.oids,
                batch.old_xs,
                batch.old_ys,
                batch.new_xs,
                batch.new_ys,
                batch.disappear,
            )
        ):
            if dis:
                old_cid = store_cell.pop(oid)
                delete_at(old_cid, oid)
                del positions[oid]
                m = col_mask[old_cid // rows] | dyn_mask.get(old_cid, 0)
                copies = m.bit_count()
                fanout += copies
                sync_extra += copies - 1
                while m:
                    low = m & -m
                    builders[low.bit_length() - 1].append(
                        oid, ox, oy, nx, ny, 0, 1
                    )
                    m ^= low
            else:
                new_cid = cell_id(nx, ny)
                old_cid = store_cell.get(oid)
                point = (nx, ny)
                if old_cid is None:
                    insert_at(new_cid, oid, point)
                    store_cell[oid] = new_cid
                    positions[oid] = point
                    m = col_mask[new_cid // rows] | dyn_mask.get(new_cid, 0)
                    copies = m.bit_count()
                    fanout += copies
                    sync_extra += copies - 1
                    while m:
                        low = m & -m
                        builders[low.bit_length() - 1].append(
                            oid, ox, oy, nx, ny, 1, 0
                        )
                        m ^= low
                elif old_cid == new_cid:
                    relocate_at(new_cid, oid, point)
                    positions[oid] = point
                    m = col_mask[new_cid // rows] | dyn_mask.get(new_cid, 0)
                    copies = m.bit_count()
                    fanout += copies
                    sync_extra += copies - 1
                    while m:
                        low = m & -m
                        builders[low.bit_length() - 1].append(
                            oid, ox, oy, nx, ny, 0, 0
                        )
                        m ^= low
                else:
                    delete_at(old_cid, oid)
                    insert_at(new_cid, oid, point)
                    store_cell[oid] = new_cid
                    positions[oid] = point
                    m_new = col_mask[new_cid // rows] | dyn_mask.get(new_cid, 0)
                    m_old = col_mask[old_cid // rows] | dyn_mask.get(old_cid, 0)
                    m_leave = m_old & ~m_new
                    copies = m_new.bit_count() + m_leave.bit_count()
                    fanout += copies
                    sync_extra += copies - 1
                    m = m_new
                    while m:
                        low = m & -m
                        builders[low.bit_length() - 1].append(
                            oid, ox, oy, nx, ny, 0, 0
                        )
                        m ^= low
                    m = m_leave
                    while m:
                        low = m & -m
                        builders[low.bit_length() - 1].append(
                            oid, ox, oy, nx, ny, 1, 1
                        )
                        m ^= low
            pending += 1
            if pending >= chunk_rows:
                flush()
        flush()
        self._n_fanout_rows += fanout
        self._n_sync_rows += sync_extra
        if self._m_sync is not None and sync_extra:
            self._m_sync.inc(sync_extra)

    # ------------------------------------------------------------------
    # Public cycle entry points
    # ------------------------------------------------------------------

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        batch = FlatUpdateBatch.from_updates(object_updates)
        return self._partition_cycle(batch, tuple(query_updates), False)

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        if query_updates is None:
            query_updates = batch.query_updates
        return self._partition_cycle(batch, tuple(query_updates), False)

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> dict[int, ResultDelta]:
        batch = FlatUpdateBatch.from_updates(object_updates)
        return self._partition_cycle(batch, tuple(query_updates), True)

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> dict[int, ResultDelta]:
        if query_updates is None:
            query_updates = batch.query_updates
        return self._partition_cycle(batch, tuple(query_updates), True)

    # ------------------------------------------------------------------
    # Traffic accounting
    # ------------------------------------------------------------------

    def partition_stats(self) -> dict[str, int]:
        """Cross-partition traffic counters (all monotone, process-local)."""
        return {
            "cycles": self._n_cycles,
            "fanout_rows": self._n_fanout_rows,
            "sync_rows": self._n_sync_rows,
            "pulls": self._n_pulls,
            "pull_objects": self._n_pull_objects,
            "prefetch_cells": self._n_prefetch_cells,
            "evictions": self._n_evictions,
            "migrations": self._n_migrations,
        }
