"""Pluggable shard executors.

A :class:`repro.service.sharding.ShardedMonitor` drives its per-shard
engines through an executor.  The executor owns the engine *instances*
(they may live in worker processes) and exposes a uniform command surface:
``call`` (one shard) and ``call_all`` (every shard, one argument tuple
each).  Every command returns ``(payload, stats)`` where ``stats`` is the
:class:`repro.grid.stats.GridStats` delta accumulated by the shard engine
while executing the command — the sharded monitor folds these into its
aggregate counters so the engine-facing accounting (cell scans etc.) stays
exact regardless of where the shards run.

Two implementations:

* :class:`SerialShardExecutor` — engines live in-process, commands run
  sequentially.  Zero overhead, fully deterministic; the default.
* :class:`ProcessShardExecutor` — one ``multiprocessing`` worker process
  per shard, commands fan out over pipes and ``call_all`` overlaps the
  per-shard work across cores.  Engines are built inside the workers from
  a picklable factory; command payloads (update batches, result lists)
  are plain picklable values, except that large
  :class:`repro.updates.FlatUpdateBatch` arguments travel as
  ``multiprocessing.shared_memory`` blocks with only a fixed-size header
  pickled through the pipe (see :mod:`repro.service.shm`).

Executors are context managers; :class:`ProcessShardExecutor` must be
closed (or used via ``with``) to reap its workers.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from time import monotonic

from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor
from repro.service.shm import SHM_MIN_ROWS, decode_args, encode_args, release_segment

#: a picklable zero-argument callable returning a fresh shard engine.
ShardFactory = Callable[[], ContinuousMonitor]

#: observation hook invoked before every command send:
#: ``hook(shard, seq, worker)`` where ``seq`` is the per-shard command
#: ordinal (monotonic across worker restarts) and ``worker`` the live
#: ``multiprocessing.Process``.  Fault-injection harnesses use it to kill
#: or wedge workers at exact schedule points; hooks must not raise.
FaultHook = Callable[[int, int, object], None]

#: coordinator-side cell-pull service: ``server(shard, request) -> reply``.
#: Bound by a partitioned monitor (:mod:`repro.service.partition`) so a
#: shard engine that needs a remote cell mid-command can fetch it through
#: the executor; requests and replies must be picklable.
PullServer = Callable[[int, object], object]


def _execute(
    monitor: ContinuousMonitor, method: str, args: tuple
) -> tuple[object, GridStats]:
    """Run one command against a shard engine, measuring its stats delta."""
    monitor.stats.reset()
    payload = getattr(monitor, method)(*args)
    return payload, monitor.stats.snapshot()


class ShardExecutor(ABC):
    """Uniform command surface over a fleet of shard engines."""

    #: coordinator-side cell-pull service (see :meth:`bind_pull_server`).
    _pull_server: PullServer | None = None

    @abstractmethod
    def start(self, factories: Sequence[ShardFactory]) -> None:
        """Build one engine per factory (idempotent start-once)."""

    @abstractmethod
    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        """Run ``engine.<method>(*args)`` on one shard."""

    @abstractmethod
    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        """Run ``engine.<method>(*args)`` on every shard (one args tuple
        per shard, in shard order); returns payload/stats pairs in shard
        order."""

    def bind_pull_server(self, server: PullServer) -> None:
        """Register the coordinator's cell-pull service.

        Shard engines exposing ``bind_pull_transport`` (the partitioned
        engines of :mod:`repro.service.partition`) get a transport that
        routes ``engine -> executor -> server(shard, request)`` so a
        command that expands past the shard's materialized cells can
        fetch the missing data mid-command.  Executors without such
        engines never invoke the server.
        """
        self._pull_server = server

    def submit_all(self, method: str, args_per_shard: Sequence[tuple]) -> None:
        """Stage ``call_all(method, ...)`` for a later :meth:`collect_all`.

        Base implementation: run the command immediately (blocking) and
        buffer its results, which preserves every subclass's dispatch
        semantics (the supervisor's logging and recovery in particular).
        :class:`ProcessShardExecutor` overrides this with a true
        send-now/collect-later pipeline so consecutive commands overlap
        coordinator-side work with shard-side processing.
        """
        staged = getattr(self, "_staged_groups", None)
        if staged is None:
            staged = self._staged_groups = []
        staged.append(self.call_all(method, args_per_shard))

    def collect_all(self) -> list[list[tuple[object, GridStats]]]:
        """Collect the results of every staged :meth:`submit_all` command,
        in submission order (one ``call_all``-shaped list per command)."""
        staged = getattr(self, "_staged_groups", None) or []
        self._staged_groups = []
        return staged

    def close(self) -> None:
        """Release engines/workers (idempotent)."""

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """Number of started shards (0 before :meth:`start`)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """In-process executor: shard engines run sequentially in the caller."""

    def __init__(self) -> None:
        self._monitors: list[ContinuousMonitor] = []

    @property
    def n_shards(self) -> int:
        return len(self._monitors)

    def start(self, factories: Sequence[ShardFactory]) -> None:
        if self._monitors:
            raise RuntimeError("executor already started")
        self._monitors = [factory() for factory in factories]
        for shard, monitor in enumerate(self._monitors):
            bind = getattr(monitor, "bind_pull_transport", None)
            if bind is not None:
                bind(self._local_pull(shard))

    def _local_pull(self, shard: int):
        """In-process pull transport: dispatch straight to the server.

        Late-bound through ``self`` so ``bind_pull_server`` may run after
        :meth:`start` (the coordinator binds once its stores exist).
        """

        def pull(request):
            server = self._pull_server
            if server is None:
                raise RuntimeError(
                    f"shard {shard} pulled a cell but no pull server is bound"
                )
            return server(shard, request)

        return pull

    def monitors(self) -> list[ContinuousMonitor]:
        """The live shard engines (tests and diagnostics)."""
        return list(self._monitors)

    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        return _execute(self._monitors[shard], method, args)

    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        if len(args_per_shard) != len(self._monitors):
            raise ValueError(
                f"expected {len(self._monitors)} argument tuples, "
                f"got {len(args_per_shard)}"
            )
        return [
            _execute(monitor, method, args)
            for monitor, args in zip(self._monitors, args_per_shard)
        ]

    def close(self) -> None:
        self._monitors = []


def _shard_worker(conn, factory: ShardFactory) -> None:
    """Worker-process loop: build the engine, serve commands until EOF."""
    monitor = factory()
    bind = getattr(monitor, "bind_pull_transport", None)
    if bind is not None:
        # Cell-pull transport: a mid-command upcall over the same duplex
        # pipe.  The parent's receive loop recognizes the "pull" status,
        # serves it, and replies "pulldata" before resuming its wait for
        # the command's real reply — the worker blocks here meanwhile.
        def _pull(request):
            conn.send(("pull", request))
            status, payload = conn.recv()
            if status != "pulldata":
                raise RuntimeError(
                    f"unexpected pull reply status {status!r}"
                )
            return payload

        bind(_pull)
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            method, args = message
            try:
                conn.send(("ok", _execute(monitor, method, decode_args(args))))
            except Exception as exc:  # forwarded to the caller
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


class ShardWorkerError(RuntimeError):
    """A command failed inside a shard worker process."""


class ShardFailure(ShardWorkerError):
    """Transport-level shard failure: the worker process is gone or wedged.

    Unlike a plain :class:`ShardWorkerError` (the engine raised while
    executing a command — the worker is still healthy), a
    :class:`ShardFailure` means the request/reply channel itself broke:
    the shard cannot serve further commands until it is restarted
    (:meth:`ProcessShardExecutor.restart_shard`) or replaced.  ``shard``
    identifies the failed shard for supervisors.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(message)
        self.shard = shard


class ShardCrashError(ShardFailure):
    """The shard worker process died (killed, OOM, crashed) mid-protocol."""


class ShardTimeoutError(ShardFailure):
    """The shard worker is alive but did not reply within ``recv_timeout``."""


class ProcessShardExecutor(ShardExecutor):
    """One worker process per shard, connected by a duplex pipe.

    ``call_all`` sends every shard its command before collecting any
    reply, so the per-shard work overlaps across cores.  The default
    start method prefers ``fork`` (cheap, engines inherit nothing they
    need) and falls back to the platform default where unavailable.

    Flat update batches of at least ``shm_min_rows`` rows ship to the
    workers as shared-memory blocks instead of pickles (header-only pipe
    traffic); the parent creates each segment just before sending and
    unlinks it after the command's reply, so segments never outlive a
    command.

    **Failure semantics.**  Every receive is deadline-aware: the parent
    polls the pipe in short intervals and checks the worker's liveness,
    so a worker that died raises :class:`ShardCrashError` and (when
    ``recv_timeout`` is set) a worker that wedged raises
    :class:`ShardTimeoutError` — a faulty shard can never hang the
    parent.  Both are :class:`ShardFailure`\\ s, after which that shard's
    request/reply channel is poisoned (a late reply from a wedged worker
    would desynchronize it); the shard must be rebuilt with
    :meth:`restart_shard` before further use.  ``call_all`` drains or
    fails every shard before raising, so surviving shards stay in
    protocol sync.  :class:`repro.service.supervisor.SupervisedShardExecutor`
    layers automatic recovery policies on top of these primitives.
    """

    #: liveness/deadline check cadence while waiting on a reply.
    POLL_INTERVAL = 0.05

    def __init__(
        self,
        *,
        mp_context: str | None = None,
        shm_min_rows: int | None = None,
        recv_timeout: float | None = None,
        fault_hook: FaultHook | None = None,
    ) -> None:
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self._shm_min_rows = SHM_MIN_ROWS if shm_min_rows is None else shm_min_rows
        self._recv_timeout = recv_timeout
        self._fault_hook = fault_hook
        self._factories: list[ShardFactory] = []
        self._workers: list = []
        self._pipes: list = []
        self._sent: list[int] = []
        # Streaming submit/collect state (see submit_all/collect_all).
        self._submitted: list[str] = []
        self._inflight: list[int] = []
        self._stream_segments: list = []

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    def start(self, factories: Sequence[ShardFactory]) -> None:
        if self._workers:
            raise RuntimeError("executor already started")
        self._factories = list(factories)
        for factory in self._factories:
            parent, child = self._ctx.Pipe()
            worker = self._ctx.Process(
                target=_shard_worker, args=(child, factory), daemon=True
            )
            worker.start()
            child.close()
            self._workers.append(worker)
            self._pipes.append(parent)
            self._sent.append(0)
            self._inflight.append(0)

    def worker_pid(self, shard: int) -> int | None:
        """PID of a shard's worker process (diagnostics, fault injection)."""
        return self._workers[shard].pid

    def restart_shard(self, shard: int) -> None:
        """Replace a shard's worker with a fresh process and pipe.

        The old worker is killed outright if still alive (a wedged worker
        may be unresponsive to SIGTERM — e.g. stopped — so SIGKILL is the
        only reliable reap), the poisoned pipe is discarded, and a new
        worker rebuilds an **empty** engine from the shard's factory.
        Callers are responsible for re-populating the engine (the
        supervisor replays its command log); the per-shard command
        ordinal seen by ``fault_hook`` keeps counting monotonically so a
        scheduled fault never re-fires on the replacement worker.
        """
        worker = self._workers[shard]
        if worker.is_alive():  # wedged, not dead: reap it
            worker.kill()
        worker.join(timeout=5.0)
        try:
            self._pipes[shard].close()
        except OSError:  # pragma: no cover - already broken
            pass
        parent, child = self._ctx.Pipe()
        replacement = self._ctx.Process(
            target=_shard_worker,
            args=(child, self._factories[shard]),
            daemon=True,
        )
        replacement.start()
        child.close()
        self._workers[shard] = replacement
        self._pipes[shard] = parent
        if self._inflight:
            self._inflight[shard] = 0

    def _send(self, shard: int, method: str, args: tuple, segments: list) -> None:
        """Encode and send one command, wrapping transport failures."""
        if self._fault_hook is not None:
            self._fault_hook(shard, self._sent[shard], self._workers[shard])
        self._sent[shard] += 1
        try:
            self._pipes[shard].send(
                (method, encode_args(args, segments, self._shm_min_rows))
            )
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise ShardCrashError(
                shard,
                f"shard {shard}: worker pipe broke sending {method!r} "
                f"({type(exc).__name__})",
            ) from exc

    def _recv(self, shard: int) -> tuple[object, GridStats]:
        """Deadline-aware receive: poll the pipe, watch worker liveness."""
        pipe = self._pipes[shard]
        worker = self._workers[shard]
        timeout = self._recv_timeout
        deadline = None if timeout is None else monotonic() + timeout
        while True:
            try:
                if pipe.poll(self.POLL_INTERVAL):
                    status, payload = pipe.recv()
                    if status == "pull":
                        # Mid-command upcall from a partitioned shard
                        # engine: serve the cell fetch and keep waiting
                        # for the command's real reply.  The deadline
                        # restarts — the worker is demonstrably alive
                        # and making progress.
                        server = self._pull_server
                        if server is None:
                            raise ShardWorkerError(
                                f"shard {shard}: pulled a cell but no "
                                f"pull server is bound"
                            )
                        try:
                            pipe.send(("pulldata", server(shard, payload)))
                        except (BrokenPipeError, ConnectionError, OSError) as exc:
                            raise ShardCrashError(
                                shard,
                                f"shard {shard}: worker died awaiting pull "
                                f"data ({type(exc).__name__})",
                            ) from exc
                        deadline = (
                            None if timeout is None else monotonic() + timeout
                        )
                        continue
                    break
            except (EOFError, ConnectionError, OSError) as exc:
                raise ShardCrashError(
                    shard,
                    f"shard {shard}: worker (pid {worker.pid}) died "
                    f"mid-command ({type(exc).__name__})",
                ) from exc
            if not worker.is_alive():
                # One final zero-timeout poll: the worker may have replied
                # in full just before exiting.
                try:
                    if pipe.poll(0):
                        status, payload = pipe.recv()
                        break
                except (EOFError, ConnectionError, OSError):
                    pass
                raise ShardCrashError(
                    shard,
                    f"shard {shard}: worker (pid {worker.pid}) exited with "
                    f"code {worker.exitcode} mid-command",
                )
            if deadline is not None and monotonic() >= deadline:
                raise ShardTimeoutError(
                    shard,
                    f"shard {shard}: no reply from worker (pid {worker.pid}) "
                    f"within {timeout:g}s",
                )
        if status != "ok":
            raise ShardWorkerError(f"shard {shard}: {payload}")
        return payload

    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        if self._submitted:
            raise RuntimeError(
                "collect_all() the in-flight submit_all commands before "
                "issuing further calls"
            )
        segments: list = []
        try:
            self._send(shard, method, args, segments)
            return self._recv(shard)
        finally:
            # The worker copied the columns out before replying, so the
            # segments are safe to destroy as soon as the reply is in.
            for shm in segments:
                release_segment(shm)

    def submit_all(self, method: str, args_per_shard: Sequence[tuple]) -> None:
        """Send a command to every shard without waiting for replies.

        Consecutive submits pipeline: while the workers process command
        ``k``, the coordinator assembles and sends command ``k+1``.  The
        caller must :meth:`collect_all` before any plain ``call`` /
        ``call_all``.  Shared-memory segments stay alive until collection
        (workers may not have consumed them yet).
        """
        if len(args_per_shard) != len(self._pipes):
            raise ValueError(
                f"expected {len(self._pipes)} argument tuples, "
                f"got {len(args_per_shard)}"
            )
        failure: ShardFailure | None = None
        for shard, args in enumerate(args_per_shard):
            try:
                self._send(shard, method, args, self._stream_segments)
                self._inflight[shard] += 1
            except ShardFailure as exc:
                if failure is None:
                    failure = exc
        self._submitted.append(method)
        if failure is not None:
            raise failure

    def collect_all(self) -> list[list[tuple[object, GridStats]]]:
        """Drain every reply of the submitted command pipeline.

        Replies come back per shard in command order; cell pulls arriving
        while draining are served inline by :meth:`_recv`.  On a shard
        failure every healthy shard is still drained (protocol sync)
        before the first failure is raised.
        """
        methods = self._submitted
        self._submitted = []
        segments = self._stream_segments
        self._stream_segments = []
        n = len(self._pipes)
        try:
            replies: list[list] = [[] for _ in range(n)]
            failure: ShardWorkerError | None = None
            for shard in range(n):
                want = self._inflight[shard]
                self._inflight[shard] = 0
                for _k in range(want):
                    try:
                        replies[shard].append(self._recv(shard))
                    except ShardFailure as exc:
                        if failure is None:
                            failure = exc
                        break  # channel poisoned: nothing left to drain
                    except ShardWorkerError as exc:
                        if failure is None:
                            failure = exc
            if failure is not None:
                raise failure
            return [
                [replies[shard][k] for shard in range(n)]
                for k in range(len(methods))
            ]
        finally:
            for shm in segments:
                release_segment(shm)

    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        if self._submitted:
            raise RuntimeError(
                "collect_all() the in-flight submit_all commands before "
                "issuing further calls"
            )
        if len(args_per_shard) != len(self._pipes):
            raise ValueError(
                f"expected {len(self._pipes)} argument tuples, "
                f"got {len(args_per_shard)}"
            )
        segments: list = []
        try:
            # Send to every live shard even when one send fails: skipping
            # the rest would starve healthy workers of their command and
            # desynchronize the request/reply protocol fleet-wide.
            failure: ShardWorkerError | None = None
            sent: list[bool] = []
            for shard, args in enumerate(args_per_shard):
                try:
                    self._send(shard, method, args, segments)
                    sent.append(True)
                except ShardFailure as exc:
                    sent.append(False)
                    if failure is None:
                        failure = exc
            # Drain every reply before raising: leaving a reply buffered
            # would desynchronize the request/reply protocol and make every
            # later command return the previous command's payload.  A dead
            # pipe (ShardCrashError) counts as drained — there is nothing
            # left to read from it.
            results: list[tuple[object, GridStats]] = []
            for shard in range(len(self._pipes)):
                if not sent[shard]:
                    continue
                try:
                    results.append(self._recv(shard))
                except ShardWorkerError as exc:
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure
            return results
        finally:
            for shm in segments:
                release_segment(shm)

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.kill()
                worker.join(timeout=5.0)
        for pipe in self._pipes:
            pipe.close()
        self._factories = []
        self._workers = []
        self._pipes = []
        self._sent = []
        self._submitted = []
        self._inflight = []
        for shm in self._stream_segments:
            release_segment(shm)
        self._stream_segments = []
