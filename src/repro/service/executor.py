"""Pluggable shard executors.

A :class:`repro.service.sharding.ShardedMonitor` drives its per-shard
engines through an executor.  The executor owns the engine *instances*
(they may live in worker processes) and exposes a uniform command surface:
``call`` (one shard) and ``call_all`` (every shard, one argument tuple
each).  Every command returns ``(payload, stats)`` where ``stats`` is the
:class:`repro.grid.stats.GridStats` delta accumulated by the shard engine
while executing the command — the sharded monitor folds these into its
aggregate counters so the engine-facing accounting (cell scans etc.) stays
exact regardless of where the shards run.

Two implementations:

* :class:`SerialShardExecutor` — engines live in-process, commands run
  sequentially.  Zero overhead, fully deterministic; the default.
* :class:`ProcessShardExecutor` — one ``multiprocessing`` worker process
  per shard, commands fan out over pipes and ``call_all`` overlaps the
  per-shard work across cores.  Engines are built inside the workers from
  a picklable factory; command payloads (update batches, result lists)
  are plain picklable values, except that large
  :class:`repro.updates.FlatUpdateBatch` arguments travel as
  ``multiprocessing.shared_memory`` blocks with only a fixed-size header
  pickled through the pipe (see :mod:`repro.service.shm`).

Executors are context managers; :class:`ProcessShardExecutor` must be
closed (or used via ``with``) to reap its workers.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor
from repro.service.shm import SHM_MIN_ROWS, decode_args, encode_args, release_segment

#: a picklable zero-argument callable returning a fresh shard engine.
ShardFactory = Callable[[], ContinuousMonitor]


def _execute(
    monitor: ContinuousMonitor, method: str, args: tuple
) -> tuple[object, GridStats]:
    """Run one command against a shard engine, measuring its stats delta."""
    monitor.stats.reset()
    payload = getattr(monitor, method)(*args)
    return payload, monitor.stats.snapshot()


class ShardExecutor(ABC):
    """Uniform command surface over a fleet of shard engines."""

    @abstractmethod
    def start(self, factories: Sequence[ShardFactory]) -> None:
        """Build one engine per factory (idempotent start-once)."""

    @abstractmethod
    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        """Run ``engine.<method>(*args)`` on one shard."""

    @abstractmethod
    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        """Run ``engine.<method>(*args)`` on every shard (one args tuple
        per shard, in shard order); returns payload/stats pairs in shard
        order."""

    def close(self) -> None:
        """Release engines/workers (idempotent)."""

    @property
    @abstractmethod
    def n_shards(self) -> int:
        """Number of started shards (0 before :meth:`start`)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialShardExecutor(ShardExecutor):
    """In-process executor: shard engines run sequentially in the caller."""

    def __init__(self) -> None:
        self._monitors: list[ContinuousMonitor] = []

    @property
    def n_shards(self) -> int:
        return len(self._monitors)

    def start(self, factories: Sequence[ShardFactory]) -> None:
        if self._monitors:
            raise RuntimeError("executor already started")
        self._monitors = [factory() for factory in factories]

    def monitors(self) -> list[ContinuousMonitor]:
        """The live shard engines (tests and diagnostics)."""
        return list(self._monitors)

    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        return _execute(self._monitors[shard], method, args)

    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        if len(args_per_shard) != len(self._monitors):
            raise ValueError(
                f"expected {len(self._monitors)} argument tuples, "
                f"got {len(args_per_shard)}"
            )
        return [
            _execute(monitor, method, args)
            for monitor, args in zip(self._monitors, args_per_shard)
        ]

    def close(self) -> None:
        self._monitors = []


def _shard_worker(conn, factory: ShardFactory) -> None:
    """Worker-process loop: build the engine, serve commands until EOF."""
    monitor = factory()
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            method, args = message
            try:
                conn.send(("ok", _execute(monitor, method, decode_args(args))))
            except Exception as exc:  # forwarded to the caller
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except EOFError:  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


class ShardWorkerError(RuntimeError):
    """A command failed inside a shard worker process."""


class ProcessShardExecutor(ShardExecutor):
    """One worker process per shard, connected by a duplex pipe.

    ``call_all`` sends every shard its command before collecting any
    reply, so the per-shard work overlaps across cores.  The default
    start method prefers ``fork`` (cheap, engines inherit nothing they
    need) and falls back to the platform default where unavailable.

    Flat update batches of at least ``shm_min_rows`` rows ship to the
    workers as shared-memory blocks instead of pickles (header-only pipe
    traffic); the parent creates each segment just before sending and
    unlinks it after the command's reply, so segments never outlive a
    command.
    """

    def __init__(
        self, *, mp_context: str | None = None, shm_min_rows: int | None = None
    ) -> None:
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(mp_context)
        self._shm_min_rows = SHM_MIN_ROWS if shm_min_rows is None else shm_min_rows
        self._workers: list = []
        self._pipes: list = []

    @property
    def n_shards(self) -> int:
        return len(self._workers)

    def start(self, factories: Sequence[ShardFactory]) -> None:
        if self._workers:
            raise RuntimeError("executor already started")
        for factory in factories:
            parent, child = self._ctx.Pipe()
            worker = self._ctx.Process(
                target=_shard_worker, args=(child, factory), daemon=True
            )
            worker.start()
            child.close()
            self._workers.append(worker)
            self._pipes.append(parent)

    def _recv(self, shard: int) -> tuple[object, GridStats]:
        status, payload = self._pipes[shard].recv()
        if status != "ok":
            raise ShardWorkerError(f"shard {shard}: {payload}")
        return payload

    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        segments: list = []
        try:
            self._pipes[shard].send(
                (method, encode_args(args, segments, self._shm_min_rows))
            )
            return self._recv(shard)
        finally:
            # The worker copied the columns out before replying, so the
            # segments are safe to destroy as soon as the reply is in.
            for shm in segments:
                release_segment(shm)

    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        if len(args_per_shard) != len(self._pipes):
            raise ValueError(
                f"expected {len(self._pipes)} argument tuples, "
                f"got {len(args_per_shard)}"
            )
        segments: list = []
        try:
            for pipe, args in zip(self._pipes, args_per_shard):
                pipe.send((method, encode_args(args, segments, self._shm_min_rows)))
            # Drain every reply before raising: leaving a reply buffered
            # would desynchronize the request/reply protocol and make every
            # later command return the previous command's payload.
            results: list[tuple[object, GridStats]] = []
            failure: ShardWorkerError | None = None
            for shard in range(len(self._pipes)):
                try:
                    results.append(self._recv(shard))
                except ShardWorkerError as exc:
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure
            return results
        finally:
            for shm in segments:
                release_segment(shm)

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5.0)
        for pipe in self._pipes:
            pipe.close()
        self._workers = []
        self._pipes = []
