"""Supervised shard execution: detect, recover, degrade — deterministically.

:class:`SupervisedShardExecutor` wraps the process-backed executor's
failure primitives (:class:`repro.service.executor.ShardCrashError` /
:class:`~repro.service.executor.ShardTimeoutError`, raised by the
deadline-aware receive) with a recovery policy:

* ``FAIL_FAST`` — re-raise the failure to the caller (the pre-supervision
  behavior, minus the hang).
* ``RESTART`` — respawn the worker and rebuild its engine, then re-issue
  the interrupted command; after ``max_restarts`` restarts of the same
  shard the failure propagates.
* ``DEGRADE_TO_SERIAL`` — rebuild the shard's engine *in-process* and
  serve it serially from the parent thereafter; the remaining shards keep
  their worker processes.

**Deterministic rebuild.**  The supervisor keeps a per-shard log of every
state-mutating command that completed successfully (reads are skipped —
they touch no engine state and no counters).  A crashed shard is rebuilt
by replaying that log against a fresh engine, which reconstructs not just
the results but the engine's full search bookkeeping — so the recovered
run's results *and* deterministic access counters are byte-identical to a
run that never crashed.  The replayed commands' stats are discarded (the
original execution already reported them; the sharded monitor's aggregate
counters are never polluted by recovery traffic), and the re-issued
in-flight command reports its stats exactly once.

**Checkpoints.**  The log grows with the run; :meth:`checkpoint` compacts
it by capturing each engine's logical state
(:meth:`repro.monitor.ContinuousMonitor.capture_state`) and truncating
the log, after which a rebuild restores the snapshot and replays only the
tail.  A snapshot-based rebuild is *results*-exact but not necessarily
counter-exact going forward (re-installation resets CPM's evolved visit
lists to the fresh-search prefix), so leave checkpoints off where
byte-exact counter accounting across a crash matters — the default
full-log replay preserves it.

The failed command itself is assumed not to have mutated the engine: a
worker that died mid-command never applied it (engines apply commands
atomically with respect to the reply — the reply is sent only after the
command returns), and a command that *replied* with an application error
raised during validation, before mutation.  Both are re-issued or
re-raised safely.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, MonitorState
from repro.obs.metrics import MetricsRegistry
from repro.service.shm import release_segment  # noqa: F401  (used below)
from repro.service.executor import (
    FaultHook,
    ProcessShardExecutor,
    PullServer,
    ShardExecutor,
    ShardFactory,
    ShardFailure,
    ShardWorkerError,
    _execute,
)


class SupervisorPolicy(Enum):
    """What to do when a shard worker crashes or times out."""

    FAIL_FAST = "fail_fast"
    RESTART = "restart"
    DEGRADE_TO_SERIAL = "degrade_to_serial"


@dataclass(slots=True)
class RecoveryEvent:
    """One observed shard failure and the action taken (diagnostics)."""

    shard: int
    action: str  # "fail_fast" | "restart" | "degrade"
    error: str  # repr of the triggering ShardFailure
    method: str  # the in-flight command
    replayed: int  # commands replayed during the rebuild
    restarts: int  # cumulative restarts of this shard afterwards


#: commands that read engine state without mutating it — excluded from
#: the replay log.  Anything not listed is conservatively logged.
_READ_ONLY = frozenset(
    {
        "result",
        "result_table",
        "query_ids",
        "query_state",
        "object_position",
        "best_dist",
        "influence_cells",
        "iter_objects",
        "capture_state",
    }
)


class SupervisedShardExecutor(ProcessShardExecutor):
    """A :class:`ProcessShardExecutor` that survives worker failures.

    Drop-in replacement: pass it as ``executor=`` to
    :class:`repro.service.sharding.ShardedMonitor`.  With no faults the
    only added work per command is one log append, so supervision
    overhead is negligible (see the ``fault_recovery`` perf annotation).

    Args:
        policy: recovery policy (default ``RESTART``).
        max_restarts: per-shard restart budget before the failure
            propagates (``RESTART`` only).
        recv_timeout: per-command reply deadline in seconds; ``None``
            (default) detects only dead workers, never wedged ones.
        mp_context / shm_min_rows / fault_hook: as in
            :class:`ProcessShardExecutor`.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`;
            every :class:`RecoveryEvent` is forwarded as a
            ``repro_shard_recoveries_total{action=...}`` bump.
    """

    def __init__(
        self,
        *,
        policy: SupervisorPolicy = SupervisorPolicy.RESTART,
        max_restarts: int = 3,
        recv_timeout: float | None = None,
        mp_context: str | None = None,
        shm_min_rows: int | None = None,
        fault_hook: FaultHook | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(
            mp_context=mp_context,
            shm_min_rows=shm_min_rows,
            recv_timeout=recv_timeout,
            fault_hook=fault_hook,
        )
        self.policy = policy
        self.max_restarts = max_restarts
        #: per-shard replay log of committed mutating commands.
        self._log: list[list[tuple[str, tuple]]] = []
        #: per-shard checkpoint snapshots (None = replay from birth).
        self._checkpoints: list[MonitorState | None] = []
        #: shards degraded to in-process serial execution.
        self._local: dict[int, ContinuousMonitor] = {}
        #: cumulative restarts per shard.
        self.restart_counts: list[int] = []
        #: every failure observed and the recovery taken, in order.
        self.events: list[RecoveryEvent] = []
        self.metrics = metrics
        #: per-shard (request, reply) log of served cell pulls, and the
        #: replay cursor into it (see :meth:`_replayable_pull`).
        self._pull_log: list[list[tuple[object, object]]] = []
        self._pull_cursor: list[int] = []
        self._pull_origin: PullServer | None = None

    def _record_event(self, event: RecoveryEvent) -> None:
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_shard_recoveries_total",
                "Shard failures observed, by recovery action.",
                action=event.action,
            ).inc()

    def start(self, factories: Sequence[ShardFactory]) -> None:
        super().start(factories)
        self._log = [[] for _ in factories]
        self._checkpoints = [None] * len(factories)
        self._local = {}
        self.restart_counts = [0] * len(factories)
        self.events = []
        self._pull_log = [[] for _ in factories]
        self._pull_cursor = [0] * len(factories)

    # ------------------------------------------------------------------
    # Cell pulls (partitioned shards)
    # ------------------------------------------------------------------

    def bind_pull_server(self, server: PullServer) -> None:
        """Wrap the coordinator's pull service with a replay log.

        The coordinator's stores move on after each committed command, so
        a restarted shard replaying its command log must NOT hit the live
        service — it would see post-crash data mid-replay.  Instead every
        served pull is logged per shard; during replay the cursor walks
        the log and returns the original replies (asserting the replayed
        requests match — the engine rebuild is deterministic), going back
        to live service exactly when the log is exhausted.
        """
        self._pull_origin = server
        super().bind_pull_server(self._replayable_pull)

    def _replayable_pull(self, shard: int, request: object) -> object:
        log = self._pull_log[shard]
        cursor = self._pull_cursor[shard]
        if cursor < len(log):
            logged_request, logged_reply = log[cursor]
            if logged_request != request:
                raise ShardWorkerError(
                    f"shard {shard}: non-deterministic pull during replay "
                    f"(logged {logged_request!r}, replayed {request!r})"
                )
            self._pull_cursor[shard] = cursor + 1
            return logged_reply
        assert self._pull_origin is not None
        reply = self._pull_origin(shard, request)
        log.append((request, reply))
        self._pull_cursor[shard] = len(log)
        return reply

    # ------------------------------------------------------------------
    # Staged dispatch
    # ------------------------------------------------------------------

    def submit_all(self, method: str, args_per_shard: Sequence[tuple]) -> None:
        """Buffered staging (no streaming): supervision needs every
        command to commit — log append, recovery, degraded dispatch —
        before the next is sent, so the base-class blocking fallback is
        the correct semantics here, not the process executor's pipeline."""
        ShardExecutor.submit_all(self, method, args_per_shard)

    def collect_all(self) -> list:
        return ShardExecutor.collect_all(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def degraded_shards(self) -> set[int]:
        """Shards now served serially in-process (``DEGRADE_TO_SERIAL``)."""
        return set(self._local)

    def local_monitor(self, shard: int) -> ContinuousMonitor:
        """The in-process engine of a degraded shard (tests, diagnostics)."""
        return self._local[shard]

    def log_length(self, shard: int) -> int:
        """Replay-log size of a shard (checkpoint compaction diagnostics)."""
        return len(self._log[shard])

    # ------------------------------------------------------------------
    # Command surface
    # ------------------------------------------------------------------

    def call(self, shard: int, method: str, *args) -> tuple[object, GridStats]:
        result = self._dispatch(shard, method, args)
        self._commit(shard, method, args)
        return result

    def call_all(
        self, method: str, args_per_shard: Sequence[tuple]
    ) -> list[tuple[object, GridStats]]:
        n = self.n_shards
        if len(args_per_shard) != n:
            raise ValueError(
                f"expected {n} argument tuples, got {len(args_per_shard)}"
            )
        segments: list = []
        try:
            # Phase 1: fan the command out to every healthy worker.
            failed: dict[int, ShardFailure] = {}
            for shard, args in enumerate(args_per_shard):
                if shard in self._local:
                    continue
                try:
                    self._send(shard, method, args, segments)
                except ShardFailure as exc:
                    failed[shard] = exc
            # Phase 2: run degraded shards in-process while workers compute.
            results: list = [None] * n
            for shard, monitor in self._local.items():
                results[shard] = _execute(monitor, method, args_per_shard[shard])
            # Phase 3: drain every healthy worker (keeps survivors in
            # protocol sync regardless of other shards' failures).
            app_error: ShardWorkerError | None = None
            for shard in range(n):
                if shard in self._local or shard in failed:
                    continue
                try:
                    results[shard] = self._recv(shard)
                except ShardFailure as exc:
                    failed[shard] = exc
                except ShardWorkerError as exc:
                    if app_error is None:
                        app_error = exc
            # Phase 4: recover failed shards one at a time.
            for shard in sorted(failed):
                results[shard] = self._recover(
                    shard, failed[shard], method, args_per_shard[shard]
                )
            if app_error is not None:
                raise app_error
            for shard, args in enumerate(args_per_shard):
                self._commit(shard, method, args)
            return results
        finally:
            for shm in segments:
                release_segment(shm)

    def checkpoint(self) -> None:
        """Snapshot every shard's logical state and truncate the logs.

        Bounds rebuild cost (and log memory) for long runs.  Trade-off:
        a rebuild from a snapshot is results-exact but future counter
        deltas may diverge from the crash-free timeline (see the module
        docstring) — skip checkpoints where byte-exact counters across a
        crash are required.
        """
        for shard in range(self.n_shards):
            if shard in self._local:
                state = self._local[shard].capture_state()
            else:
                state, _stats = self._dispatch(shard, "capture_state", ())
            self._checkpoints[shard] = state
            self._log[shard].clear()
            # Pulls served before the checkpoint can never replay again
            # (a rebuild restores the snapshot, then replays only the
            # log tail), so the pull log compacts with the command log.
            self._pull_log[shard].clear()
            self._pull_cursor[shard] = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dispatch(self, shard: int, method: str, args: tuple):
        """Run one command with recovery; no log commit."""
        if shard in self._local:
            return _execute(self._local[shard], method, args)
        segments: list = []
        try:
            self._send(shard, method, args, segments)
            return self._recv(shard)
        except ShardFailure as exc:
            return self._recover(shard, exc, method, args)
        finally:
            for shm in segments:
                release_segment(shm)

    def _commit(self, shard: int, method: str, args: tuple) -> None:
        if method not in _READ_ONLY:
            self._log[shard].append((method, args))

    def _recover(self, shard: int, failure: ShardFailure, method: str, args: tuple):
        """Apply the policy to a failed shard; returns the command result."""
        replayed = len(self._log[shard])
        if self.policy is SupervisorPolicy.FAIL_FAST:
            self._record_event(
                RecoveryEvent(
                    shard=shard,
                    action="fail_fast",
                    error=repr(failure),
                    method=method,
                    replayed=0,
                    restarts=self.restart_counts[shard],
                )
            )
            raise failure
        if self.policy is SupervisorPolicy.DEGRADE_TO_SERIAL:
            monitor = self._rebuild_local(shard)
            self._local[shard] = monitor
            self._reap(shard)
            self._record_event(
                RecoveryEvent(
                    shard=shard,
                    action="degrade",
                    error=repr(failure),
                    method=method,
                    replayed=replayed,
                    restarts=self.restart_counts[shard],
                )
            )
            return _execute(monitor, method, args)
        # RESTART: respawn + replay + re-issue, with a bounded budget.
        while True:
            if self.restart_counts[shard] >= self.max_restarts:
                raise failure
            self.restart_counts[shard] += 1
            self._record_event(
                RecoveryEvent(
                    shard=shard,
                    action="restart",
                    error=repr(failure),
                    method=method,
                    replayed=replayed,
                    restarts=self.restart_counts[shard],
                )
            )
            try:
                self.restart_shard(shard)
                self._replay_into_worker(shard)
                segments: list = []
                try:
                    self._send(shard, method, args, segments)
                    return self._recv(shard)
                finally:
                    for shm in segments:
                        release_segment(shm)
            except ShardFailure as exc:  # crashed again mid-recovery
                failure = exc

    def _replay_into_worker(self, shard: int) -> None:
        """Rebuild a freshly restarted worker's engine over the pipe.

        Replayed results and stats are discarded: the original execution
        already reported them to the caller, so recovery contributes
        nothing to the aggregate accounting.
        """
        segments: list = []
        # Replayed commands re-issue their cell pulls in the original
        # order; rewind the pull cursor so they are answered from the log
        # (the live coordinator has moved on).  The re-issued in-flight
        # command consumes any pulls its crashed attempt logged, then the
        # cursor reaches the end of the log and service goes live again.
        if self._pull_cursor:
            self._pull_cursor[shard] = 0
        try:
            if self._checkpoints[shard] is not None:
                self._send(
                    shard, "restore_state", (self._checkpoints[shard],), segments
                )
                self._recv(shard)
            for method, args in self._log[shard]:
                self._send(shard, method, args, segments)
                self._recv(shard)
        finally:
            for shm in segments:
                release_segment(shm)

    def _bind_local_pull(self, monitor: ContinuousMonitor, shard: int) -> None:
        """Give a degraded in-process engine the same replayable pulls."""
        bind = getattr(monitor, "bind_pull_transport", None)
        if bind is not None:
            bind(lambda request, _shard=shard: self._replayable_pull(_shard, request))

    def _rebuild_local(self, shard: int) -> ContinuousMonitor:
        """Rebuild a shard's engine in-process (DEGRADE_TO_SERIAL)."""
        monitor = self._factories[shard]()
        self._bind_local_pull(monitor, shard)
        if self._pull_cursor:
            self._pull_cursor[shard] = 0
        if self._checkpoints[shard] is not None:
            monitor.restore_state(self._checkpoints[shard])
        for method, args in self._log[shard]:
            getattr(monitor, method)(*args)
        return monitor

    def _reap(self, shard: int) -> None:
        """Bury a degraded shard's worker and pipe (slot stays occupied)."""
        worker = self._workers[shard]
        if worker.is_alive():
            worker.kill()
        worker.join(timeout=5.0)
        try:
            self._pipes[shard].close()
        except OSError:  # pragma: no cover - already broken
            pass

    def close(self) -> None:
        self._local = {}
        self._log = []
        self._checkpoints = []
        self._pull_log = []
        self._pull_cursor = []
        super().close()
