"""The monitoring service layer: sharding, delta streaming, execution.

Layered on top of the single-engine monitors (:mod:`repro.core.cpm` and
the baselines), this package scales the library toward a serving system:

* :mod:`repro.service.deltas` — structured per-query result deltas (the
  incremental contract extension of :class:`repro.monitor.ContinuousMonitor`);
* :mod:`repro.service.subscriptions` — callback-based delta streaming;
* :mod:`repro.service.sharding` — the space-partitioned multi-shard
  monitor (``ShardPlan`` + ``ShardedMonitor``);
* :mod:`repro.service.partition` — true object partitioning
  (``PartitionedMonitor``: halo cells, cell-sync fan-out, on-demand
  pulls, live query migration);
* :mod:`repro.service.executor` — pluggable shard executors (serial and
  ``multiprocessing``-backed);
* :mod:`repro.service.service` — the cycle-driven facade the replay
  loop (:meth:`repro.api.session.Session.replay`) adapts to.

Submodules are imported lazily (PEP 562) so that :mod:`repro.monitor` can
depend on :mod:`repro.service.deltas` without an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "ResultDelta": "repro.service.deltas",
    "diff_results": "repro.service.deltas",
    "Subscription": "repro.service.subscriptions",
    "SubscriptionHub": "repro.service.subscriptions",
    "ShardPlan": "repro.service.sharding",
    "ShardedMonitor": "repro.service.sharding",
    "ShardEngineFactory": "repro.service.sharding",
    "PartitionedMonitor": "repro.service.partition",
    "PartitionShardEngine": "repro.service.partition",
    "PartitionShardFactory": "repro.service.partition",
    "SerialShardExecutor": "repro.service.executor",
    "ProcessShardExecutor": "repro.service.executor",
    "ShardWorkerError": "repro.service.executor",
    "ShardFailure": "repro.service.executor",
    "ShardCrashError": "repro.service.executor",
    "ShardTimeoutError": "repro.service.executor",
    "SupervisedShardExecutor": "repro.service.supervisor",
    "SupervisorPolicy": "repro.service.supervisor",
    "RecoveryEvent": "repro.service.supervisor",
    "MonitoringService": "repro.service.service",
    "TickReport": "repro.service.service",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
