"""The naive sorted-cell NN search that opens Section 3.1.

"A naive way to process a NN query q in P, is to sort all cells c in G
according to mindist(c, q), and visit them in ascending mindist(c, q)
order. ... The search terminates when the cell c under consideration has
mindist(c, q) >= best_dist."

The naive algorithm is *optimal in the number of processed cells* (it only
scans cells intersecting the circle with radius best_dist) but pays a full
sort of all cells up front.  The test suite uses it as the cell-minimality
oracle for CPM: both must process exactly the same cell set.
"""

from __future__ import annotations

from repro.core.neighbors import NeighborList
from repro.core.strategies import PointNNStrategy, QueryStrategy
from repro.geometry.points import Point
from repro.grid.cell import CellCoord
from repro.grid.grid import Grid

ResultEntry = tuple[float, int]


def naive_strategy_search(
    grid: Grid, strategy: QueryStrategy, k: int
) -> tuple[list[ResultEntry], list[CellCoord]]:
    """Sorted-cell search under an arbitrary query strategy.

    Returns ``(entries, processed_cells)`` where ``processed_cells`` lists
    the scanned cells in ascending key order (the minimal set any correct
    algorithm must consider).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    keyed = sorted(
        (strategy.cell_key(grid, i, j), (i, j))
        for i, j in grid.all_cells()
        if strategy.cell_allowed(grid, i, j)
    )
    nn = NeighborList(k)
    processed: list[CellCoord] = []
    rows = grid.rows
    is_point = type(strategy) is PointNNStrategy
    for key, (i, j) in keyed:
        if nn.is_full and key >= nn.kth_dist:
            break
        if is_point:
            # Point queries go through the fused (possibly vectorized)
            # within-kernel; the kth-distance bound only prunes entries
            # NeighborList.add would reject anyway, so results and
            # accounting match the generic arm exactly.
            bound = nn.kth_dist if nn.is_full else float("inf")
            for d, oid in grid.scan_within(i * rows + j, strategy.x, strategy.y, bound):
                nn.add(d, oid)
        else:
            oids, xs, ys = grid.scan_all_flat(i * rows + j)
            for oid, x, y in zip(oids, xs, ys):
                if strategy.accepts(x, y, oid):
                    nn.add(strategy.dist(x, y), oid)
        processed.append((i, j))
    return nn.entries(), processed


def naive_nn_search(
    grid: Grid, q: Point, k: int
) -> tuple[list[ResultEntry], list[CellCoord]]:
    """Point-query convenience wrapper around :func:`naive_strategy_search`."""
    return naive_strategy_search(grid, PointNNStrategy(q[0], q[1]), k)
