"""Shared search primitives for the grid baselines.

The central piece is the two-step NN search of YPK-CNN (Figure 2.1a):

1. visit the cells of growing squares ``R`` around the query cell until k
   candidate objects are found; let ``d`` be the k-th candidate distance;
2. scan every remaining cell intersecting the square ``SR`` centered at the
   query cell with side ``2*d + delta`` and return the k best objects.

SEA-CNN has no first-time evaluation module of its own, so — exactly as in
the paper's experimental setup — it borrows this function for initial
results and for recovering from disappearing neighbors.

The cell-walk primitives (``ring_cells``, ``square_cells``) live in
:mod:`repro.grid.walk` and are re-exported here for backward compatibility.
"""

from __future__ import annotations

import math

from repro.geometry.points import Point
from repro.grid.cell import CellCoord
from repro.grid.grid import Grid
from repro.grid.walk import ring_cells, square_cells

__all__ = [
    "ring_cells",
    "square_cells",
    "collect_cell_objects",
    "two_step_nn_search",
]

ResultEntry = tuple[float, int]

_INF = math.inf


def collect_cell_objects(
    grid: Grid, cells, q: Point, out: list[ResultEntry]
) -> None:
    """Scan ``cells`` (charging cell accesses) and append ``(dist, oid)``.

    Each cell scan reads the raw columns through
    :meth:`Grid.scan_all_flat` and walks them with a single zip loop —
    coordinates arrive as plain floats (no position-tuple unpacking) and
    no intermediate per-cell list is built.  The cell walkers only yield
    in-bounds cells, so packing ``(i, j)`` inline is safe.
    """
    qx, qy = q
    scan_all_flat = grid.scan_all_flat
    rows = grid.rows
    append = out.append
    hypot = math.hypot
    for i, j in cells:
        oids, xs, ys = scan_all_flat(i * rows + j)
        if oids:
            for oid, x, y in zip(oids, xs, ys):
                append((hypot(x - qx, y - qy), oid))


def two_step_nn_search(grid: Grid, q: Point, k: int) -> list[ResultEntry]:
    """YPK-CNN's first-time evaluation (Figure 2.1a).

    Returns the k best ``(dist, oid)`` pairs (fewer when the grid holds
    fewer than k objects), sorted ascending with ``(dist, oid)``
    tie-breaking.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cq = grid.cell_of(q[0], q[1])
    candidates: list[ResultEntry] = []
    scanned: set[CellCoord] = set()
    # Step 1: grow the square R ring by ring until k objects are found.
    max_radius = max(grid.cols, grid.rows)
    radius = 0
    while len(candidates) < k and radius <= max_radius:
        ring = ring_cells(grid, cq, radius)
        collect_cell_objects(grid, ring, q, candidates)
        scanned.update(ring)
        radius += 1
    candidates.sort()
    if len(candidates) < k:
        # The whole grid holds fewer than k objects.
        return candidates
    d = candidates[k - 1][0]
    # Step 2: scan the cells intersecting SR (side 2*d + delta) that the
    # first step did not already cover.
    remaining = [c for c in square_cells(grid, cq, d + grid.delta / 2.0) if c not in scanned]
    collect_cell_objects(grid, remaining, q, candidates)
    candidates.sort()
    return candidates[:k]
