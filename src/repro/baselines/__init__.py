"""Comparison algorithms and reference implementations.

* :mod:`repro.baselines.ypk` — YPK-CNN [YPK05]: periodic re-evaluation with
  a two-step square search (Figure 2.1).
* :mod:`repro.baselines.sea` — SEA-CNN [XMA05]: answer-region book-keeping
  with circular search regions (Figure 2.2).
* :mod:`repro.baselines.brute` — brute-force scan; ground truth for every
  correctness test (supports arbitrary query strategies, so it also
  validates aggregate and constrained monitoring).
* :mod:`repro.baselines.naive_grid` — the naive sorted-cell NN search that
  opens Section 3.1; optimal in processed cells, expensive in practice.
"""

from repro.baselines.brute import BruteForceMonitor
from repro.baselines.common import two_step_nn_search
from repro.baselines.naive_grid import naive_nn_search, naive_strategy_search
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor

__all__ = [
    "BruteForceMonitor",
    "SeaCnnMonitor",
    "YpkCnnMonitor",
    "naive_nn_search",
    "naive_strategy_search",
    "two_step_nn_search",
]
