"""Brute-force continuous monitor — the correctness oracle.

Recomputes every query by a full scan over all on-line objects at every
cycle.  O(N) per query per cycle, no grid, no book-keeping; used by the
test suite as ground truth for every other monitor (it supports arbitrary
query strategies, so it also validates the aggregate and constrained
extensions of Section 5).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.strategies import PointNNStrategy, QueryStrategy
from repro.geometry.points import Point
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, QueryRecord, ResultEntry
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind


class _BruteQuery:
    __slots__ = ("entries", "k", "strategy")

    def __init__(self, strategy: QueryStrategy, k: int) -> None:
        self.strategy = strategy
        self.k = k
        self.entries: list[ResultEntry] = []


class BruteForceMonitor(ContinuousMonitor):
    """Full-scan reference monitor (exact, strategy-generic, slow)."""

    name = "BruteForce"

    def __init__(self) -> None:
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, _BruteQuery] = {}
        self._stats = GridStats()

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        for oid, pos in objects:
            if oid in self._positions:
                raise KeyError(f"object {oid} already loaded")
            self._positions[oid] = pos

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    @property
    def object_count(self) -> int:
        return len(self._positions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        return self.install_strategy_query(qid, PointNNStrategy(point[0], point[1]), k)

    def install_strategy_query(
        self, qid: int, strategy: QueryStrategy, k: int = 1
    ) -> list[ResultEntry]:
        """Register a query with an arbitrary geometry strategy."""
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        from repro.core.strategies import FilteredStrategy

        if isinstance(strategy, FilteredStrategy):
            strategy.bind_tags(self.tag_table)
        query = _BruteQuery(strategy, k)
        self._queries[qid] = query
        query.entries = self._evaluate(query)
        return list(query.entries)

    def remove_query(self, qid: int) -> None:
        del self._queries[qid]

    def result(self, qid: int) -> list[ResultEntry]:
        return list(self._queries[qid].entries)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def _query_records(self) -> list[QueryRecord]:
        return [
            QueryRecord(qid, q.k, strategy=q.strategy)
            for qid, q in self._queries.items()
        ]

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        for upd in object_updates:
            if upd.old is not None and upd.oid not in self._positions:
                raise KeyError(f"object {upd.oid} is not on-line")
            if upd.new is not None:
                if upd.old is None and upd.oid in self._positions:
                    raise KeyError(f"object {upd.oid} appeared twice")
                self._positions[upd.oid] = upd.new
            else:
                self._positions.pop(upd.oid, None)
        changed: set[int] = set()
        refreshed: set[int] = set()
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                self.remove_query(qu.qid)
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
            refreshed.add(qu.qid)
        log = self._delta_log
        for qid, query in self._queries.items():
            if qid in refreshed:
                continue
            entries = self._evaluate(query)
            if entries != query.entries:
                if log is not None and qid not in log:
                    log[qid] = list(query.entries)
                query.entries = entries
                changed.add(qid)
        return changed

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ):
        """Targeted-capture delta reporting (see ContinuousMonitor)."""
        return self._process_deltas_captured(object_updates, query_updates)

    def _evaluate(self, query: _BruteQuery) -> list[ResultEntry]:
        strategy = query.strategy
        entries = [
            (strategy.dist(x, y), oid)
            for oid, (x, y) in self._positions.items()
            if strategy.accepts(x, y, oid)
        ]
        entries.sort()
        return entries[: query.k]

    @property
    def stats(self) -> GridStats:
        """Always-zero counters (the brute monitor never touches a grid)."""
        return self._stats
