"""SEA-CNN [XMA05]: shared-execution answer-region monitoring.

The method of Xiong et al. (ICDE 2005) as described in Section 2 of the CPM
paper.  Each query keeps an *answer region* — the circle centered at the
query with radius ``best_dist`` (the current k-th NN distance) — and marks
the grid cells intersecting it.  Updates touching marked cells classify the
query into one of three cases (Figure 2.2), each defining a circular search
region ``SR`` of radius ``r``:

1. neighbors moving *within* the answer region, or outer objects *entering*
   it: ``r = best_dist``;
2. a current neighbor moving *out* of the answer region: ``r = d_max``, the
   distance of the previous neighbor that moved furthest;
3. the query itself moving to ``q'``: ``r = best_dist + dist(q, q')``,
   centered at ``q'``.

The new result is computed among all objects in the cells intersecting
``SR``.  SEA-CNN "focuses exclusively on monitoring the NN changes, without
including a module for the first-time evaluation", so — as in the paper's
experimental study — initial results (and recovery from neighbors that go
off-line) use YPK-CNN's two-step search.

Queries whose result is under-full (fewer than k objects on-line) have an
unbounded answer region; they are flagged and re-evaluated from scratch
whenever any object update arrives.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.baselines.common import two_step_nn_search
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.cell import CellCoord
from repro.grid.grid import Grid
from repro.grid.kernels import KernelBackend
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, QueryRecord, ResultEntry
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
)


class _SeaQuery:
    __slots__ = ("best_dist", "entries", "ids", "k", "marked", "monitor_all", "x", "y")

    def __init__(self, x: float, y: float, k: int) -> None:
        self.x = x
        self.y = y
        self.k = k
        self.entries: list[ResultEntry] = []
        self.ids: set[int] = set()
        self.best_dist = math.inf
        self.marked: set[CellCoord] = set()
        self.monitor_all = False


class _SeaScratch:
    """Per-cycle classification flags for one affected query."""

    __slots__ = ("d_max", "offline", "within")

    def __init__(self) -> None:
        self.within = False
        self.d_max = 0.0
        self.offline = False


class SeaCnnMonitor(ContinuousMonitor):
    """SEA-CNN continuous monitor over a main-memory grid."""

    name = "SEA-CNN"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds, backend=backend)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds, backend=backend)
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, _SeaQuery] = {}

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        for oid, (x, y) in objects:
            self._grid.insert(oid, x, y)
            self._positions[oid] = (x, y)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    @property
    def object_count(self) -> int:
        return len(self._positions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        query = _SeaQuery(point[0], point[1], k)
        self._queries[qid] = query
        self._set_result(qid, query, two_step_nn_search(self._grid, point, k))
        return list(query.entries)

    def remove_query(self, qid: int) -> None:
        query = self._queries.pop(qid)
        for coord in query.marked:
            self._grid.remove_mark(coord, qid)

    def result(self, qid: int) -> list[ResultEntry]:
        return list(self._queries[qid].entries)

    def _query_records(self) -> list[QueryRecord]:
        return [
            QueryRecord(qid, q.k, point=(q.x, q.y))
            for qid, q in self._queries.items()
        ]

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def answer_region_cells(self, qid: int) -> set[CellCoord]:
        """Cells currently marked for the query (tests/diagnostics)."""
        return set(self._queries[qid].marked)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        grid = self._grid
        queries = self._queries
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, _SeaScratch] = {}

        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None and new is not None:
                # Movement: one Grid.move (same-cell fast path relocates
                # in place; counters identical to delete+insert).  The
                # mark probes only read answer-region state, so running
                # both after the move matches the delete-then-insert
                # interleaving exactly.
                old_cell, new_cell = grid.move(oid, old, new)
                self._positions[oid] = new
            elif old is not None:
                old_cell = grid.delete(oid, old[0], old[1])
                new_cell = None
                self._positions.pop(oid, None)
            else:
                assert new is not None
                old_cell = None
                new_cell = grid.insert(oid, new[0], new[1])
                self._positions[oid] = new
            if old_cell is not None:
                for qid in grid.marks(old_cell):
                    if qid in updated_qids:
                        continue
                    query = queries[qid]
                    if oid not in query.ids:
                        continue
                    sc = scratch.get(qid)
                    if sc is None:
                        sc = scratch[qid] = _SeaScratch()
                    if new is None:
                        sc.offline = True
                    else:
                        d = math.hypot(new[0] - query.x, new[1] - query.y)
                        if d > query.best_dist:
                            if d > sc.d_max:
                                sc.d_max = d
                        else:
                            sc.within = True
            if new_cell is not None:
                for qid in grid.marks(new_cell):
                    if qid in updated_qids:
                        continue
                    query = queries[qid]
                    if oid in query.ids:
                        continue
                    d = math.hypot(new[0] - query.x, new[1] - query.y)
                    if d <= query.best_dist:
                        sc = scratch.get(qid)
                        if sc is None:
                            sc = scratch[qid] = _SeaScratch()
                        sc.within = True

        return self._finish_cycle(
            scratch, updated_qids, bool(object_updates), query_updates
        )

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        """Columnar fast path: byte-identical to :meth:`process` over
        ``batch.to_object_updates()``.

        Grid surgery and answer-region probes match :meth:`process` row
        for row (same counters, same scratch classification); both cell
        ids of every row come from one batch addressing pass
        (:meth:`repro.grid.grid.Grid.batch_cell_ids`, vectorized on the
        numpy backend) and the mark sets are read straight off the
        packed-id store — no coordinate tuples anywhere in the loop.
        """
        if query_updates is None:
            query_updates = batch.query_updates
        grid = self._grid
        queries = self._queries
        positions = self._positions
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, _SeaScratch] = {}
        scratch_get = scratch.get
        marks_store = grid._marks
        hypot = math.hypot
        old_cids = grid.batch_cell_ids(batch.old_xs, batch.old_ys)
        new_cids = grid.batch_cell_ids(batch.new_xs, batch.new_ys)
        insert_at = grid.insert_at
        delete_at = grid.delete_at
        move_ids = grid.move_ids
        positions_pop = positions.pop
        for oid, nx, ny, ap, dis, ocid, ncid in zip(
            batch.oids,
            batch.new_xs,
            batch.new_ys,
            batch.appear,
            batch.disappear,
            old_cids,
            new_cids,
        ):
            if ap:
                insert_at(ncid, oid, (nx, ny))
                positions[oid] = (nx, ny)
                old_ms = None
                new_ms = marks_store[ncid]
            elif dis:
                delete_at(ocid, oid)
                positions_pop(oid, None)
                old_ms = marks_store[ocid]
                new_ms = None
            else:
                move_ids(oid, ocid, ncid, nx, ny)
                positions[oid] = (nx, ny)
                old_ms = marks_store[ocid]
                new_ms = marks_store[ncid]
            if old_ms:
                for qid in old_ms:
                    if qid in updated_qids:
                        continue
                    query = queries[qid]
                    if oid not in query.ids:
                        continue
                    sc = scratch_get(qid)
                    if sc is None:
                        sc = scratch[qid] = _SeaScratch()
                    if dis:
                        sc.offline = True
                    else:
                        d = hypot(nx - query.x, ny - query.y)
                        if d > query.best_dist:
                            if d > sc.d_max:
                                sc.d_max = d
                        else:
                            sc.within = True
            if new_ms:
                for qid in new_ms:
                    if qid in updated_qids:
                        continue
                    query = queries[qid]
                    if oid in query.ids:
                        continue
                    d = hypot(nx - query.x, ny - query.y)
                    if d <= query.best_dist:
                        sc = scratch_get(qid)
                        if sc is None:
                            sc = scratch[qid] = _SeaScratch()
                        sc.within = True
        return self._finish_cycle(
            scratch, updated_qids, len(batch.oids) > 0, query_updates
        )

    def _finish_cycle(
        self,
        scratch: dict[int, _SeaScratch],
        updated_qids: set[int],
        had_updates: bool,
        query_updates: Sequence[QueryUpdate],
    ) -> set[int]:
        """Re-evaluation of the affected queries plus query-update
        handling (shared tail of :meth:`process` and
        :meth:`process_flat`)."""
        queries = self._queries
        # Under-full queries watch the whole workspace.
        if had_updates:
            for qid, query in queries.items():
                if query.monitor_all and qid not in updated_qids and qid not in scratch:
                    sc = scratch[qid] = _SeaScratch()
                    sc.offline = True  # force a fresh search

        changed: set[int] = set()
        log = self._delta_log
        for qid, sc in scratch.items():
            query = queries[qid]
            old_entries = query.entries
            if log is not None and qid not in log:
                log[qid] = list(old_entries)
            if sc.offline:
                entries = two_step_nn_search(self._grid, (query.x, query.y), query.k)
            else:
                radius = sc.d_max if sc.d_max > 0.0 else query.best_dist
                entries = self._range_evaluate(query, (query.x, query.y), radius)
            self._set_result(qid, query, entries)
            if entries != old_entries:
                changed.add(qid)

        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                self._move_query(qu.qid, qu.point, qu.k)
                changed.add(qu.qid)
                continue
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
        return changed

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ):
        """Targeted-capture delta reporting (see ContinuousMonitor)."""
        return self._process_deltas_captured(object_updates, query_updates)

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ):
        """Columnar delta reporting: :meth:`process_flat` with capture
        (the capture hook fires in the re-evaluation sweep, which the
        row and columnar cycles share)."""
        if query_updates is None:
            query_updates = batch.query_updates
        return self._captured_deltas(
            query_updates, lambda: self.process_flat(batch, query_updates)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _move_query(self, qid: int, point: Point | None, k: int | None) -> None:
        """Case (iii) of Figure 2.2b: ``r = best_dist + dist(q, q')``."""
        assert point is not None
        query = self._queries[qid]
        if k is not None and k != query.k:
            # Changing k invalidates the answer region; restart the query.
            self.remove_query(qid)
            self.install_query(qid, point, k)
            return
        travel = math.hypot(point[0] - query.x, point[1] - query.y)
        old_best = query.best_dist
        query.x, query.y = point
        if query.monitor_all or math.isinf(old_best):
            entries = two_step_nn_search(self._grid, point, query.k)
        else:
            entries = self._range_evaluate(query, point, old_best + travel)
        self._set_result(qid, query, entries)

    def _range_evaluate(
        self, query: _SeaQuery, center: Point, radius: float
    ) -> list[ResultEntry]:
        """Scan the cells intersecting the circle ``(center, radius)`` and
        return the k best objects found.

        Cell scans read the raw columns (:meth:`Grid.scan_all_flat`) —
        SEA-CNN considers *every* object of an intersecting cell a
        candidate (the paper's semantics), so the circle prunes cells,
        not objects, and the zip loop avoids position-tuple unpacking.
        """
        grid = self._grid
        candidates: list[ResultEntry] = []
        cx, cy = center
        scan_all_flat = grid.scan_all_flat
        rows = grid.rows
        append = candidates.append
        hypot = math.hypot
        for i, j in grid.cells_in_circle(center, radius):
            oids, xs, ys = scan_all_flat(i * rows + j)
            if oids:
                for oid, x, y in zip(oids, xs, ys):
                    append((hypot(x - cx, y - cy), oid))
        candidates.sort()
        if len(candidates) < query.k:
            # Defensive: the population shrank below k inside SR.
            return two_step_nn_search(self._grid, center, query.k)
        return candidates[: query.k]

    def _set_result(self, qid: int, query: _SeaQuery, entries: list[ResultEntry]) -> None:
        """Store a new result and re-mark the answer region cells."""
        query.entries = entries
        query.ids = {oid for _dist, oid in entries}
        query.best_dist = entries[query.k - 1][0] if len(entries) >= query.k else math.inf
        query.monitor_all = not math.isfinite(query.best_dist)
        if query.monitor_all:
            new_marked: set[CellCoord] = set()
        else:
            # Epsilon slack keeps the k-th NN's own cell marked even when
            # floating-point jitter pushes its mindist a hair above
            # best_dist (same guard as CPM's reconcile_marks).
            new_marked = set(
                self._grid.cells_in_circle(
                    (query.x, query.y),
                    query.best_dist + self._grid.boundary_epsilon,
                )
            )
        for coord in query.marked - new_marked:
            self._grid.remove_mark(coord, qid)
        for coord in new_marked - query.marked:
            self._grid.add_mark(coord, qid)
        query.marked = new_marked
