"""YPK-CNN [YPK05]: periodic grid-based k-NN re-evaluation.

The method of Yu et al. (ICDE 2005) as described in Section 2 of the CPM
paper:

* object updates are applied directly to the grid (no per-update result
  maintenance);
* every installed query is re-evaluated once per cycle, whether or not any
  update fell near it;
* a *first-time* (or moving) query runs the two-step square search of
  Figure 2.1a;
* a *stationary* query is refreshed from its previous result: ``d_max`` is
  the largest distance of the previous neighbors' current locations, and
  the new result is computed among the objects in the cells intersecting
  the square ``SR`` centered at the query cell with side
  ``2*d_max + delta`` (Figure 2.1b);
* a moving query is handled as a brand new one.

If a previous neighbor went off-line, ``d_max`` is undefined and the query
falls back to the fresh two-step search.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.baselines.common import collect_cell_objects, square_cells, two_step_nn_search
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.grid.kernels import KernelBackend
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, QueryRecord, ResultEntry
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
)


class _YpkQuery:
    __slots__ = ("entries", "k", "x", "y")

    def __init__(self, x: float, y: float, k: int) -> None:
        self.x = x
        self.y = y
        self.k = k
        self.entries: list[ResultEntry] = []


class YpkCnnMonitor(ContinuousMonitor):
    """YPK-CNN continuous monitor over a main-memory grid."""

    name = "YPK-CNN"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds, backend=backend)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds, backend=backend)
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, _YpkQuery] = {}

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        for oid, (x, y) in objects:
            self._grid.insert(oid, x, y)
            self._positions[oid] = (x, y)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    @property
    def object_count(self) -> int:
        return len(self._positions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        query = _YpkQuery(point[0], point[1], k)
        query.entries = two_step_nn_search(self._grid, point, k)
        self._queries[qid] = query
        return list(query.entries)

    def remove_query(self, qid: int) -> None:
        del self._queries[qid]

    def result(self, qid: int) -> list[ResultEntry]:
        return list(self._queries[qid].entries)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def _query_records(self) -> list[QueryRecord]:
        return [
            QueryRecord(qid, q.k, point=(q.x, q.y))
            for qid, q in self._queries.items()
        ]

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        grid = self._grid
        # "YPK-CNN does not process updates as they arrive, but directly
        # applies the changes to the grid."  Movements go through
        # Grid.move, whose same-cell fast path relocates in place
        # (identical delete+insert counters).
        for upd in object_updates:
            old = upd.old
            new = upd.new
            if old is not None and new is not None:
                grid.move(upd.oid, old, new)
                self._positions[upd.oid] = new
            elif old is not None:
                grid.delete(upd.oid, old[0], old[1])
                self._positions.pop(upd.oid, None)
            else:
                assert new is not None
                grid.insert(upd.oid, new[0], new[1])
                self._positions[upd.oid] = new
        return self._finish_cycle(query_updates)

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        """Columnar fast path: byte-identical to :meth:`process` over
        ``batch.to_object_updates()``.

        The grid surgery is the same as in :meth:`process` — one
        move/insert/delete per row, identical counters — but both cell
        ids of every row come from one batch addressing pass
        (:meth:`repro.grid.grid.Grid.batch_cell_ids`, vectorized on the
        numpy backend) and the columns are consumed by a single zip
        instead of per-row dataclass attribute reads.
        """
        if query_updates is None:
            query_updates = batch.query_updates
        grid = self._grid
        positions = self._positions
        # Full-row alignment: appearance rows carry placeholder old
        # coordinates (their old cid lands in cell 0, unused), so no
        # mask is needed and both id columns stay row-aligned.
        old_cids = grid.batch_cell_ids(batch.old_xs, batch.old_ys)
        new_cids = grid.batch_cell_ids(batch.new_xs, batch.new_ys)
        insert_at = grid.insert_at
        delete_at = grid.delete_at
        move_ids = grid.move_ids
        positions_pop = positions.pop
        for oid, nx, ny, ap, dis, ocid, ncid in zip(
            batch.oids,
            batch.new_xs,
            batch.new_ys,
            batch.appear,
            batch.disappear,
            old_cids,
            new_cids,
        ):
            if ap:
                insert_at(ncid, oid, (nx, ny))
                positions[oid] = (nx, ny)
            elif dis:
                delete_at(ocid, oid)
                positions_pop(oid, None)
            else:
                move_ids(oid, ocid, ncid, nx, ny)
                positions[oid] = (nx, ny)
        return self._finish_cycle(query_updates)

    def _finish_cycle(
        self, query_updates: Sequence[QueryUpdate]
    ) -> set[int]:
        """Query-update handling plus the periodic re-evaluation sweep
        (shared tail of :meth:`process` and :meth:`process_flat`)."""
        changed: set[int] = set()
        fresh: set[int] = set()
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                # "When a query q changes location, it is handled as a new
                # one (i.e., its NN set is computed from scratch)."
                self.remove_query(qu.qid)
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
            fresh.add(qu.qid)

        # Periodic re-evaluation of every other installed query.
        log = self._delta_log
        for qid, query in self._queries.items():
            if qid in fresh:
                continue
            new_entries = self._re_evaluate(query)
            if new_entries != query.entries:
                if log is not None and qid not in log:
                    log[qid] = list(query.entries)
                query.entries = new_entries
                changed.add(qid)
        return changed

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ):
        """Targeted-capture delta reporting (see ContinuousMonitor)."""
        return self._process_deltas_captured(object_updates, query_updates)

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ):
        """Columnar delta reporting: :meth:`process_flat` with capture
        (the capture hook fires in the re-evaluation sweep, which the
        row and columnar cycles share)."""
        if query_updates is None:
            query_updates = batch.query_updates
        return self._captured_deltas(
            query_updates, lambda: self.process_flat(batch, query_updates)
        )

    def _re_evaluate(self, query: _YpkQuery) -> list[ResultEntry]:
        """Figure 2.1b: bound the search by the furthest previous neighbor."""
        if len(query.entries) < query.k:
            return two_step_nn_search(self._grid, (query.x, query.y), query.k)
        d_max = 0.0
        for _dist, oid in query.entries:
            pos = self._positions.get(oid)
            if pos is None:
                # A previous neighbor went off-line; recompute from scratch.
                return two_step_nn_search(self._grid, (query.x, query.y), query.k)
            d = math.hypot(pos[0] - query.x, pos[1] - query.y)
            if d > d_max:
                d_max = d
        cq = self._grid.cell_of(query.x, query.y)
        candidates: list[ResultEntry] = []
        cells = square_cells(self._grid, cq, d_max + self._grid.delta / 2.0)
        collect_cell_objects(self._grid, cells, (query.x, query.y), candidates)
        candidates.sort()
        if len(candidates) < query.k:  # pragma: no cover - defensive
            return two_step_nn_search(self._grid, (query.x, query.y), query.k)
        return candidates[: query.k]
