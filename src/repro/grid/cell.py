"""Cell addressing helpers.

A cell is addressed by its (column, row) pair ``c_{i,j}``, counting from the
low-left corner of the workspace (Section 3): cell ``c_{i,j}`` covers
``[i*delta, (i+1)*delta) x [j*delta, (j+1)*delta)`` relative to the
workspace origin, and an object at ``(x, y)`` belongs to
``c_{floor(x/delta), floor(y/delta)}``.
"""

from __future__ import annotations

CellCoord = tuple[int, int]


def cell_index(coord_value: float, origin: float, delta: float, n_cells: int) -> int:
    """Map a coordinate to its cell index along one axis.

    Coordinates exactly on the workspace maximum edge are clamped into the
    last cell (the half-open cell convention would otherwise push them one
    cell out of range).
    """
    idx = int((coord_value - origin) / delta)
    if idx < 0:
        return 0
    if idx >= n_cells:
        return n_cells - 1
    return idx


def cell_bounds(
    i: int, j: int, x_origin: float, y_origin: float, delta: float
) -> tuple[float, float, float, float]:
    """Spatial extent ``(x0, y0, x1, y1)`` of cell ``c_{i,j}``."""
    x0 = x_origin + i * delta
    y0 = y_origin + j * delta
    return (x0, y0, x0 + delta, y0 + delta)
