"""The main-memory grid index ``G`` of Section 3.

Cells are stored sparsely (``dict`` keyed by ``(column, row)``) so that very
fine granularities — the paper evaluates up to 1024x1024 = ~1M cells
(Figure 6.1) — cost memory only for occupied cells.  Per-cell object lists
are hash tables, matching the paper's cost model ("the object lists of the
cells are implemented as hash tables so that the deletion of an object from
its old cell and the insertion into its new one takes expected
``Time_ind = 2``", Section 4.1).

The grid additionally hosts *query marks*: per-cell sets of query ids.  CPM
uses them as influence lists ("each cell c of the grid is associated with
(ii) the list of queries whose influence region contains c"), and SEA-CNN
uses the identical mechanism for its answer-region book-keeping.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.cell import CellCoord, cell_bounds, cell_index
from repro.grid.stats import GridStats

_EMPTY_OBJECTS: dict[int, Point] = {}
_EMPTY_MARKS: frozenset[int] = frozenset()


class Grid:
    """Regular grid over a rectangular workspace.

    Args:
        cells_per_axis: number of cells per dimension (the paper's grids are
            square: 32x32 ... 1024x1024).  Mutually exclusive with ``delta``.
        delta: cell side length.  The produced column/row counts cover the
            workspace, the last column/row possibly extending past it.
        bounds: workspace rectangle; defaults to the unit square used by the
            paper's normalized datasets.
    """

    __slots__ = (
        "boundary_epsilon",
        "bounds",
        "cols",
        "delta",
        "rows",
        "stats",
        "_cells",
        "_marks",
        "_n_objects",
    )

    def __init__(
        self,
        cells_per_axis: int | None = None,
        *,
        delta: float | None = None,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    ) -> None:
        if not isinstance(bounds, Rect):
            bounds = Rect(*bounds)
        if bounds.width <= 0 or bounds.height <= 0:
            raise ValueError("workspace must have positive area")
        if (cells_per_axis is None) == (delta is None):
            raise ValueError("specify exactly one of cells_per_axis or delta")
        if cells_per_axis is not None:
            if cells_per_axis <= 0:
                raise ValueError("cells_per_axis must be positive")
            extent = max(bounds.width, bounds.height)
            delta = extent / cells_per_axis
        assert delta is not None
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.bounds = bounds
        self.delta = delta
        self.cols = max(1, math.ceil(bounds.width / delta - 1e-9))
        self.rows = max(1, math.ceil(bounds.height / delta - 1e-9))
        # Floating-point slack for boundary decisions (e.g. whether a cell
        # still belongs to an influence region): a few ulps at the scale of
        # the workspace coordinates.
        self.boundary_epsilon = 1e-12 * (
            1.0
            + abs(bounds.x0) + abs(bounds.y0)
            + abs(bounds.x1) + abs(bounds.y1)
        )
        self.stats = GridStats()
        # (i, j) -> {oid: (x, y)} for non-empty cells only.
        self._cells: dict[CellCoord, dict[int, Point]] = {}
        # (i, j) -> set of query ids marked on the cell.
        self._marks: dict[CellCoord, set[int]] = {}
        self._n_objects = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def cell_of(self, x: float, y: float) -> CellCoord:
        """Cell containing the point ``(x, y)`` (clamped to the grid)."""
        return (
            cell_index(x, self.bounds.x0, self.delta, self.cols),
            cell_index(y, self.bounds.y0, self.delta, self.rows),
        )

    def in_bounds(self, i: int, j: int) -> bool:
        """Whether ``c_{i,j}`` is a real cell of this grid."""
        return 0 <= i < self.cols and 0 <= j < self.rows

    def cell_rect(self, i: int, j: int) -> tuple[float, float, float, float]:
        """Spatial extent ``(x0, y0, x1, y1)`` of cell ``c_{i,j}``.

        The last column/row extends exactly to the workspace edge: objects
        on the boundary are clamped into those cells by :meth:`cell_of`,
        and the lower-bound property ``mindist(c, q) <= dist(p, q)`` for
        every object ``p`` in ``c`` must survive that clamping.
        """
        x0, y0, x1, y1 = cell_bounds(i, j, self.bounds.x0, self.bounds.y0, self.delta)
        if i == self.cols - 1 and x1 < self.bounds.x1:
            x1 = self.bounds.x1
        if j == self.rows - 1 and y1 < self.bounds.y1:
            y1 = self.bounds.y1
        return (x0, y0, x1, y1)

    def mindist(self, i: int, j: int, q: Point) -> float:
        """``mindist(c, q)`` of Table 3.1: minimum possible distance between
        any object in cell ``c_{i,j}`` and the point ``q``.

        Inlined (no :meth:`cell_rect` call): this runs once per en-heaped
        cell in every NN search, the hottest loop of the library.
        """
        delta = self.delta
        bounds = self.bounds
        qx = q[0]
        qy = q[1]
        x0 = bounds.x0 + i * delta
        if qx < x0:
            dx = x0 - qx
        else:
            x1 = x0 + delta
            if i == self.cols - 1 and x1 < bounds.x1:
                x1 = bounds.x1
            dx = qx - x1 if qx > x1 else 0.0
        y0 = bounds.y0 + j * delta
        if qy < y0:
            dy = y0 - qy
        else:
            y1 = y0 + delta
            if j == self.rows - 1 and y1 < bounds.y1:
                y1 = bounds.y1
            dy = qy - y1 if qy > y1 else 0.0
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def all_cells(self) -> Iterator[CellCoord]:
        """Every cell coordinate of the grid (dense enumeration)."""
        for i in range(self.cols):
            for j in range(self.rows):
                yield (i, j)

    def cells_in_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Iterator[CellCoord]:
        """Cells intersecting the closed rectangle ``[x0,x1] x [y0,y1]``.

        Used by YPK-CNN's square search regions and by SEA-CNN's circular
        region bounding boxes.
        """
        if x1 < x0 or y1 < y0:
            return
        lo_i = cell_index(x0, self.bounds.x0, self.delta, self.cols)
        hi_i = cell_index(x1, self.bounds.x0, self.delta, self.cols)
        lo_j = cell_index(y0, self.bounds.y0, self.delta, self.rows)
        hi_j = cell_index(y1, self.bounds.y0, self.delta, self.rows)
        for i in range(lo_i, hi_i + 1):
            for j in range(lo_j, hi_j + 1):
                yield (i, j)

    def cells_in_circle(self, center: Point, radius: float) -> Iterator[CellCoord]:
        """Cells whose extent intersects the disk ``(center, radius)``."""
        if radius < 0:
            return
        cx, cy = center
        for coord in self.cells_in_rect(cx - radius, cy - radius, cx + radius, cy + radius):
            if self.mindist(coord[0], coord[1], center) <= radius:
                yield coord

    # ------------------------------------------------------------------
    # Object maintenance
    # ------------------------------------------------------------------

    def insert(self, oid: int, x: float, y: float) -> CellCoord:
        """Insert object ``oid`` at ``(x, y)``; returns its cell."""
        coord = self.cell_of(x, y)
        cell = self._cells.get(coord)
        if cell is None:
            cell = {}
            self._cells[coord] = cell
        if oid in cell:
            raise KeyError(f"object {oid} already present in cell {coord}")
        cell[oid] = (x, y)
        self._n_objects += 1
        self.stats.inserts += 1
        return coord

    def delete(self, oid: int, x: float, y: float) -> CellCoord:
        """Delete object ``oid`` located at ``(x, y)``; returns its old cell."""
        coord = self.cell_of(x, y)
        cell = self._cells.get(coord)
        if cell is None or oid not in cell:
            raise KeyError(f"object {oid} not found in cell {coord}")
        del cell[oid]
        if not cell:
            del self._cells[coord]
        self._n_objects -= 1
        self.stats.deletes += 1
        return coord

    def move(
        self, oid: int, old: Point, new: Point
    ) -> tuple[CellCoord, CellCoord]:
        """Relocate an object; returns ``(old_cell, new_cell)``."""
        old_coord = self.delete(oid, old[0], old[1])
        new_coord = self.insert(oid, new[0], new[1])
        return (old_coord, new_coord)

    def bulk_load(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Insert many objects at once (initial workload loading)."""
        for oid, (x, y) in objects:
            self.insert(oid, x, y)

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------

    def scan(self, i: int, j: int) -> dict[int, Point]:
        """Scan the object list of ``c_{i,j}`` — *this is a cell access*.

        Every call increments the counters that back Figure 6.3b.  The
        returned mapping is the live cell dictionary; callers must not
        mutate it.
        """
        cell = self._cells.get((i, j), _EMPTY_OBJECTS)
        self.stats.cell_scans += 1
        self.stats.objects_scanned += len(cell)
        return cell

    def peek(self, i: int, j: int) -> dict[int, Point]:
        """Object list of ``c_{i,j}`` *without* charging a cell access.

        Reserved for assertions, tests and size inspection — algorithm code
        must go through :meth:`scan`.
        """
        return self._cells.get((i, j), _EMPTY_OBJECTS)

    def cell_size(self, i: int, j: int) -> int:
        """Number of objects currently in ``c_{i,j}`` (no access charged)."""
        return len(self._cells.get((i, j), _EMPTY_OBJECTS))

    def __len__(self) -> int:
        """Total number of indexed objects."""
        return self._n_objects

    @property
    def occupied_cells(self) -> int:
        """Number of cells currently holding at least one object."""
        return len(self._cells)

    # ------------------------------------------------------------------
    # Query marks (influence lists / answer regions)
    # ------------------------------------------------------------------

    def add_mark(self, coord: CellCoord, qid: int) -> None:
        """Mark cell ``coord`` as influenced by query ``qid`` (idempotent)."""
        marks = self._marks.get(coord)
        if marks is None:
            marks = set()
            self._marks[coord] = marks
        if qid not in marks:
            marks.add(qid)
            self.stats.mark_ops += 1

    def remove_mark(self, coord: CellCoord, qid: int) -> None:
        """Remove query ``qid``'s mark from ``coord`` (no-op when absent)."""
        marks = self._marks.get(coord)
        if marks is None:
            return
        if qid in marks:
            marks.discard(qid)
            self.stats.mark_ops += 1
            if not marks:
                del self._marks[coord]

    def marks(self, coord: CellCoord) -> frozenset[int] | set[int]:
        """Queries marked on ``coord`` (possibly empty, never None)."""
        return self._marks.get(coord, _EMPTY_MARKS)

    def marked_cells(self, qid: int) -> list[CellCoord]:
        """All cells carrying a mark of ``qid`` (test/diagnostic helper)."""
        return [coord for coord, marks in self._marks.items() if qid in marks]

    @property
    def total_marks(self) -> int:
        """Total number of (cell, query) mark pairs currently stored."""
        return sum(len(m) for m in self._marks.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_units(self) -> int:
        """Memory units per the Section 4.1 accounting model.

        "The minimum unit of memory can store a (real or integer) number";
        an object costs ``s_obj = 3`` (id + two coordinates) and every mark
        costs 1 unit (a query id in an influence list).  This feeds the
        footnote-6 space comparison.
        """
        return 3 * self._n_objects + self.total_marks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grid({self.cols}x{self.rows}, delta={self.delta:.6g}, "
            f"objects={self._n_objects}, marks={self.total_marks})"
        )
