"""The main-memory grid index ``G`` of Section 3.

Cell storage is *flat*: a cell ``c_{i,j}`` is addressed by its packed id
``cid = i * rows + j`` into array-backed stores (plain Python lists), so
the hot path — object relocation and influence-list probing on every
update — costs one integer multiply-add and one list index instead of a
tuple allocation plus a tuple hash.  Grids too large for dense backing
(beyond ~2M cells; the paper's finest granularity, 1024x1024, stays dense)
fall back transparently to a sparse store with identical semantics.

Per-cell object lists are *columnar*
(:class:`repro.grid.kernels.CellColumns`): parallel ``oids`` / ``xs`` /
``ys`` lists plus an ``oid -> slot`` hash side index.  The side index
preserves the paper's cost model ("the object lists of the cells are
implemented as hash tables so that the deletion of an object from its old
cell and the insertion into its new one takes expected ``Time_ind = 2``",
Section 4.1: insert appends a row, delete swaps the last row into the
freed slot — both expected O(1)), while the flat coordinate columns let
the scan kernels (:meth:`Grid.scan_within`, :meth:`Grid.scan_best_k`,
:meth:`Grid.scan_all_flat`) run their distance-and-filter loops as single
fused comprehensions instead of per-object dict iteration.  Empty cell
columns and mark sets are kept in place once allocated: cells that
repeatedly empty and refill (the common case under sustained update
streams) reuse their containers instead of churning the allocator.

The grid additionally hosts *query marks*: per-cell sets of query ids.  CPM
uses them as influence lists ("each cell c of the grid is associated with
(ii) the list of queries whose influence region contains c"), and SEA-CNN
uses the identical mechanism for its answer-region book-keeping.  The
total mark count is maintained incrementally, making :attr:`total_marks`
O(1).

Two parallel APIs are exposed: the coordinate API (``insert``, ``scan``,
``add_mark`` ... over ``(i, j)`` tuples — the stable public surface) and
the packed-id API (``cell_id``, ``insert_at``, ``delete_at``,
``relocate_at``, ``add_mark_id`` ...).  The CPM engine inlines this
module's storage layout directly in its hottest loops — cell addressing,
columnar mutations, influence probes, scan kernels and mark maintenance
— as does :meth:`Grid.move` itself; any change to the packing scheme,
the cell decision or the column layout here must be mirrored in
``repro.core.cpm`` and ``repro.core.bookkeeping`` (the storage-mirror
contract).  Both views address the same storage and may be mixed freely.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from math import hypot as _hypot

from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.cell import CellCoord, cell_bounds, cell_index
from repro.grid.kernels import (
    VEC_MIN_BATCH as _VEC_MIN_BATCH,
    KernelBackend,
    best_k,
    resolve_backend,
)
from repro.grid.stats import GridStats

_EMPTY_OBJECTS: dict[int, Point] = {}
_EMPTY_MARKS: frozenset[int] = frozenset()
#: immutable empty column triple returned by flat scans of empty cells.
_EMPTY_COLUMNS: tuple = ((), (), ())

#: largest cell count served by dense (list) backing; 1024x1024 — the
#: paper's finest evaluated granularity — is ~1M cells and stays dense.
_DENSE_LIMIT = 1 << 21


class _SparseStore(dict):
    """A dict that reads like an infinite array of ``None``.

    Backs grids beyond :data:`_DENSE_LIMIT` cells: ``store[cid]`` returns
    ``None`` for untouched cells without inserting anything, so the packed
    id code paths are identical for dense and sparse grids.
    """

    __slots__ = ()

    def __missing__(self, key: int) -> None:
        return None


class Grid:
    """Regular grid over a rectangular workspace.

    Args:
        cells_per_axis: number of cells per dimension (the paper's grids are
            square: 32x32 ... 1024x1024).  Mutually exclusive with ``delta``.
        delta: cell side length.  The produced column/row counts cover the
            workspace, the last column/row possibly extending past it.
        bounds: workspace rectangle; defaults to the unit square used by the
            paper's normalized datasets.
        backend: numeric kernel backend — a name (``"list"`` /
            ``"array"`` / ``"numpy"`` / ``"auto"``), a resolved
            :class:`repro.grid.kernels.KernelBackend`, or ``None`` to
            honor ``REPRO_KERNEL_BACKEND`` (default ``auto``: numpy when
            installed, the stdlib ``array('d')`` buffers otherwise).
            Every backend produces byte-identical scan results and
            counters; only the speed differs.
    """

    __slots__ = (
        "backend",
        "boundary_epsilon",
        "bounds",
        "cell_factory",
        "cols",
        "delta",
        "rows",
        "stats",
        "_cells",
        "_mark_count",
        "_marks",
        "_n_objects",
        "_occupied",
        "_vec_cell_ids",
        "_vec_min",
        "_vec_within",
    )

    def __init__(
        self,
        cells_per_axis: int | None = None,
        *,
        delta: float | None = None,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        backend: str | KernelBackend | None = None,
    ) -> None:
        if not isinstance(bounds, Rect):
            bounds = Rect(*bounds)
        if bounds.width <= 0 or bounds.height <= 0:
            raise ValueError("workspace must have positive area")
        if (cells_per_axis is None) == (delta is None):
            raise ValueError("specify exactly one of cells_per_axis or delta")
        if cells_per_axis is not None:
            if cells_per_axis <= 0:
                raise ValueError("cells_per_axis must be positive")
            extent = max(bounds.width, bounds.height)
            delta = extent / cells_per_axis
        assert delta is not None
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.bounds = bounds
        self.delta = delta
        self.cols = max(1, math.ceil(bounds.width / delta - 1e-9))
        self.rows = max(1, math.ceil(bounds.height / delta - 1e-9))
        # Floating-point slack for boundary decisions (e.g. whether a cell
        # still belongs to an influence region): a few ulps at the scale of
        # the workspace coordinates.
        self.boundary_epsilon = 1e-12 * (
            1.0
            + abs(bounds.x0) + abs(bounds.y0)
            + abs(bounds.x1) + abs(bounds.y1)
        )
        self.stats = GridStats()
        # The numeric backend: the cell representation every mutation
        # path constructs, plus the (optional) vectorized scan kernel
        # the scan front-ends call once a cell's population reaches
        # the crossover (see repro.grid.kernels).
        self.backend = resolve_backend(backend)
        self.cell_factory = self.backend.cell_factory
        self._vec_within = self.backend.vec_within
        self._vec_min = self.backend.vec_min
        self._vec_cell_ids = self.backend.batch_cell_ids
        n_cells = self.cols * self.rows
        # cid -> CellColumns and cid -> {qid, ...}; dense list backing
        # when the grid fits, sparse fallback otherwise.
        if n_cells <= _DENSE_LIMIT:
            self._cells: list | _SparseStore = [None] * n_cells
            self._marks: list | _SparseStore = [None] * n_cells
        else:
            self._cells = _SparseStore()
            self._marks = _SparseStore()
        self._n_objects = 0
        self._occupied = 0
        self._mark_count = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def cell_of(self, x: float, y: float) -> CellCoord:
        """Cell containing the point ``(x, y)`` (clamped to the grid)."""
        return (
            cell_index(x, self.bounds.x0, self.delta, self.cols),
            cell_index(y, self.bounds.y0, self.delta, self.rows),
        )

    def cell_id(self, x: float, y: float) -> int:
        """Packed id of the cell containing ``(x, y)`` (clamped).

        Identical cell decision as :meth:`cell_of` (same float operations),
        returned as ``i * rows + j``.
        """
        bounds = self.bounds
        delta = self.delta
        i = int((x - bounds.x0) / delta)
        if i < 0:
            i = 0
        elif i >= self.cols:
            i = self.cols - 1
        j = int((y - bounds.y0) / delta)
        if j < 0:
            j = 0
        elif j >= self.rows:
            j = self.rows - 1
        return i * self.rows + j

    def batch_cell_ids(self, xs, ys, skip=None) -> list[int]:
        """Packed cell ids for whole coordinate columns at once.

        The batch twin of :meth:`cell_id` (identical clamped cell
        decisions, row by row): ``xs`` / ``ys`` are parallel columns —
        a :class:`repro.updates.FlatUpdateBatch`'s coordinate arrays in
        the hot path — and ``skip`` is an optional byte mask whose
        truthy rows are omitted from the result (the masked columnar
        loops address only the unmasked rows).

        Backends with a batch addressing kernel
        (``KernelBackend.batch_cell_ids``: numpy) run it vectorized
        past :data:`repro.grid.kernels.VEC_MIN_BATCH` rows; otherwise a
        scalar loop produces the same list.
        """
        bounds = self.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        delta = self.delta
        rows = self.rows
        cols_1 = self.cols - 1
        rows_1 = rows - 1
        vec = self._vec_cell_ids
        if vec is not None and len(xs) >= _VEC_MIN_BATCH:
            return vec(xs, ys, bx0, by0, delta, cols_1, rows_1, rows, skip)
        out: list[int] = []
        append = out.append
        rows_iter = (
            zip(xs, ys)
            if skip is None
            else ((x, y) for x, y, s in zip(xs, ys, skip) if not s)
        )
        for x, y in rows_iter:
            i = int((x - bx0) / delta)
            if i < 0:
                i = 0
            elif i > cols_1:
                i = cols_1
            j = int((y - by0) / delta)
            if j < 0:
                j = 0
            elif j > rows_1:
                j = rows_1
            append(i * rows + j)
        return out

    def pack(self, i: int, j: int) -> int:
        """Packed id of ``c_{i,j}``."""
        return i * self.rows + j

    def unpack(self, cid: int) -> CellCoord:
        """Coordinate pair of a packed cell id."""
        return divmod(cid, self.rows)

    def in_bounds(self, i: int, j: int) -> bool:
        """Whether ``c_{i,j}`` is a real cell of this grid."""
        return 0 <= i < self.cols and 0 <= j < self.rows

    def cell_rect(self, i: int, j: int) -> tuple[float, float, float, float]:
        """Spatial extent ``(x0, y0, x1, y1)`` of cell ``c_{i,j}``.

        The last column/row extends exactly to the workspace edge: objects
        on the boundary are clamped into those cells by :meth:`cell_of`,
        and the lower-bound property ``mindist(c, q) <= dist(p, q)`` for
        every object ``p`` in ``c`` must survive that clamping.
        """
        x0, y0, x1, y1 = cell_bounds(i, j, self.bounds.x0, self.bounds.y0, self.delta)
        if i == self.cols - 1 and x1 < self.bounds.x1:
            x1 = self.bounds.x1
        if j == self.rows - 1 and y1 < self.bounds.y1:
            y1 = self.bounds.y1
        return (x0, y0, x1, y1)

    def mindist_xy(self, i: int, j: int, qx: float, qy: float) -> float:
        """``mindist(c, q)`` of Table 3.1 for the point ``(qx, qy)``.

        Inlined (no :meth:`cell_rect` call, no point tuple): this runs once
        per en-heaped cell in every NN search, the hottest loop of the
        library.
        """
        delta = self.delta
        bounds = self.bounds
        x0 = bounds.x0 + i * delta
        if qx < x0:
            dx = x0 - qx
        else:
            x1 = x0 + delta
            if i == self.cols - 1 and x1 < bounds.x1:
                x1 = bounds.x1
            dx = qx - x1 if qx > x1 else 0.0
        y0 = bounds.y0 + j * delta
        if qy < y0:
            dy = y0 - qy
        else:
            y1 = y0 + delta
            if j == self.rows - 1 and y1 < bounds.y1:
                y1 = bounds.y1
            dy = qy - y1 if qy > y1 else 0.0
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def mindist(self, i: int, j: int, q: Point) -> float:
        """``mindist(c, q)`` with the query as a point tuple."""
        return self.mindist_xy(i, j, q[0], q[1])

    def all_cells(self) -> Iterator[CellCoord]:
        """Every cell coordinate of the grid (dense enumeration)."""
        for i in range(self.cols):
            for j in range(self.rows):
                yield (i, j)

    def cells_in_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Iterator[CellCoord]:
        """Cells intersecting the closed rectangle ``[x0,x1] x [y0,y1]``.

        Used by YPK-CNN's square search regions and by SEA-CNN's circular
        region bounding boxes.
        """
        if x1 < x0 or y1 < y0:
            return
        lo_i = cell_index(x0, self.bounds.x0, self.delta, self.cols)
        hi_i = cell_index(x1, self.bounds.x0, self.delta, self.cols)
        lo_j = cell_index(y0, self.bounds.y0, self.delta, self.rows)
        hi_j = cell_index(y1, self.bounds.y0, self.delta, self.rows)
        for i in range(lo_i, hi_i + 1):
            for j in range(lo_j, hi_j + 1):
                yield (i, j)

    def cells_in_circle(self, center: Point, radius: float) -> Iterator[CellCoord]:
        """Cells whose extent intersects the disk ``(center, radius)``."""
        if radius < 0:
            return
        cx, cy = center
        for coord in self.cells_in_rect(cx - radius, cy - radius, cx + radius, cy + radius):
            if self.mindist_xy(coord[0], coord[1], cx, cy) <= radius:
                yield coord

    # ------------------------------------------------------------------
    # Object maintenance
    # ------------------------------------------------------------------

    def insert_at(self, cid: int, oid: int, point: Point) -> None:
        """Insert object ``oid`` into the cell with packed id ``cid``.

        The caller vouches that ``cid == self.cell_id(*point)``.
        """
        cells = self._cells
        cell = cells[cid]
        if cell is None:
            cell = self.cell_factory()
            cells[cid] = cell
        slot = cell.slot
        if oid in slot:
            raise KeyError(
                f"object {oid} already present in cell {self.unpack(cid)}"
            )
        oids = cell.oids
        if not oids:
            self._occupied += 1
        slot[oid] = len(oids)
        oids.append(oid)
        cell.xs.append(point[0])
        cell.ys.append(point[1])
        self._n_objects += 1
        self.stats.inserts += 1

    def delete_at(self, cid: int, oid: int) -> None:
        """Delete object ``oid`` from the cell with packed id ``cid``.

        Delete-by-swap: the last column row moves into the freed slot, so
        removal is O(1) regardless of the cell population.
        """
        cell = self._cells[cid]
        if cell is None or oid not in cell.slot:
            raise KeyError(f"object {oid} not found in cell {self.unpack(cid)}")
        cell.delete(oid)
        if not cell.oids:
            self._occupied -= 1
        self._n_objects -= 1
        self.stats.deletes += 1

    def relocate_at(self, cid: int, oid: int, point: Point) -> None:
        """Move an object within its cell (same-cell location update).

        Observationally a delete followed by an insert into the same cell
        (both counters bump), executed as two in-place column stores.
        """
        cell = self._cells[cid]
        if cell is None:
            raise KeyError(f"object {oid} not found in cell {self.unpack(cid)}")
        idx = cell.slot.get(oid)
        if idx is None:
            raise KeyError(f"object {oid} not found in cell {self.unpack(cid)}")
        cell.xs[idx] = point[0]
        cell.ys[idx] = point[1]
        self.stats.deletes += 1
        self.stats.inserts += 1

    def insert(self, oid: int, x: float, y: float) -> CellCoord:
        """Insert object ``oid`` at ``(x, y)``; returns its cell."""
        cid = self.cell_id(x, y)
        self.insert_at(cid, oid, (x, y))
        return divmod(cid, self.rows)

    def delete(self, oid: int, x: float, y: float) -> CellCoord:
        """Delete object ``oid`` located at ``(x, y)``; returns its old cell."""
        cid = self.cell_id(x, y)
        self.delete_at(cid, oid)
        return divmod(cid, self.rows)

    def move(
        self, oid: int, old: Point, new: Point
    ) -> tuple[CellCoord, CellCoord]:
        """Relocate an object; returns ``(old_cell, new_cell)``.

        Same-cell moves (the common case at coarse granularities) take an
        in-place relocate fast path — each cell id is computed once and
        no delete/insert pair runs.  Counters are identical to the
        two-step path (one delete plus one insert bump either way).  The
        addressing and both columnar mutations run inline (zero callee
        frames): this is the whole object-maintenance path of the
        YPK-CNN / SEA-CNN update loops.
        """
        bounds = self.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        delta = self.delta
        cols_1 = self.cols - 1
        rows = self.rows
        rows_1 = rows - 1
        # Inlined cell_id for both endpoints (same float ops).
        i = int((old[0] - bx0) / delta)
        if i < 0:
            i = 0
        elif i > cols_1:
            i = cols_1
        j = int((old[1] - by0) / delta)
        if j < 0:
            j = 0
        elif j > rows_1:
            j = rows_1
        old_cid = i * rows + j
        i = int((new[0] - bx0) / delta)
        if i < 0:
            i = 0
        elif i > cols_1:
            i = cols_1
        j = int((new[1] - by0) / delta)
        if j < 0:
            j = 0
        elif j > rows_1:
            j = rows_1
        new_cid = i * rows + j
        cells = self._cells
        stats = self.stats
        cell = cells[old_cid]
        if old_cid == new_cid:
            # Inlined relocate_at.
            idx = None if cell is None else cell.slot.get(oid)
            if idx is None:
                raise KeyError(
                    f"object {oid} not found in cell {self.unpack(old_cid)}"
                )
            cell.xs[idx] = new[0]
            cell.ys[idx] = new[1]
        else:
            # Inlined delete_at (delete-by-swap) ...
            idx = None if cell is None else cell.slot.pop(oid, None)
            if idx is None:
                raise KeyError(
                    f"object {oid} not found in cell {self.unpack(old_cid)}"
                )
            oids = cell.oids
            last_oid = oids.pop()
            lx = cell.xs.pop()
            ly = cell.ys.pop()
            if last_oid != oid:
                oids[idx] = last_oid
                cell.xs[idx] = lx
                cell.ys[idx] = ly
                cell.slot[last_oid] = idx
            elif not oids:
                self._occupied -= 1
            # ... and inlined insert_at on the new cell (duplicate guard
            # kept: a second row for oid would be unscannable corruption).
            cell = cells[new_cid]
            if cell is None:
                cell = self.cell_factory()
                cells[new_cid] = cell
            slot = cell.slot
            if oid in slot:
                raise KeyError(
                    f"object {oid} already present in cell {self.unpack(new_cid)}"
                )
            oids = cell.oids
            if not oids:
                self._occupied += 1
            slot[oid] = len(oids)
            oids.append(oid)
            cell.xs.append(new[0])
            cell.ys.append(new[1])
        stats.deletes += 1
        stats.inserts += 1
        return (divmod(old_cid, rows), divmod(new_cid, rows))

    def move_ids(
        self, oid: int, old_cid: int, new_cid: int, nx: float, ny: float
    ) -> None:
        """:meth:`move` with both cell ids precomputed by the caller.

        The columnar update loops (``process_flat``) address whole
        batches through :meth:`batch_cell_ids` and then drive this
        entry point, skipping the per-row addressing of :meth:`move`.
        Same fast path, same failure modes, same counters (one delete
        plus one insert bump whether or not the cell changes).
        """
        cells = self._cells
        stats = self.stats
        cell = cells[old_cid]
        if old_cid == new_cid:
            # Inlined relocate_at.
            idx = None if cell is None else cell.slot.get(oid)
            if idx is None:
                raise KeyError(
                    f"object {oid} not found in cell {self.unpack(old_cid)}"
                )
            cell.xs[idx] = nx
            cell.ys[idx] = ny
        else:
            # Inlined delete_at (delete-by-swap) ...
            idx = None if cell is None else cell.slot.pop(oid, None)
            if idx is None:
                raise KeyError(
                    f"object {oid} not found in cell {self.unpack(old_cid)}"
                )
            oids = cell.oids
            last_oid = oids.pop()
            lx = cell.xs.pop()
            ly = cell.ys.pop()
            if last_oid != oid:
                oids[idx] = last_oid
                cell.xs[idx] = lx
                cell.ys[idx] = ly
                cell.slot[last_oid] = idx
            elif not oids:
                self._occupied -= 1
            # ... and inlined insert_at on the new cell.
            cell = cells[new_cid]
            if cell is None:
                cell = self.cell_factory()
                cells[new_cid] = cell
            slot = cell.slot
            if oid in slot:
                raise KeyError(
                    f"object {oid} already present in cell {self.unpack(new_cid)}"
                )
            oids = cell.oids
            if not oids:
                self._occupied += 1
            slot[oid] = len(oids)
            oids.append(oid)
            cell.xs.append(nx)
            cell.ys.append(ny)
        stats.deletes += 1
        stats.inserts += 1

    def bulk_load(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Insert many objects at once (initial workload loading)."""
        for oid, (x, y) in objects:
            self.insert(oid, x, y)

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------

    def scan_id(self, cid: int) -> dict[int, Point]:
        """Scan the object list of the cell ``cid`` — *this is a cell access*.

        Every call increments the counters that back Figure 6.3b.  This is
        the dict *compatibility view* over the columnar store (a fresh
        ``{oid: (x, y)}`` snapshot per call); hot paths use the fused
        kernels (:meth:`scan_within`, :meth:`scan_best_k`,
        :meth:`scan_all_flat`) instead, which charge identically.
        """
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell is not None and cell.oids:
            stats.objects_scanned += len(cell.oids)
            return cell.as_dict()
        return _EMPTY_OBJECTS

    def scan(self, i: int, j: int) -> dict[int, Point]:
        """Scan the object list of ``c_{i,j}`` (a charged cell access).

        Dict compatibility view, like :meth:`scan_id`.
        """
        if 0 <= i < self.cols and 0 <= j < self.rows:
            cell = self._cells[i * self.rows + j]
        else:
            cell = None
        stats = self.stats
        stats.cell_scans += 1
        if cell is not None and cell.oids:
            stats.objects_scanned += len(cell.oids)
            return cell.as_dict()
        return _EMPTY_OBJECTS

    # -- fused scan kernels (see repro.grid.kernels) -------------------

    def scan_within(
        self, cid: int, qx: float, qy: float, r: float
    ) -> list[tuple[float, int]]:
        """Fused scan-and-filter: ``(dist, oid)`` pairs with ``dist <= r``.

        One charged cell access (same accounting as :meth:`scan_id`: the
        whole cell population counts as scanned — the bound prunes the
        *candidates*, not the paper's cost).  ``r = inf`` returns every
        object with its distance computed.
        """
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell is None:
            return []
        oids = cell.oids
        if not oids:
            return []
        stats.objects_scanned += len(oids)
        # Vectorized distance+filter pass past the crossover occupancy
        # (numpy backend only; byte-identical to the scalar loop).
        vec = self._vec_within
        if vec is not None and len(oids) >= self._vec_min:
            return vec(cell, qx, qy, r)
        # kernels.within, inlined to spare one frame per scanned cell.
        return [
            (d, oid)
            for oid, x, y in zip(oids, cell.xs, cell.ys)
            if (d := _hypot(x - qx, y - qy)) <= r
        ]

    def scan_best_k(
        self, cid: int, qx: float, qy: float, k: int, bound: float = math.inf
    ) -> list[tuple[float, int]]:
        """The cell's ``k`` best ``(dist, oid)`` within ``bound``, ascending.

        One charged cell access, like :meth:`scan_within`.
        """
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell is None:
            return []
        oids = cell.oids
        if not oids:
            return []
        stats.objects_scanned += len(oids)
        vec = self._vec_within
        if vec is not None and len(oids) >= self._vec_min:
            hits = vec(cell, qx, qy, bound)
            if len(hits) > 1:
                hits.sort()
            return hits[:k]
        return best_k(oids, cell.xs, cell.ys, qx, qy, k, bound)

    def scan_all_flat(
        self, cid: int
    ) -> tuple[list[int], list[float], list[float]]:
        """The cell's raw ``(oids, xs, ys)`` columns — a charged access.

        For strategy-generic consumers that apply their own predicate.
        The returned lists are the live columns; callers must not mutate
        them (and must not hold them across grid mutations).
        """
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell is None:
            return _EMPTY_COLUMNS
        oids = cell.oids
        if not oids:
            return _EMPTY_COLUMNS
        stats.objects_scanned += len(oids)
        return cell.columns

    def peek(self, i: int, j: int) -> dict[int, Point]:
        """Object list of ``c_{i,j}`` *without* charging a cell access.

        Reserved for assertions, tests and size inspection — algorithm code
        must go through :meth:`scan` or the fused kernels.
        """
        if 0 <= i < self.cols and 0 <= j < self.rows:
            cell = self._cells[i * self.rows + j]
            if cell is not None and cell.oids:
                return cell.as_dict()
        return _EMPTY_OBJECTS

    def cell_size(self, i: int, j: int) -> int:
        """Number of objects currently in ``c_{i,j}`` (no access charged)."""
        if 0 <= i < self.cols and 0 <= j < self.rows:
            cell = self._cells[i * self.rows + j]
            if cell is not None:
                return len(cell.oids)
        return 0

    def __len__(self) -> int:
        """Total number of indexed objects."""
        return self._n_objects

    @property
    def occupied_cells(self) -> int:
        """Number of cells currently holding at least one object."""
        return self._occupied

    # ------------------------------------------------------------------
    # Query marks (influence lists / answer regions)
    # ------------------------------------------------------------------

    def add_mark_id(self, cid: int, qid: int) -> None:
        """Mark the cell ``cid`` as influenced by query ``qid`` (idempotent)."""
        marks = self._marks
        ms = marks[cid]
        if ms is None:
            marks[cid] = {qid}
        elif qid not in ms:
            ms.add(qid)
        else:
            return
        self._mark_count += 1
        self.stats.mark_ops += 1

    def remove_mark_id(self, cid: int, qid: int) -> None:
        """Remove query ``qid``'s mark from ``cid`` (no-op when absent)."""
        ms = self._marks[cid]
        if ms and qid in ms:
            ms.remove(qid)
            self._mark_count -= 1
            self.stats.mark_ops += 1

    def marks_id(self, cid: int) -> set[int] | None:
        """Mark set of the cell ``cid`` — ``None`` or empty when unmarked.

        Returns the live set (callers must not mutate) and may return
        ``None`` instead of an empty collection so callers can branch on
        truthiness without an allocation.  The CPM update loop indexes the
        mark store directly rather than paying this call per probe; this
        accessor is the encapsulated equivalent for everything else.
        """
        return self._marks[cid]

    def add_mark(self, coord: CellCoord, qid: int) -> None:
        """Mark cell ``coord`` as influenced by query ``qid`` (idempotent)."""
        i, j = coord
        if not (0 <= i < self.cols and 0 <= j < self.rows):
            raise ValueError(f"cell {coord} outside the {self.cols}x{self.rows} grid")
        self.add_mark_id(i * self.rows + j, qid)

    def remove_mark(self, coord: CellCoord, qid: int) -> None:
        """Remove query ``qid``'s mark from ``coord`` (no-op when absent)."""
        i, j = coord
        if 0 <= i < self.cols and 0 <= j < self.rows:
            self.remove_mark_id(i * self.rows + j, qid)

    def marks(self, coord: CellCoord) -> frozenset[int] | set[int]:
        """Queries marked on ``coord`` (possibly empty, never None)."""
        i, j = coord
        if 0 <= i < self.cols and 0 <= j < self.rows:
            ms = self._marks[i * self.rows + j]
            if ms:
                return ms
        return _EMPTY_MARKS

    def marked_cells(self, qid: int) -> list[CellCoord]:
        """All cells carrying a mark of ``qid`` (test/diagnostic helper).

        Ordered by packed cell id (column-major).
        """
        marks = self._marks
        rows = self.rows
        if isinstance(marks, list):
            items: Iterable[tuple[int, set[int] | None]] = enumerate(marks)
        else:
            items = sorted(marks.items())
        return [divmod(cid, rows) for cid, ms in items if ms and qid in ms]

    @property
    def total_marks(self) -> int:
        """Total number of (cell, query) mark pairs currently stored."""
        return self._mark_count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_units(self) -> int:
        """Memory units per the Section 4.1 accounting model.

        "The minimum unit of memory can store a (real or integer) number";
        an object costs ``s_obj = 3`` (id + two coordinates) and every mark
        costs 1 unit (a query id in an influence list).  This feeds the
        footnote-6 space comparison.
        """
        return 3 * self._n_objects + self._mark_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grid({self.cols}x{self.rows}, delta={self.delta:.6g}, "
            f"objects={self._n_objects}, marks={self._mark_count})"
        )
