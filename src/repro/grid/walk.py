"""Grid-walk primitives: enumerating cells by ring and by square.

Both grid baselines (YPK-CNN's expanding-square search, SEA-CNN's answer
regions) and the service-layer shard router walk cells in simple spatial
patterns around a center cell.  The iteration logic lives here — on the
grid package, next to :class:`repro.grid.grid.Grid` — so every consumer
shares one implementation (``repro.baselines.common`` re-exports these
names for backward compatibility).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.grid.cell import CellCoord
from repro.grid.grid import Grid


def ring_cells(grid: Grid, center: CellCoord, radius: int) -> list[CellCoord]:
    """Cells at Chebyshev distance ``radius`` from ``center`` (clipped).

    ``radius == 0`` yields the center cell itself.  The result is empty when
    the whole ring falls outside the grid.
    """
    ci, cj = center
    if radius == 0:
        return [(ci, cj)] if grid.in_bounds(ci, cj) else []
    cells: list[CellCoord] = []
    lo_i, hi_i = ci - radius, ci + radius
    lo_j, hi_j = cj - radius, cj + radius
    for i in range(lo_i, hi_i + 1):
        if grid.in_bounds(i, lo_j):
            cells.append((i, lo_j))
        if grid.in_bounds(i, hi_j):
            cells.append((i, hi_j))
    for j in range(lo_j + 1, hi_j - 1 + 1):
        if grid.in_bounds(lo_i, j):
            cells.append((lo_i, j))
        if grid.in_bounds(hi_i, j):
            cells.append((hi_i, j))
    return cells


def square_cells(
    grid: Grid, center_cell: CellCoord, half_side: float
) -> Iterator[CellCoord]:
    """Cells intersecting the square of the given half side length centered
    at the *center of* ``center_cell`` (the paper's "centered at c_q")."""
    x0, y0, x1, y1 = grid.cell_rect(*center_cell)
    cx = (x0 + x1) / 2.0
    cy = (y0 + y1) / 2.0
    return grid.cells_in_rect(
        cx - half_side, cy - half_side, cx + half_side, cy + half_side
    )
