"""Columnar cell storage, the fused scan/filter kernels and the
pluggable numeric-backend registry.

The per-cell object store of the grid index is *columnar*: a cell keeps
its objects in three parallel flat columns — ``oids`` / ``xs`` / ``ys``
— plus an ``oid -> slot`` side index for O(1) membership, delete-by-swap
and same-cell relocation.  The paper's cost model is unchanged (a cell
list still supports expected-O(1) insert and delete, the ``Time_ind = 2``
of Section 4.1); what changes is the *per-object* cost of a scan.

Every hot read in the monitoring pipeline is a scan-and-filter: walk a
cell's objects, compute each distance to the query, keep the ones below
a bound.  With a ``dict[int, Point]`` store that loop pays dict-item
iteration, a tuple unpack and interpreted compare per object.  The
kernels below fuse the whole thing into a single list comprehension over
the parallel columns, so the per-object work runs on the comprehension
fast path — the standard flat-array trick of fast NN systems, in pure
Python.

Three kernel shapes make up the public scan surface:

* :func:`within` — fused distance + radius filter, returning ready-made
  ``(dist, oid)`` result entries (:func:`within_nd` is its d-dimensional
  sibling, consumed by ``repro.ndim``);
* :func:`best_k` — ``within`` plus sort-and-truncate, for callers that
  want a cell's local top-k;
* the raw columns themselves (``CellColumns`` attributes / the grid's
  ``scan_all_flat``) for consumers that apply their own predicate — on
  CPython 3.11 this zip-loop shape is what the 2-D baselines use, and
  the CPM engine inlines the same loops against the storage directly
  (see ``python -m repro.perf micro`` for why: the comprehension frame
  offsets the column savings at low occupancy, so the framed kernels
  are kept as the *API*, not the hot path).

The kernels are *pure* (no accounting): the grid front-ends
(:meth:`repro.grid.grid.Grid.scan_within` and friends) charge the cell
access before delegating, so the paper's counters — one charged access
per scan call, ``objects_scanned`` bumped by the cell population — are
identical to the dict-store era, byte for byte.

Numeric backends
----------------

Three interchangeable backends serve the same kernel interface
(:class:`KernelBackend`); which one a grid uses is decided at
construction (``Grid(backend=...)``, the ``REPRO_KERNEL_BACKEND``
environment variable, or the auto default):

``list``
    The pure-python reference: plain list columns, scalar comprehension
    kernels.  Always available; the byte-identity baseline every other
    backend is tested against.
``array``
    Stdlib buffer backend: :class:`BufferCellColumns` stores ``xs`` /
    ``ys`` as ``array('d')`` — contiguous float64 buffers exposable as
    memoryviews (:meth:`BufferCellColumns.coord_views`) — while the
    scan loops stay scalar (``array('d')`` supports the exact same
    append/pop/index/zip surface as a list).  The default whenever
    numpy is not installed.
``numpy``
    The ``array`` storage plus vectorized scan kernels
    (:mod:`repro.grid._numpy_kernels`): ``np.frombuffer`` maps the live
    coordinate buffers zero-copy and a squared-distance prefilter +
    exact scalar finish replaces the per-row loop once a cell's
    population reaches :data:`VEC_MIN_OCCUPANCY` (below it, vector-call
    overhead loses to the comprehension — crossover measured by
    ``python -m repro.perf micro --backends``).  Results are
    byte-identical to ``list`` by construction.  Auto-selected when
    numpy is importable; never a hard dependency.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from math import dist as _dist, hypot as _hypot
from typing import Callable, Optional

__all__ = [
    "CellColumns",
    "BufferCellColumns",
    "KernelBackend",
    "VEC_MIN_OCCUPANCY",
    "VEC_MIN_BATCH",
    "available_backends",
    "resolve_backend",
    "within",
    "best_k",
    "within_nd",
]


class CellColumns:
    """One cell's objects as parallel columns plus a slot index.

    Invariants: ``len(oids) == len(xs) == len(ys)``;
    ``slot[oids[i]] == i`` for every position ``i``.  Deletion swaps the
    last row into the freed slot (object order inside a cell is not
    observable: every consumer either filters by distance or sorts).
    """

    __slots__ = ("oids", "xs", "ys", "slot", "columns")

    def __init__(self) -> None:
        self.oids: list[int] = []
        self.xs: list[float] = []
        self.ys: list[float] = []
        self.slot: dict[int, int] = {}
        #: the (oids, xs, ys) triple, prebuilt once — flat scans return
        #: it without allocating (the lists mutate in place, so the
        #: tuple stays valid for the cell's lifetime).
        self.columns = (self.oids, self.xs, self.ys)

    def __len__(self) -> int:
        return len(self.oids)

    def __contains__(self, oid: int) -> bool:
        return oid in self.slot

    def insert(self, oid: int, x: float, y: float) -> None:
        """Append a row (caller guarantees ``oid`` is not present)."""
        self.slot[oid] = len(self.oids)
        self.oids.append(oid)
        self.xs.append(x)
        self.ys.append(y)

    def delete(self, oid: int) -> None:
        """Remove a row by swapping the last row into its slot.

        Raises ``KeyError`` when ``oid`` is not in the cell.
        """
        idx = self.slot.pop(oid)
        oids = self.oids
        last_oid = oids.pop()
        lx = self.xs.pop()
        ly = self.ys.pop()
        if last_oid != oid:
            oids[idx] = last_oid
            self.xs[idx] = lx
            self.ys[idx] = ly
            self.slot[last_oid] = idx

    def relocate(self, oid: int, x: float, y: float) -> None:
        """Overwrite a row's coordinates in place (same-cell move).

        Raises ``KeyError`` when ``oid`` is not in the cell.
        """
        idx = self.slot[oid]
        self.xs[idx] = x
        self.ys[idx] = y

    def position(self, oid: int) -> tuple[float, float]:
        """Stored coordinates of a member (``KeyError`` when absent)."""
        idx = self.slot[oid]
        return (self.xs[idx], self.ys[idx])

    def as_dict(self) -> dict[int, tuple[float, float]]:
        """Dict snapshot ``{oid: (x, y)}`` (the compatibility view)."""
        return {
            oid: (x, y) for oid, x, y in zip(self.oids, self.xs, self.ys)
        }


class BufferCellColumns(CellColumns):
    """:class:`CellColumns` with ``array('d')`` coordinate buffers.

    Same interface, same invariants, same mutation semantics —
    ``array('d')`` supports the exact append/pop/index/assign/zip
    surface the scalar loops (and the CPM engine's inlined copies of
    them) drive, so every consumer works unchanged.  What changes is
    the representation: ``xs`` / ``ys`` are contiguous float64 buffers,
    so they can be exposed as memoryviews (:meth:`coord_views`) and
    mapped zero-copy by the vectorized numpy kernels
    (``np.frombuffer``; see :mod:`repro.grid._numpy_kernels`).

    ``oids`` stays a plain list: object ids feed tuple construction and
    dict probes (never numeric vector math), and list indexing is
    faster than ``array('q')`` unboxing on every CPython this repo
    targets.
    """

    __slots__ = ()

    def __init__(self) -> None:
        self.oids: list[int] = []
        self.xs = array("d")
        self.ys = array("d")
        self.slot: dict[int, int] = {}
        self.columns = (self.oids, self.xs, self.ys)

    def coord_views(self) -> tuple[memoryview, memoryview]:
        """Zero-copy float64 memoryviews of the coordinate buffers.

        Views are snapshots of the *current* buffer: take them per scan
        and drop them before the next mutation (an append may realloc).
        """
        return (memoryview(self.xs), memoryview(self.ys))


@dataclass(frozen=True, slots=True)
class KernelBackend:
    """One numeric backend: a cell representation plus its kernels.

    ``vec_within`` is the cell-level vectorized scan (``None`` for
    scalar backends); grids call it instead of the inlined comprehension
    once a cell's population reaches ``vec_min``.  ``within_nd`` is the
    d-dimensional kernel consumed by :class:`repro.ndim.grid.NdGrid`.
    ``batch_cell_ids`` is the *batch* addressing kernel (``None`` for
    scalar backends): given the coordinate columns of a whole
    :class:`repro.updates.FlatUpdateBatch` it computes every row's packed
    cell id in one vectorized pass — the update loops of the monitors
    consume it instead of the inlined per-row ``int((x - x0) / delta)``
    arithmetic once a batch reaches :data:`VEC_MIN_BATCH` rows.
    All kernels are byte-identical to the ``list`` reference — the
    backend changes *how* a scan runs, never what it returns.
    """

    name: str
    cell_factory: type
    within_nd: Callable
    vec_within: Optional[Callable] = None
    vec_min: int = 0
    batch_cell_ids: Optional[Callable] = None


#: cell population at which the numpy vectorized scan overtakes the
#: inlined scalar comprehension.  Measured by ``python -m repro.perf
#: micro --backends`` on CPython 3.11 (see benchmarks/BENCH_PR7.json):
#: below ~48 rows the ``np.frombuffer`` view setup + prefilter overhead
#: loses to the comprehension; from ~64 rows the vector pass wins and
#: the gap widens with occupancy.  Override per-process with the
#: ``REPRO_KERNEL_VEC_MIN`` environment variable.
VEC_MIN_OCCUPANCY = 64

#: batch row count at which the vectorized addressing kernel
#: (``KernelBackend.batch_cell_ids``) overtakes the inlined per-row cell
#: arithmetic in the monitors' update loops.  The kernel's fixed cost is
#: two ``np.frombuffer`` views plus a handful of whole-column ufunc
#: passes (~15 µs against ~190 ns saved per row in isolation —
#: micro-breakeven near 80 rows), but *in situ* the consuming loop keeps
#: a per-row branch on the precomputed column, so interleaved A/B
#: replays put the real crossover higher: ~100-row batches measure
#: neutral-to-negative, ~500 rows and up measure a consistent win.
#: 128 keeps sub-crossover batches on the scalar path.
VEC_MIN_BATCH = 128

#: environment knobs.
_BACKEND_ENV = "REPRO_KERNEL_BACKEND"
_VEC_MIN_ENV = "REPRO_KERNEL_VEC_MIN"

#: resolved-once cache: ``None`` = not probed yet, ``False`` = numpy
#: absent, otherwise the numpy :class:`KernelBackend`.
_numpy_backend_cache: object = None


def _make_numpy_backend() -> KernelBackend:
    from repro.grid import _numpy_kernels as nk

    vec_min = VEC_MIN_OCCUPANCY
    override = os.environ.get(_VEC_MIN_ENV)
    if override:
        vec_min = max(1, int(override))
    return KernelBackend(
        name="numpy",
        cell_factory=BufferCellColumns,
        within_nd=nk.within_nd,
        vec_within=nk.within_cell,
        vec_min=vec_min,
        batch_cell_ids=nk.batch_cell_ids,
    )


def _numpy_backend() -> KernelBackend | None:
    global _numpy_backend_cache
    cached = _numpy_backend_cache
    if cached is None:
        try:
            backend = _make_numpy_backend()
        except ImportError:
            _numpy_backend_cache = False
            return None
        _numpy_backend_cache = backend
        return backend
    return cached or None


def available_backends() -> tuple[str, ...]:
    """Names of the backends importable in this interpreter."""
    names = ["list", "array"]
    if _numpy_backend() is not None:
        names.append("numpy")
    return tuple(names)


def resolve_backend(backend: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend selector to a :class:`KernelBackend`.

    Precedence: an explicit argument (name or backend object) beats the
    ``REPRO_KERNEL_BACKEND`` environment variable beats the ``auto``
    default.  ``auto`` picks ``numpy`` when numpy is importable and the
    stdlib ``array`` backend otherwise — the measured-fastest choice at
    the workload occupancies of the perf suite (``perf micro
    --backends`` records the crossover).  Requesting ``numpy`` where
    numpy is not installed raises ``ImportError``; unknown names raise
    ``ValueError``.
    """
    if isinstance(backend, KernelBackend):
        return backend
    name = backend or os.environ.get(_BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name == "auto":
        np_backend = _numpy_backend()
        return np_backend if np_backend is not None else _ARRAY_BACKEND
    if name == "list":
        return _LIST_BACKEND
    if name == "array":
        return _ARRAY_BACKEND
    if name == "numpy":
        np_backend = _numpy_backend()
        if np_backend is None:
            raise ImportError(
                "the 'numpy' kernel backend requires numpy "
                "(pip install repro[numpy]); the stdlib 'array' backend "
                "is the drop-in fallback"
            )
        return np_backend
    raise ValueError(
        f"unknown kernel backend {name!r} "
        f"(expected one of: auto, list, array, numpy)"
    )


def within(
    oids: list[int],
    xs: list[float],
    ys: list[float],
    qx: float,
    qy: float,
    r: float,
) -> list[tuple[float, int]]:
    """Fused scan-and-filter: ``(dist, oid)`` pairs with ``dist <= r``.

    One comprehension computes every distance and applies the bound, so
    the per-object loop runs at comprehension speed.  ``r = inf`` returns
    every object with its distance.  The returned pairs are ready-made
    ``(dist, oid)`` result entries (the library-wide tie-break order).
    """
    return [
        (d, oid)
        for oid, x, y in zip(oids, xs, ys)
        if (d := _hypot(x - qx, y - qy)) <= r
    ]


def best_k(
    oids: list[int],
    xs: list[float],
    ys: list[float],
    qx: float,
    qy: float,
    k: int,
    bound: float,
) -> list[tuple[float, int]]:
    """The cell's ``k`` best objects within ``bound``, ascending."""
    hits = [
        (d, oid)
        for oid, x, y in zip(oids, xs, ys)
        if (d := _hypot(x - qx, y - qy)) <= bound
    ]
    if len(hits) > 1:
        hits.sort()
    return hits[:k]


def within_nd(
    oids: list[int],
    pts: list[tuple[float, ...]],
    q: tuple[float, ...],
    r: float,
) -> list[tuple[float, int]]:
    """d-dimensional :func:`within` over an ``oids`` / ``pts`` column pair."""
    return [
        (d, oid) for oid, p in zip(oids, pts) if (d := _dist(p, q)) <= r
    ]


#: the scalar backends (module-level singletons; the numpy backend is
#: materialized lazily by :func:`_numpy_backend` so importing this module
#: never imports numpy).
_LIST_BACKEND = KernelBackend(
    name="list", cell_factory=CellColumns, within_nd=within_nd
)
_ARRAY_BACKEND = KernelBackend(
    name="array", cell_factory=BufferCellColumns, within_nd=within_nd
)
