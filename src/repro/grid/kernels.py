"""Columnar cell storage and the fused scan/filter kernels.

The per-cell object store of the grid index is *columnar*: a cell keeps
its objects in three parallel flat lists — ``oids`` / ``xs`` / ``ys`` —
plus an ``oid -> slot`` side index for O(1) membership, delete-by-swap
and same-cell relocation.  The paper's cost model is unchanged (a cell
list still supports expected-O(1) insert and delete, the ``Time_ind = 2``
of Section 4.1); what changes is the *per-object* cost of a scan.

Every hot read in the monitoring pipeline is a scan-and-filter: walk a
cell's objects, compute each distance to the query, keep the ones below
a bound.  With a ``dict[int, Point]`` store that loop pays dict-item
iteration, a tuple unpack and interpreted compare per object.  The
kernels below fuse the whole thing into a single list comprehension over
the parallel columns, so the per-object work runs on the comprehension
fast path — the standard flat-array trick of fast NN systems, in pure
Python.

Three kernel shapes make up the public scan surface:

* :func:`within` — fused distance + radius filter, returning ready-made
  ``(dist, oid)`` result entries (:func:`within_nd` is its d-dimensional
  sibling, consumed by ``repro.ndim``);
* :func:`best_k` — ``within`` plus sort-and-truncate, for callers that
  want a cell's local top-k;
* the raw columns themselves (``CellColumns`` attributes / the grid's
  ``scan_all_flat``) for consumers that apply their own predicate — on
  CPython 3.11 this zip-loop shape is what the 2-D baselines use, and
  the CPM engine inlines the same loops against the storage directly
  (see ``python -m repro.perf micro`` for why: the comprehension frame
  offsets the column savings at low occupancy, so the framed kernels
  are kept as the *API*, not the hot path).

The kernels are *pure* (no accounting): the grid front-ends
(:meth:`repro.grid.grid.Grid.scan_within` and friends) charge the cell
access before delegating, so the paper's counters — one charged access
per scan call, ``objects_scanned`` bumped by the cell population — are
identical to the dict-store era, byte for byte.
"""

from __future__ import annotations

from math import dist as _dist, hypot as _hypot

__all__ = ["CellColumns", "within", "best_k", "within_nd"]


class CellColumns:
    """One cell's objects as parallel columns plus a slot index.

    Invariants: ``len(oids) == len(xs) == len(ys)``;
    ``slot[oids[i]] == i`` for every position ``i``.  Deletion swaps the
    last row into the freed slot (object order inside a cell is not
    observable: every consumer either filters by distance or sorts).
    """

    __slots__ = ("oids", "xs", "ys", "slot", "columns")

    def __init__(self) -> None:
        self.oids: list[int] = []
        self.xs: list[float] = []
        self.ys: list[float] = []
        self.slot: dict[int, int] = {}
        #: the (oids, xs, ys) triple, prebuilt once — flat scans return
        #: it without allocating (the lists mutate in place, so the
        #: tuple stays valid for the cell's lifetime).
        self.columns = (self.oids, self.xs, self.ys)

    def __len__(self) -> int:
        return len(self.oids)

    def __contains__(self, oid: int) -> bool:
        return oid in self.slot

    def insert(self, oid: int, x: float, y: float) -> None:
        """Append a row (caller guarantees ``oid`` is not present)."""
        self.slot[oid] = len(self.oids)
        self.oids.append(oid)
        self.xs.append(x)
        self.ys.append(y)

    def delete(self, oid: int) -> None:
        """Remove a row by swapping the last row into its slot.

        Raises ``KeyError`` when ``oid`` is not in the cell.
        """
        idx = self.slot.pop(oid)
        oids = self.oids
        last_oid = oids.pop()
        lx = self.xs.pop()
        ly = self.ys.pop()
        if last_oid != oid:
            oids[idx] = last_oid
            self.xs[idx] = lx
            self.ys[idx] = ly
            self.slot[last_oid] = idx

    def relocate(self, oid: int, x: float, y: float) -> None:
        """Overwrite a row's coordinates in place (same-cell move).

        Raises ``KeyError`` when ``oid`` is not in the cell.
        """
        idx = self.slot[oid]
        self.xs[idx] = x
        self.ys[idx] = y

    def position(self, oid: int) -> tuple[float, float]:
        """Stored coordinates of a member (``KeyError`` when absent)."""
        idx = self.slot[oid]
        return (self.xs[idx], self.ys[idx])

    def as_dict(self) -> dict[int, tuple[float, float]]:
        """Dict snapshot ``{oid: (x, y)}`` (the compatibility view)."""
        return {
            oid: (x, y) for oid, x, y in zip(self.oids, self.xs, self.ys)
        }


def within(
    oids: list[int],
    xs: list[float],
    ys: list[float],
    qx: float,
    qy: float,
    r: float,
) -> list[tuple[float, int]]:
    """Fused scan-and-filter: ``(dist, oid)`` pairs with ``dist <= r``.

    One comprehension computes every distance and applies the bound, so
    the per-object loop runs at comprehension speed.  ``r = inf`` returns
    every object with its distance.  The returned pairs are ready-made
    ``(dist, oid)`` result entries (the library-wide tie-break order).
    """
    return [
        (d, oid)
        for oid, x, y in zip(oids, xs, ys)
        if (d := _hypot(x - qx, y - qy)) <= r
    ]


def best_k(
    oids: list[int],
    xs: list[float],
    ys: list[float],
    qx: float,
    qy: float,
    k: int,
    bound: float,
) -> list[tuple[float, int]]:
    """The cell's ``k`` best objects within ``bound``, ascending."""
    hits = [
        (d, oid)
        for oid, x, y in zip(oids, xs, ys)
        if (d := _hypot(x - qx, y - qy)) <= bound
    ]
    if len(hits) > 1:
        hits.sort()
    return hits[:k]


def within_nd(
    oids: list[int],
    pts: list[tuple[float, ...]],
    q: tuple[float, ...],
    r: float,
) -> list[tuple[float, int]]:
    """d-dimensional :func:`within` over an ``oids`` / ``pts`` column pair."""
    return [
        (d, oid) for oid, p in zip(oids, pts) if (d := _dist(p, q)) <= r
    ]
