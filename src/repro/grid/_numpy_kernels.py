"""Vectorized scan kernels over buffer-backed cell columns (numpy).

This module is imported *lazily* by :func:`repro.grid.kernels.resolve_backend`
— only when numpy is installed and the ``numpy`` backend is selected — so
``import repro`` never touches numpy (the library stays stdlib-only by
default; see the "no hard numpy import" contract in the README's numeric
backends section).

Byte-identity contract
----------------------

Every kernel here returns *exactly* what its scalar reference
(:func:`repro.grid.kernels.within` and friends) returns: same candidate
set, same ``(dist, oid)`` tuples (distances computed by ``math.hypot`` /
``math.dist``, not ``numpy.hypot`` — the two may differ in the last ulp),
same column order.  The vectorization is a *prefilter*: a squared-distance
pass with a conservative relative slack selects the survivors (a strict
superset of the true hits — squared compare in float64 loses at most a few
ulps, the slack covers that), then the exact scalar distance and the exact
``d <= r`` decision re-run per survivor.  Cells are small (tens to a few
hundreds of objects), so the exact finish touches few rows while numpy
eats the O(population) arithmetic.

The coordinate views are *zero-copy*: ``np.frombuffer`` maps the live
``array('d')`` buffers of a :class:`repro.grid.kernels.BufferCellColumns`.
Views are taken per scan and never cached — an ``append`` may realloc the
backing buffer, so a held view could go stale.
"""

from __future__ import annotations

from math import dist as _dist, hypot as _hypot, inf as _INF, isfinite

import numpy as np

#: relative slack of the squared-distance prefilter.  The squared compare
#: ``dx*dx + dy*dy <= r*r`` loses at most ~4 ulps (two products, one sum,
#: one square) — 1e-12 relative is ~2000x that, still pruning everything
#: that is not within a hair of the bound.
_SLACK = 1.0 + 1e-12

#: squared radii beyond this overflow float64 (hypot does not); the
#: prefilter falls back to keeping every row for such bounds.
_MAX_SQUARE_BOUND = 1.3e154


def within_cell(cell, qx: float, qy: float, r: float) -> list[tuple[float, int]]:
    """Vectorized twin of the inlined scalar ``within`` scan over one
    buffer-backed cell: ``(dist, oid)`` pairs with ``dist <= r``, in
    column order, distances by ``math.hypot``."""
    xs = cell.xs
    ys = cell.ys
    oids = cell.oids
    vx = np.frombuffer(xs) - qx
    vy = np.frombuffer(ys) - qy
    d2 = vx * vx + vy * vy
    if r >= _MAX_SQUARE_BOUND:
        # inf (the under-full search bound) or a radius whose square
        # overflows: every row survives the prefilter by definition.
        idx = range(len(oids))
    else:
        idx = np.nonzero(d2 <= r * r * _SLACK)[0].tolist()
    out = []
    append = out.append
    for i in idx:
        d = _hypot(xs[i] - qx, ys[i] - qy)
        if d <= r:
            append((d, oids[i]))
    return out


def best_k_cell(
    cell, qx: float, qy: float, k: int, bound: float
) -> list[tuple[float, int]]:
    """Vectorized twin of :func:`repro.grid.kernels.best_k`."""
    hits = within_cell(cell, qx, qy, bound)
    if len(hits) > 1:
        hits.sort()
    return hits[:k]


def batch_cell_ids(
    xs,
    ys,
    x0: float,
    y0: float,
    delta: float,
    cols_1: int,
    rows_1: int,
    rows: int,
    skip=None,
) -> list[int]:
    """Packed cell ids of every ``(xs[i], ys[i])`` row in one vector pass.

    Twin of the inlined per-row addressing of the update loops
    (``i = int((x - x0) / delta)`` clamped to ``[0, cols-1]``, then
    ``i * rows + j``).  The clamp runs in the *float* domain before the
    integer cast: for in-range values the cast truncates exactly like
    ``int()``, out-of-range values hit the clamp boundary exactly as the
    integer clamp does, and huge coordinates never reach an overflowing
    float->int64 cast.  Non-finite coordinates are outside the grid
    contract (the scalar path raises on them; this one does not).

    ``skip`` (an optional byte mask, e.g. a batch's ``disappear``
    column) drops the marked rows from the result, keeping the remaining
    ids aligned with the rows a consumer actually addresses.
    """
    fi = np.clip((np.frombuffer(xs) - x0) / delta, 0.0, float(cols_1))
    fj = np.clip((np.frombuffer(ys) - y0) / delta, 0.0, float(rows_1))
    cids = fi.astype(np.int64) * rows + fj.astype(np.int64)
    if skip is not None:
        cids = cids[np.frombuffer(skip, dtype=np.uint8) == 0]
    return cids.tolist()


def within_nd(
    oids, pts, q, r: float
) -> list[tuple[float, int]]:
    """Vectorized twin of :func:`repro.grid.kernels.within_nd`.

    The d-dimensional cells store rows as point tuples, so this pass
    *copies* into a matrix before filtering (not zero-copy like the 2-D
    kernels); it still wins once the population crosses the crossover
    because the per-row squared distance runs in one vector expression.
    """
    if not oids:
        return []
    mat = np.asarray(pts, dtype=np.float64)
    diff = mat - np.asarray(q, dtype=np.float64)
    d2 = np.einsum("ij,ij->i", diff, diff)
    if not isfinite(r) or r >= _MAX_SQUARE_BOUND:
        if r == _INF or r != r or r >= _MAX_SQUARE_BOUND:
            idx = range(len(oids))
        else:  # -inf: nothing can match
            return []
    else:
        idx = np.nonzero(d2 <= r * r * _SLACK)[0].tolist()
    out = []
    append = out.append
    for i in idx:
        d = _dist(pts[i], q)
        if d <= r:
            append((d, oids[i]))
    return out
