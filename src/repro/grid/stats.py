"""Grid access accounting.

The experimental study of the paper (Figure 6.3b) reports *cell accesses*:
"a cell visit corresponds to a complete scan over the object list in the
cell.  Note that a cell may be accessed multiple times within a cycle, if it
is involved in the processing of multiple queries."

:class:`GridStats` mirrors that definition: :meth:`Grid.scan` bumps
``cell_scans`` once per scan (not per distinct cell) and adds the number of
objects encountered to ``objects_scanned``.  Index maintenance operations
are tracked separately so the harness can decompose running time the same
way Section 4.1 decomposes ``Time_CPM``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class GridStats:
    """Mutable counters for one grid instance.

    Attributes:
        cell_scans: number of complete object-list scans performed.
        objects_scanned: total objects encountered across all scans.
        inserts: object insertions into cells.
        deletes: object deletions from cells.
        mark_ops: influence-list / answer-region mark additions + removals.
    """

    cell_scans: int = 0
    objects_scanned: int = 0
    inserts: int = 0
    deletes: int = 0
    mark_ops: int = 0

    def reset(self) -> None:
        """Zero every counter (called by the engine between cycles)."""
        self.cell_scans = 0
        self.objects_scanned = 0
        self.inserts = 0
        self.deletes = 0
        self.mark_ops = 0

    def restore(self, values: "GridStats") -> None:
        """Overwrite every counter with ``values`` (state-capture support).

        Used by :meth:`repro.monitor.ContinuousMonitor.restore_state` to
        reconcile a rebuilt engine's counters with the captured totals, so
        the rebuild's own grid traffic never leaks into the deterministic
        accounting.
        """
        self.cell_scans = values.cell_scans
        self.objects_scanned = values.objects_scanned
        self.inserts = values.inserts
        self.deletes = values.deletes
        self.mark_ops = values.mark_ops

    def snapshot(self) -> "GridStats":
        """Immutable-ish copy of the current counter values."""
        return GridStats(
            cell_scans=self.cell_scans,
            objects_scanned=self.objects_scanned,
            inserts=self.inserts,
            deletes=self.deletes,
            mark_ops=self.mark_ops,
        )

    def diff(self, earlier: "GridStats") -> "GridStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return GridStats(
            cell_scans=self.cell_scans - earlier.cell_scans,
            objects_scanned=self.objects_scanned - earlier.objects_scanned,
            inserts=self.inserts - earlier.inserts,
            deletes=self.deletes - earlier.deletes,
            mark_ops=self.mark_ops - earlier.mark_ops,
        )

    def merged(self, other: "GridStats") -> "GridStats":
        """Element-wise sum of two counter sets."""
        return GridStats(
            cell_scans=self.cell_scans + other.cell_scans,
            objects_scanned=self.objects_scanned + other.objects_scanned,
            inserts=self.inserts + other.inserts,
            deletes=self.deletes + other.deletes,
            mark_ops=self.mark_ops + other.mark_ops,
        )
