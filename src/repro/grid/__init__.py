"""Main-memory regular grid index (substrate S2).

All three monitoring algorithms of the paper (CPM, YPK-CNN, SEA-CNN) index
the moving objects with a regular grid of cells with side ``delta``
(Section 3): "we use a grid index since a more complicated data-structure
(e.g., main memory R-tree) would be very expensive to maintain dynamically".

:class:`repro.grid.grid.Grid` provides

* object bookkeeping — ``insert`` / ``delete`` / ``move`` with per-cell
  object hash tables (expected O(1) maintenance, the ``Time_ind = 2`` of
  Section 4.1),
* per-cell *query marks*, the generic mechanism behind CPM's influence
  lists and SEA-CNN's answer-region book-keeping,
* the ``mindist(c, q)`` primitive of Table 3.1, and
* cell-access accounting (:class:`repro.grid.stats.GridStats`) matching the
  paper's metric: "a cell visit corresponds to a complete scan over the
  object list in the cell" (Section 6).
"""

from repro.grid.cell import CellCoord
from repro.grid.grid import Grid
from repro.grid.stats import GridStats
from repro.grid.walk import ring_cells, square_cells

__all__ = ["CellCoord", "Grid", "GridStats", "ring_cells", "square_cells"]
