"""Update feed sources: where the ingestion tier's events come from.

The paper models the input as a continuous stream of ``<p.id, x_old,
y_old, x_new, y_new>`` location updates (Section 3).  A feed is the
library's abstraction of that stream: an iterator of
:class:`repro.updates.ObjectUpdate` / :class:`repro.updates.QueryUpdate`
events, optionally punctuated by :class:`CycleMark` sentinels that flag
the source's own cycle boundaries (a materialized workload knows its
timestamps; a live generator emits one mark per simulation step).  The
driver (:mod:`repro.ingest.driver`) may honor the marks — deterministic
replay — or re-cut cycles by batch size and deadline, which is what a
real-time deployment does.

Four adapters cover the sources the repo has:

* :class:`WorkloadFeed` — a materialized
  :class:`repro.mobility.workload.Workload`, replayed event by event;
* :class:`GeneratorFeed` — a *live* Brinkhoff-style source stepping
  :class:`repro.mobility.brinkhoff.BrinkhoffStream` agents on demand,
  unbounded unless capped;
* :class:`JsonlTraceFeed` — a replayable JSONL trace on disk (one event
  per line); :func:`write_jsonl_trace` records one;
* :class:`SocketFeed` — a live network source speaking the versioned
  ndjson wire protocol of :mod:`repro.api.wire` (``updates`` / ``query``
  / ``tick`` frames), so the ingest driver can sit behind the same
  protocol the delta publisher serves.
"""

from __future__ import annotations

import json
import socket as _socket
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.api.retry import ReconnectPolicy
from repro.geometry.points import Point
from repro.mobility.brinkhoff import BrinkhoffStream
from repro.mobility.network import RoadNetwork
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind


@dataclass(frozen=True, slots=True)
class CycleMark:
    """End-of-cycle sentinel carrying the source's timestamp label."""

    timestamp: int


FeedEvent = Union[ObjectUpdate, QueryUpdate, CycleMark]


class UpdateFeed:
    """Source protocol of the ingestion tier.

    Subclasses yield :data:`FeedEvent` items from :meth:`events`; the
    initial populations (loaded/installed before the stream starts) are
    exposed separately because monitors bulk-load them outside the update
    path (``load_objects`` rejects late bulk loads).
    """

    def initial_objects(self) -> dict[int, Point]:
        """Object id -> position at stream start (may be empty)."""
        return {}

    def initial_queries(self) -> dict[int, Point]:
        """Query id -> position at stream start (may be empty)."""
        return {}

    def install_k(self, qid: int, default: int = 1) -> int:
        """Neighbor count to install an initial query with.

        Feeds that carry per-query ``k`` (recorded traces) override this;
        the base returns the caller's ``default`` unchanged.
        """
        return default

    def events(self) -> Iterator[FeedEvent]:
        """The update stream itself."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[FeedEvent]:
        return self.events()


class WorkloadFeed(UpdateFeed):
    """A materialized workload replayed as a feed.

    Every batch's object updates stream first, then its query updates,
    then one :class:`CycleMark` with the batch's timestamp — so a driver
    honoring marks reproduces the workload's exact cycle structure (and
    therefore the exact deterministic counters of a plain replay).
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def initial_objects(self) -> dict[int, Point]:
        return dict(self.workload.initial_objects)

    def initial_queries(self) -> dict[int, Point]:
        return dict(self.workload.initial_queries)

    def events(self) -> Iterator[FeedEvent]:
        for batch in self.workload.batches:
            yield from batch.object_updates
            yield from batch.query_updates
            yield CycleMark(batch.timestamp)


class GeneratorFeed(UpdateFeed):
    """A live Brinkhoff-style feed stepping moving agents on demand.

    Wraps :class:`repro.mobility.brinkhoff.BrinkhoffStream`: each
    simulation step yields that cycle's object updates, query moves and a
    :class:`CycleMark`.  With ``timestamps=None`` the feed never ends —
    the shape of real traffic; cap it for bounded runs.  The first
    ``spec.timestamps`` steps are byte-identical to
    ``BrinkhoffGenerator(spec).generate()``'s batches (the materialized
    generator consumes the same stream class), which is what makes
    live-vs-materialized equivalence testable.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        network: RoadNetwork | None = None,
        timestamps: int | None = None,
    ) -> None:
        self.stream = BrinkhoffStream(spec, network)
        self.timestamps = timestamps

    def initial_objects(self) -> dict[int, Point]:
        return dict(self.stream.initial_objects)

    def initial_queries(self) -> dict[int, Point]:
        return dict(self.stream.initial_queries)

    def events(self) -> Iterator[FeedEvent]:
        # Mark timestamps come from the stream's own step counter, so a
        # second events() iterator continues the labels where the first
        # stopped instead of restarting at 0 over advanced agent state
        # (``timestamps`` caps the stream's total steps, not each
        # iterator's).
        while self.timestamps is None or self.stream.steps < self.timestamps:
            t = self.stream.steps
            object_updates, query_updates = self.stream.step()
            yield from object_updates
            yield from query_updates
            yield CycleMark(t)


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
#
# One JSON object per line.  ``kind`` selects the record type:
#
#   {"kind": "load",    "oid": 3, "pos": [x, y]}          initial object
#   {"kind": "install", "qid": 9, "point": [x, y], "k": 4} initial query
#   {"kind": "obj",     "oid": 3, "old": [x, y] | null, "new": [x, y] | null}
#   {"kind": "qry",     "qid": 9, "op": "move", "point": [x, y], "k": 4}
#   {"kind": "cycle",   "t": 17}                           cycle mark
#
# ``load``/``install`` records must precede every stream record.


class JsonlTraceFeed(UpdateFeed):
    """A replayable update trace stored as JSONL on disk."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._initial_objects: dict[int, Point] = {}
        self._initial_queries: dict[int, Point] = {}
        self._install_ks: dict[int, int] = {}
        # The prologue (load/install records) is parsed eagerly so the
        # initial populations are available before iteration; the stream
        # body stays lazy.
        self._body_offset = 0
        with self.path.open("r", encoding="utf-8") as fh:
            while True:
                line = fh.readline()
                if not line:
                    break
                record = json.loads(line)
                kind = record["kind"]
                if kind == "load":
                    self._initial_objects[int(record["oid"])] = (
                        float(record["pos"][0]),
                        float(record["pos"][1]),
                    )
                elif kind == "install":
                    qid = int(record["qid"])
                    self._initial_queries[qid] = (
                        float(record["point"][0]),
                        float(record["point"][1]),
                    )
                    self._install_ks[qid] = int(record.get("k", 1))
                else:
                    break
                self._body_offset = fh.tell()

    def initial_objects(self) -> dict[int, Point]:
        return dict(self._initial_objects)

    def initial_queries(self) -> dict[int, Point]:
        return dict(self._initial_queries)

    def install_k(self, qid: int, default: int = 1) -> int:
        """``k`` recorded with an initial query installation."""
        return self._install_ks.get(qid, default)

    @staticmethod
    def _point(raw) -> Point | None:
        return None if raw is None else (float(raw[0]), float(raw[1]))

    def events(self) -> Iterator[FeedEvent]:
        with self.path.open("r", encoding="utf-8") as fh:
            fh.seek(self._body_offset)
            for line in fh:
                record = json.loads(line)
                kind = record["kind"]
                if kind == "obj":
                    yield ObjectUpdate(
                        int(record["oid"]),
                        self._point(record["old"]),
                        self._point(record["new"]),
                    )
                elif kind == "qry":
                    k_raw = record.get("k")
                    yield QueryUpdate(
                        int(record["qid"]),
                        QueryUpdateKind(record["op"]),
                        self._point(record.get("point")),
                        None if k_raw is None else int(k_raw),
                    )
                elif kind == "cycle":
                    yield CycleMark(int(record["t"]))
                elif kind in ("load", "install"):
                    raise ValueError(
                        f"{self.path}: {kind!r} record after the stream started"
                    )
                else:
                    raise ValueError(f"{self.path}: unknown record kind {kind!r}")


def write_jsonl_trace(
    path: str | Path, workload: Workload, *, default_k: int | None = None
) -> Path:
    """Record a materialized workload as a replayable JSONL trace.

    ``JsonlTraceFeed(path)`` then yields the byte-identical event stream
    of ``WorkloadFeed(workload)``.  ``default_k`` (defaulting to the
    workload spec's ``k``) is stamped onto the install records.
    """
    path = Path(path)
    k = workload.spec.k if default_k is None else default_k
    with path.open("w", encoding="utf-8") as fh:
        for oid, pos in workload.initial_objects.items():
            fh.write(
                json.dumps({"kind": "load", "oid": oid, "pos": list(pos)}) + "\n"
            )
        for qid, point in workload.initial_queries.items():
            fh.write(
                json.dumps(
                    {"kind": "install", "qid": qid, "point": list(point), "k": k}
                )
                + "\n"
            )
        for batch in workload.batches:
            for upd in batch.object_updates:
                fh.write(
                    json.dumps(
                        {
                            "kind": "obj",
                            "oid": upd.oid,
                            "old": None if upd.old is None else list(upd.old),
                            "new": None if upd.new is None else list(upd.new),
                        }
                    )
                    + "\n"
                )
            for qu in batch.query_updates:
                record = {"kind": "qry", "qid": qu.qid, "op": qu.kind.value}
                if qu.point is not None:
                    record["point"] = list(qu.point)
                if qu.k is not None:
                    record["k"] = qu.k
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps({"kind": "cycle", "t": batch.timestamp}) + "\n")
    return path


# ----------------------------------------------------------------------
# Socket sources (the wire-format ingestion path)
# ----------------------------------------------------------------------


class SocketFeed(UpdateFeed):
    """A live update source speaking the ndjson wire protocol.

    Reads frames (:mod:`repro.api.wire`) off a connected socket and
    yields the feed vocabulary: each ``updates`` frame's rows stream as
    :class:`repro.updates.ObjectUpdate`, ``query`` frames as
    :class:`repro.updates.QueryUpdate`, ``tick`` frames as
    :class:`CycleMark` (an unlabelled tick gets the running frame
    ordinal).  ``bye`` ends the feed.  ``hello``/``welcome`` frames are
    tolerated anywhere (so the feed can sit directly behind a
    :class:`repro.api.client.Client`-style producer); any other frame
    type raises.

    **Transport loss.**  Without a ``reconnect`` policy the old contract
    holds: the peer closing the connection ends the feed, a socket error
    propagates.  With a :class:`repro.api.retry.ReconnectPolicy` (and a
    dialable address — :meth:`connect` records one), EOF-without-``bye``
    and socket errors instead trigger a backoff redial: the iterator
    pauses, reconnects and resumes yielding off the fresh transport
    (``reconnects`` counts recoveries).  A ``bye`` stays final either
    way.  The producer owns resume semantics — frames in flight at the
    moment of loss are gone; a producer that must not lose events
    re-sends from its last cycle boundary.

    ``fault_hook(frame_seq) -> bool`` is the chaos-test seam: called
    after each decoded frame with its running ordinal (monotonic across
    reconnects); returning ``True`` cuts the feed's transport abruptly,
    simulating a network drop at that exact frame boundary (see
    :meth:`repro.testing.faults.FaultPlan.feed_hook`).

    Initial populations do not travel over the stream (monitors
    bulk-load them before updates start): pass them to the constructor
    when the driver should prime from this feed.
    """

    def __init__(
        self,
        sock,
        *,
        initial_objects: dict[int, Point] | None = None,
        initial_queries: dict[int, Point] | None = None,
        install_ks: dict[int, int] | None = None,
        reconnect: ReconnectPolicy | None = None,
        fault_hook: Callable[[int], bool] | None = None,
    ) -> None:
        self.sock = sock
        self._initial_objects = dict(initial_objects or {})
        self._initial_queries = dict(initial_queries or {})
        self._install_ks = dict(install_ks or {})
        self.reconnect = reconnect
        self.fault_hook = fault_hook
        #: successful transparent reconnects so far.
        self.reconnects = 0
        try:
            peer = sock.getpeername()
        except (OSError, AttributeError):
            # AttributeError: metadata-only feeds built without a socket.
            peer = None
        self._address = peer if peer else None

    @classmethod
    def connect(cls, host: str, port: int, *, timeout: float = 10.0, **kwargs):
        """Connect to a producer and wrap the socket."""
        sock = _socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        feed = cls(sock, **kwargs)
        feed._address = (host, port)
        return feed

    def initial_objects(self) -> dict[int, Point]:
        return dict(self._initial_objects)

    def initial_queries(self) -> dict[int, Point]:
        return dict(self._initial_queries)

    def install_k(self, qid: int, default: int = 1) -> int:
        return self._install_ks.get(qid, default)

    def close(self) -> None:
        # shutdown first: close() alone only drops a reference while an
        # events() reader holds the fd open via makefile — shutdown makes
        # the blocked read return EOF immediately.
        try:
            self.sock.shutdown(_socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def _redial(self) -> bool:
        """Backoff redial of the recorded address; True on success."""
        import time

        for delay in self.reconnect.delays():
            time.sleep(delay)
            try:
                sock = _socket.create_connection(
                    self._address, timeout=self.reconnect.connect_timeout
                )
            except OSError:
                continue
            sock.settimeout(None)
            old = self.sock
            self.sock = sock
            try:
                old.close()
            except OSError:
                pass
            self.reconnects += 1
            return True
        return False

    def events(self) -> Iterator[FeedEvent]:
        # Local import: the api package depends on repro.updates, not on
        # the ingest tier, so this direction stays cycle-free; importing
        # lazily keeps plain workload feeds free of the wire module.
        from repro.api import wire

        marks = 0
        frame_seq = 0
        while True:
            reader = self.sock.makefile("r", encoding="utf-8", newline="\n")
            failure: BaseException | None = None
            try:
                while True:
                    try:
                        line = reader.readline()
                    except (OSError, ValueError) as exc:
                        # ValueError: reading a file object whose socket
                        # an injected fault closed under it.
                        failure = exc
                        break
                    if not line:
                        break  # EOF without bye
                    line = line.strip()
                    if not line:
                        continue
                    frame = wire.decode_frame(line)
                    kind = type(frame)
                    if kind is wire.Updates:
                        yield from frame.updates
                    elif kind is wire.QueryOp:
                        yield frame.update
                    elif kind is wire.Tick:
                        t = (
                            frame.timestamp
                            if frame.timestamp is not None
                            else marks
                        )
                        marks += 1
                        yield CycleMark(t)
                    elif kind is wire.Bye:
                        return
                    elif kind in (wire.Hello, wire.Welcome):
                        pass
                    else:
                        raise ValueError(
                            f"frame type {kind.__name__!r} is not part of "
                            "the ingestion stream vocabulary"
                        )
                    if self.fault_hook is not None and self.fault_hook(
                        frame_seq
                    ):
                        # Injected transport loss at this frame boundary.
                        self.close()
                    frame_seq += 1
            finally:
                try:
                    reader.close()
                except (OSError, ValueError):
                    pass
            # The connection was lost (EOF without bye, or a socket
            # error): redial when a policy allows it.
            if self.reconnect is None or self._address is None:
                if failure is not None:
                    raise failure
                return  # silent peer close ends an un-policied feed
            if not self._redial():
                raise ConnectionError(
                    "feed transport lost and reconnect attempts exhausted"
                ) from failure


def push_feed_to_socket(feed: UpdateFeed, sock, *, updates_per_frame: int = 256) -> None:
    """Stream a feed's events to a socket as wire frames (the producer
    half of :class:`SocketFeed`; used by tests and demos).

    Object updates are packed ``updates_per_frame`` to an ``updates``
    frame (flushed at every cycle boundary), query updates and cycle
    marks are sent as they come, and the stream ends with ``bye``.

    Pending updates accumulate in the buffer-backed columns of a
    :class:`repro.updates.FlatUpdateBatch` and each frame is encoded
    straight from those columns (``wire.encode_updates_flat``) — same
    bytes on the wire as packing :class:`Updates` row objects, without
    materializing them.
    """
    from repro.api import wire
    from repro.updates import FlatUpdateBatch

    pending = FlatUpdateBatch(timestamp=0)

    def send_line(line: str) -> None:
        sock.sendall((line + "\n").encode("utf-8"))

    def send(frame) -> None:
        send_line(wire.encode_frame(frame))

    def flush() -> None:
        nonlocal pending
        if len(pending):
            send_line(wire.encode_updates_flat(pending))
            pending = FlatUpdateBatch(timestamp=0)

    for event in feed.events():
        if type(event) is CycleMark:
            flush()
            send(wire.Tick(timestamp=event.timestamp))
        elif type(event) is QueryUpdate:
            flush()
            send(wire.QueryOp(update=event))
        else:
            old = event.old
            new = event.new
            if old is None:
                pending.append_appear(event.oid, new[0], new[1])
            elif new is None:
                pending.append_disappear(event.oid, old[0], old[1])
            else:
                pending.append_move(event.oid, old[0], old[1], new[0], new[1])
            if len(pending) >= updates_per_frame:
                flush()
    flush()
    send(wire.Bye())
