"""The cycle batcher: drained buffer state -> columnar update batch.

The buffer stages *target* positions (latest known per object); the
monitors consume *transitions* ``<oid, old, new>`` whose ``old`` must be
exactly the previously applied position (the grid deletes by position,
``Workload.validate`` documents the same contract).  The batcher closes
that gap: it keeps a shadow table of every position the monitor has been
shown and re-bases each drained target against it —

* unknown object with a target position → appearance;
* known object with ``target is None`` → disappearance;
* known object with a *different* target → movement from the applied
  position (NOT from whatever ``old`` the feed once carried: coalescing
  and drops may have skipped intermediate hops);
* known object with the *same* target (or unknown and off-line, the
  appear-then-disappear annihilation) → no-op, emitted nowhere.

Because ``old`` always comes from the shadow table, any re-cutting of
cycles — coalescing, drops, deadline flushes mid-timestamp — still yields
a stream every monitor accepts, and an offline replay of the assembled
batches reproduces the exact same end state.

The assembled batches are buffer-backed (``FlatUpdateBatch`` columns are
``array``/``bytearray``), so downstream consumers — ``process_flat``,
the shared-memory shard transport, ``wire.encode_updates_flat`` — read
the rows without any further conversion.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.points import Point
from repro.updates import FlatUpdateBatch, QueryUpdate


class CycleBatcher:
    """Stateful assembler of :class:`repro.updates.FlatUpdateBatch`."""

    def __init__(self) -> None:
        #: oid -> position as last shown to the monitor (the shadow table).
        self.positions: dict[int, Point] = {}

    def prime(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Seed the shadow table with the bulk-loaded initial population."""
        self.positions.update(objects)

    def assemble(
        self,
        object_targets: Sequence[tuple[int, Point | None]],
        query_updates: Sequence[QueryUpdate] = (),
        timestamp: int = 0,
    ) -> tuple[FlatUpdateBatch, int]:
        """Build one columnar batch; returns ``(batch, n_noops)``.

        Commits the shadow table as it goes — callers apply the batch to
        the monitor immediately (the driver does), keeping both in step.
        """
        positions = self.positions
        batch = FlatUpdateBatch(
            timestamp=timestamp, query_updates=tuple(query_updates)
        )
        noops = 0
        for oid, target in object_targets:
            old = positions.get(oid)
            if target is None:
                if old is None:
                    # Appeared and disappeared entirely within the buffer.
                    noops += 1
                    continue
                batch.append_disappear(oid, old[0], old[1])
                del positions[oid]
            elif old is None:
                batch.append_appear(oid, target[0], target[1])
                positions[oid] = target
            elif old == target:
                noops += 1
            else:
                batch.append_move(oid, old[0], old[1], target[0], target[1])
                positions[oid] = target
        return batch, noops
