"""The bounded ingest buffer: where back-pressure lives.

Between a feed that produces updates at its own pace and a monitor that
consumes them in cycles sits one bounded structure.  Its key invariant is
*last-write-wins per object*: the buffer keys pending work by object id
and keeps only the latest target position — semantics-preserving for
per-cycle monitoring, because a cycle only ever applies an object's final
position anyway (intermediate positions within one cycle are unobservable
by construction; the coalescing-correctness tests pin this).

Capacity bounds the number of *distinct pending objects*.  When a new
object arrives at a full buffer, the :class:`BackPressurePolicy` decides:

* ``BLOCK`` — the producer waits until the consumer drains (classic
  back-pressure; needs the producer on its own thread);
* ``DROP_OLDEST`` — the stalest pending object's update is shed.  Safe
  under the target-state model: the dropped object simply keeps its
  last *applied* position until a newer update arrives, at which point the
  batcher (:mod:`repro.ingest.batcher`) re-bases the move off the applied
  position — the stream stays consistent, it just loses freshness.

Query updates ride in a side FIFO, uncoalesced and unbounded: they are
orders of magnitude rarer than object updates and each one changes
monitor state (terminate/move/insert are not idempotent).

All operations are thread-safe; one lock guards both directions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum

from repro.geometry.points import Point
from repro.updates import ObjectUpdate, QueryUpdate


class BackPressurePolicy(Enum):
    """What :meth:`IngestBuffer.offer` does when the buffer is full."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"


@dataclass(slots=True)
class BufferCounters:
    """Monotonic ingest accounting (deltas reported per drained cycle)."""

    #: object updates offered (accepted, coalesced, dropped or rejected).
    offered: int = 0
    #: offers that collapsed into an already-pending object (last-write-wins).
    coalesced: int = 0
    #: pending objects evicted by the DROP_OLDEST policy.
    dropped: int = 0
    #: times a producer had to wait on a full buffer (BLOCK policy).
    blocked: int = 0
    #: offers that timed out waiting (BLOCK policy with a timeout).
    rejected: int = 0
    #: query updates offered.
    query_offered: int = 0

    def snapshot(self) -> "BufferCounters":
        return BufferCounters(
            offered=self.offered,
            coalesced=self.coalesced,
            dropped=self.dropped,
            blocked=self.blocked,
            rejected=self.rejected,
            query_offered=self.query_offered,
        )

    def delta(self, since: "BufferCounters") -> "BufferCounters":
        return BufferCounters(
            offered=self.offered - since.offered,
            coalesced=self.coalesced - since.coalesced,
            dropped=self.dropped - since.dropped,
            blocked=self.blocked - since.blocked,
            rejected=self.rejected - since.rejected,
            query_offered=self.query_offered - since.query_offered,
        )


@dataclass(slots=True)
class DrainedCycle:
    """One drain's worth of buffered work plus the accounting delta."""

    #: ``(oid, target)`` pairs in first-arrival order; ``target is None``
    #: means the object's latest known state is *off-line* (disappear).
    object_targets: list[tuple[int, Point | None]] = field(default_factory=list)
    query_updates: list[QueryUpdate] = field(default_factory=list)
    counters: BufferCounters = field(default_factory=BufferCounters)


class IngestBuffer:
    """Bounded, coalescing staging area between a feed and the batcher."""

    def __init__(
        self,
        capacity: int = 4096,
        policy: BackPressurePolicy = BackPressurePolicy.BLOCK,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy
        #: oid -> latest target position (None = off-line); insertion
        #: order is first-arrival order, which DROP_OLDEST evicts from.
        self._targets: dict[int, Point | None] = {}
        self._query_updates: list[QueryUpdate] = []
        self._cond = threading.Condition()
        self._counters = BufferCounters()
        self._drained = BufferCounters()  # counter values at the last drain
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def offer(self, update: ObjectUpdate, timeout: float | None = None) -> int:
        """Stage one object update.

        Returns the number of distinct objects staged after the offer
        (always >= 1, so truthy), or ``0`` on a BLOCK timeout — callers
        get the size-trigger check for free instead of re-locking for
        :attr:`pending`.

        Only the update's *target* (``new``, or off-line when ``new is
        None``) is staged — the authoritative old position is re-based by
        the batcher against what the monitor actually saw, so coalescing
        and drops can never desynchronize the stream.
        """
        oid = update.oid
        target = update.new
        cond = self._cond
        counters = self._counters
        with cond:
            counters.offered += 1
            targets = self._targets
            if oid in targets:
                # Last write wins; the slot (and its arrival rank) is kept.
                targets[oid] = target
                counters.coalesced += 1
                cond.notify_all()
                return len(targets)
            while len(targets) >= self.capacity:
                if self.policy is BackPressurePolicy.DROP_OLDEST:
                    stalest = next(iter(targets))
                    del targets[stalest]
                    counters.dropped += 1
                    break
                if self._closed:
                    # Nobody will drain a closed buffer: waiting would
                    # hang the producer forever.  Reject instead.
                    counters.rejected += 1
                    return 0
                counters.blocked += 1
                if not cond.wait(timeout):
                    counters.rejected += 1
                    return 0
            targets[oid] = target
            cond.notify_all()
            return len(targets)

    def try_offer(self, update: ObjectUpdate) -> int:
        """Non-blocking :meth:`offer` for the single-threaded pull loop.

        A full BLOCK buffer means "close the cycle", not "a producer had
        to wait" — so a declined update is *not* counted as offered,
        blocked or rejected (the caller re-offers it next cycle, where it
        counts exactly once).  Returns the staged count, or ``0`` when
        the update could not be staged.
        """
        oid = update.oid
        target = update.new
        counters = self._counters
        with self._cond:
            targets = self._targets
            if oid in targets:
                counters.offered += 1
                targets[oid] = target
                counters.coalesced += 1
                return len(targets)
            if len(targets) >= self.capacity:
                if self.policy is not BackPressurePolicy.DROP_OLDEST:
                    return 0
                stalest = next(iter(targets))
                del targets[stalest]
                counters.dropped += 1
            counters.offered += 1
            targets[oid] = target
            return len(targets)

    def offer_query(self, update: QueryUpdate) -> None:
        """Stage one query update (FIFO, never coalesced or dropped)."""
        with self._cond:
            self._counters.query_offered += 1
            self._query_updates.append(update)
            self._cond.notify_all()

    def close(self) -> None:
        """Mark the producer finished; wakes any waiting consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Distinct objects currently staged."""
        with self._cond:
            return len(self._targets)

    @property
    def pending_queries(self) -> int:
        with self._cond:
            return len(self._query_updates)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def counters(self) -> BufferCounters:
        """Snapshot of the monotonic counters."""
        with self._cond:
            return self._counters.snapshot()

    def wait_for_work(
        self, count: int = 1, deadline: float | None = None, *, clock=None
    ) -> bool:
        """Block until ``count`` objects are staged, any query update is,
        the producer closed, or ``deadline`` (absolute, on ``clock``'s
        axis) passes.  Returns True when work or closure is available."""
        import time as _time

        clk = clock if clock is not None else _time.monotonic
        with self._cond:
            while True:
                if (
                    len(self._targets) >= count
                    or self._query_updates
                    or self._closed
                ):
                    return True
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - clk()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return bool(self._targets or self._query_updates)

    def wait(self, timeout: float) -> None:
        """Sleep on the buffer's condition for up to ``timeout`` seconds.

        Wakes early on any offer or on close — the building block of the
        driver's pure-deadline cadence (callers re-check their own clock
        after every wake; offers cause benign spurious wakeups).
        """
        with self._cond:
            if not self._closed:
                self._cond.wait(timeout)

    def drain(self, max_objects: int | None = None) -> DrainedCycle:
        """Remove staged work (first-arrival order) and report the
        accounting delta since the previous drain; wakes blocked
        producers."""
        with self._cond:
            targets = self._targets
            if max_objects is None or max_objects >= len(targets):
                object_targets = list(targets.items())
                targets.clear()
            else:
                object_targets = []
                for oid in list(targets)[:max_objects]:
                    object_targets.append((oid, targets.pop(oid)))
            query_updates = self._query_updates
            self._query_updates = []
            counters = self._counters.delta(self._drained)
            self._drained = self._counters.snapshot()
            self._cond.notify_all()
            return DrainedCycle(
                object_targets=object_targets,
                query_updates=query_updates,
                counters=counters,
            )
