"""Streaming update ingestion: feed -> buffer -> batcher -> service.

The paper's input model is a continuous stream of location updates
processed in periodic cycles; the rest of the library replays
pre-materialized workloads.  This package is the tier in between — it
turns a live (or replayed) update feed into the per-cycle batches a
:class:`repro.service.service.MonitoringService` consumes:

* :mod:`repro.ingest.feeds` — update sources (:class:`UpdateFeed`):
  materialized workloads, live generator-backed feeds, JSONL traces and
  wire-protocol sockets (:class:`SocketFeed`, speaking the
  :mod:`repro.api.wire` ndjson frames);
* :mod:`repro.ingest.buffer` — the bounded :class:`IngestBuffer` with
  explicit back-pressure (block / drop-oldest) and last-write-wins
  coalescing per object;
* :mod:`repro.ingest.batcher` — the :class:`CycleBatcher` re-basing
  buffered target positions into consistent columnar
  :class:`repro.updates.FlatUpdateBatch` transitions;
* :mod:`repro.ingest.driver` — the :class:`IngestDriver` pumping the
  pipeline on cycle deadlines/batch-size triggers (optionally on a
  background thread) and reporting per-cycle ingest stats.
"""

from repro.ingest.batcher import CycleBatcher
from repro.ingest.buffer import (
    BackPressurePolicy,
    BufferCounters,
    DrainedCycle,
    IngestBuffer,
)
from repro.ingest.driver import (
    CycleIngestStats,
    IngestDriver,
    IngestReport,
    ThreadedFeedPump,
)
from repro.ingest.feeds import (
    CycleMark,
    GeneratorFeed,
    JsonlTraceFeed,
    SocketFeed,
    UpdateFeed,
    WorkloadFeed,
    push_feed_to_socket,
    write_jsonl_trace,
)

__all__ = [
    "BackPressurePolicy",
    "BufferCounters",
    "CycleBatcher",
    "CycleIngestStats",
    "CycleMark",
    "DrainedCycle",
    "GeneratorFeed",
    "IngestBuffer",
    "IngestDriver",
    "IngestReport",
    "JsonlTraceFeed",
    "SocketFeed",
    "ThreadedFeedPump",
    "UpdateFeed",
    "WorkloadFeed",
    "push_feed_to_socket",
    "write_jsonl_trace",
]
