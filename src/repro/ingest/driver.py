"""The ingest driver: feed -> buffer -> batcher -> monitoring service.

One :class:`IngestDriver` owns the whole pipeline and pumps it cycle by
cycle.  A cycle closes on the first of three triggers:

* **mark** — the feed emitted a :class:`repro.ingest.feeds.CycleMark` and
  the driver honors source cycles (deterministic replay: the resulting
  stream of batches — and therefore every deterministic counter — is
  byte-identical to a plain workload replay);
* **size** — ``max_batch`` distinct objects are staged;
* **deadline** — ``cycle_deadline`` seconds elapsed since the cycle
  started (real-time operation; a feed that outruns the deadline shows up
  as coalesced/dropped counts in the stats, not as an error).

Each closed cycle drains the buffer, assembles one columnar
:class:`repro.updates.FlatUpdateBatch` (or a row batch with
``flat=False``) and hands it to
:meth:`repro.service.service.MonitoringService.tick_report`; the per-cycle
:class:`CycleIngestStats` aggregates into an :class:`IngestReport`.

Two source modes:

* **pull** (default) — the driver iterates the feed itself, applying
  back-pressure implicitly (it simply stops pulling while it processes);
* **buffered** — a :class:`ThreadedFeedPump` pushes the feed into the
  buffer from its own thread while the driver drains on its own cadence;
  this is where the buffer's BLOCK/DROP_OLDEST policies do real work.

``start()`` runs the pump loop on a background thread for interactive
deployments; ``run()`` drives it synchronously.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.ingest.batcher import CycleBatcher
from repro.ingest.buffer import BackPressurePolicy, IngestBuffer
from repro.ingest.feeds import CycleMark, FeedEvent, UpdateFeed
from repro.obs.health import (
    AlertEvent,
    HealthMonitor,
    HealthPolicy,
    HealthSample,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecorder
from repro.service.service import MonitoringService
from repro.updates import FlatUpdateBatch, ObjectUpdate, QueryUpdate


@dataclass(slots=True)
class CycleIngestStats:
    """Ingest-side accounting of one driven cycle."""

    #: driver cycle ordinal (0-based).
    cycle: int
    #: cycle label: the honored mark's timestamp, else the ordinal.
    timestamp: int
    #: what closed the cycle: "mark" | "size" | "deadline" | "drain"
    #: (buffered mode woke with work but no configured trigger fired) |
    #: "end" (feed exhausted).
    trigger: str
    #: object updates offered by the feed during this cycle.
    offered: int
    #: offers coalesced into a pending object (last-write-wins).
    coalesced: int
    #: pending objects shed by DROP_OLDEST back-pressure.
    dropped: int
    #: producer waits on a full buffer (BLOCK back-pressure).
    blocked: int
    #: rows in the applied batch.
    applied: int
    #: drained targets that assembled to nothing (unchanged position or
    #: in-buffer appear/disappear annihilation).
    noops: int
    query_updates: int
    #: queries whose result changed.
    changed: int
    #: the cycle missed its cadence: an early-triggered (mark/size/drain)
    #: cycle failed to finish within one deadline period, or a
    #: deadline-triggered cycle's post-trigger work (drain + assemble +
    #: tick) consumed more than a further full period.  (A
    #: deadline-triggered cycle necessarily *ends* past the deadline, so
    #: raw elapsed time would flag every one of them and carry no signal.)
    deadline_overrun: bool
    #: wall-clock spent pulling/draining/assembling.
    ingest_sec: float
    #: wall-clock spent inside the service tick (monitor processing plus
    #: delta diffing plus, when streaming, the subscriber fan-out — the
    #: sum of ``TickReport.process_sec`` and ``TickReport.publish_sec``).
    process_sec: float


@dataclass(slots=True)
class IngestReport:
    """Aggregated stats of one driver run."""

    cycles: list[CycleIngestStats] = field(default_factory=list)
    #: the run died on an exception (feed/service failure, or a *hard*
    #: health violation — a :class:`repro.obs.health.HealthError`)
    #: instead of ending; ``error`` carries its repr.  A background run
    #: records the failure here and :meth:`IngestDriver.stop` re-raises
    #: it.
    failed: bool = False
    error: str | None = None
    #: soft health alerts emitted during the run (``health`` attached).
    alerts: list[AlertEvent] = field(default_factory=list)
    #: cross-partition traffic counters when the monitor is partitioned
    #: (:meth:`repro.service.partition.PartitionedMonitor.partition_stats`,
    #: snapshotted at the end of the run), else ``None``.
    partition: dict[str, int] | None = None

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def total_offered(self) -> int:
        return sum(c.offered for c in self.cycles)

    @property
    def total_applied(self) -> int:
        return sum(c.applied for c in self.cycles)

    @property
    def total_coalesced(self) -> int:
        return sum(c.coalesced for c in self.cycles)

    @property
    def total_dropped(self) -> int:
        return sum(c.dropped for c in self.cycles)

    @property
    def total_changed(self) -> int:
        return sum(c.changed for c in self.cycles)

    @property
    def deadline_overruns(self) -> int:
        return sum(1 for c in self.cycles if c.deadline_overrun)

    @property
    def total_ingest_sec(self) -> float:
        return sum(c.ingest_sec for c in self.cycles)

    @property
    def total_process_sec(self) -> float:
        return sum(c.process_sec for c in self.cycles)


_END = object()


class IngestDriver:
    """Pumps one feed through a buffer/batcher into a monitoring service.

    Args:
        feed: the update source.
        service: the service whose monitor consumes the cycles.
        buffer: staging buffer; a fresh unbounded-ish default otherwise.
        max_batch: close a cycle once this many distinct objects are
            staged (``None`` = no size trigger).
        cycle_deadline: close a cycle after this many seconds (``None`` =
            no deadline; required for byte-deterministic replay).
        honor_marks: close cycles on the feed's own :class:`CycleMark`
            boundaries (on by default; turn off to re-cut a marked feed
            purely by size/deadline).
        flat: hand the engines columnar batches (the fast path); with
            ``False`` each batch is converted to the row encoding first —
            same stream, used by the equivalence tests.
        record: keep every applied :class:`FlatUpdateBatch` in
            :attr:`recorded` (the offline-replay verification hook).
        clock: time source for deadlines (monotonic seconds); injectable
            for deterministic tests.
        on_cycle: optional per-cycle callback (stats dashboards).
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; the
            driver exports per-cycle counters (offered / coalesced /
            dropped / applied / changed / overruns), buffer occupancy
            and feed-staleness gauges, and phase-timing histograms.
            ``None`` (the default) leaves the hot path untouched.
        health: a :class:`repro.obs.health.HealthPolicy` (or a prebuilt
            :class:`~repro.obs.health.HealthMonitor`) evaluated on every
            cycle.  Hard violations raise through the pump loop (a
            background run surfaces them as ``report.failed``/``error``);
            soft alerts collect on ``report.alerts``.
        on_alert: callback for soft alerts (wire export hooks in the
            socket server); implies nothing without ``health``.
        fault_hook: test seam called with the cycle ordinal at the start
            of every cycle (:meth:`repro.testing.faults.FaultPlan.ingest_hook`).
        queue_depth_probe / reconnect_probe: optional callables sampled
            into the cycle's :class:`~repro.obs.health.HealthSample`
            (outbound fan-out depth, cumulative transport reconnects) —
            how downstream tiers feed the health rules.
    """

    def __init__(
        self,
        feed: UpdateFeed,
        service: MonitoringService,
        *,
        buffer: IngestBuffer | None = None,
        max_batch: int | None = None,
        cycle_deadline: float | None = None,
        honor_marks: bool = True,
        flat: bool = True,
        record: bool = False,
        clock: Callable[[], float] = time.monotonic,
        on_cycle: Callable[[CycleIngestStats], None] | None = None,
        metrics: MetricsRegistry | None = None,
        health: HealthPolicy | HealthMonitor | None = None,
        on_alert: Callable[[AlertEvent], None] | None = None,
        fault_hook: Callable[[int], None] | None = None,
        queue_depth_probe: Callable[[], int] | None = None,
        reconnect_probe: Callable[[], int] | None = None,
    ) -> None:
        self.feed = feed
        self.service = service
        self.buffer = buffer if buffer is not None else IngestBuffer(
            capacity=1 << 20, policy=BackPressurePolicy.BLOCK
        )
        self.max_batch = max_batch
        self.cycle_deadline = cycle_deadline
        self.honor_marks = honor_marks
        self.flat = flat
        self.record = record
        self.clock = clock
        self.on_cycle = on_cycle
        self.batcher = CycleBatcher()
        self.report = IngestReport()
        #: applied columnar batches, when ``record`` is set.
        self.recorded: list[FlatUpdateBatch] = []
        self._events: Iterator[FeedEvent] | None = None
        #: pull-mode event that could not be staged (buffer full under
        #: BLOCK): retried at the start of the next cycle.
        self._carry: ObjectUpdate | None = None
        self._primed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: exception that killed a background run (re-raised by stop()).
        self.failure: BaseException | None = None
        self.fault_hook = fault_hook
        self._queue_depth_probe = queue_depth_probe
        self._reconnect_probe = reconnect_probe
        self.metrics = metrics
        if isinstance(health, HealthMonitor):
            self.health: HealthMonitor | None = health
        elif health is not None:
            self.health = HealthMonitor(
                health, registry=metrics, on_alert=on_alert
            )
        else:
            self.health = None
        #: monotonic clock reading of the last cycle that applied rows
        #: (feed freshness: staleness = clock() - this).
        self._last_apply_at: float | None = None
        if metrics is not None:
            self._spans = SpanRecorder(metrics)
            self._m = {
                name: metrics.counter(f"repro_ingest_{name}_total", help_text)
                for name, help_text in (
                    ("cycles", "Driver cycles completed."),
                    ("offered", "Object updates offered by the feed."),
                    ("coalesced", "Offers coalesced into pending objects."),
                    ("dropped", "Pending objects shed by DROP_OLDEST."),
                    ("applied", "Rows applied to the monitor."),
                    ("changed", "Query results changed."),
                    ("deadline_overruns", "Cycles that missed their cadence."),
                )
            }
            metrics.gauge_fn(
                "repro_ingest_buffer_pending",
                lambda: self.buffer.pending,
                "Object updates staged in the ingest buffer.",
            )
            metrics.gauge_fn(
                "repro_ingest_buffer_capacity",
                lambda: self.buffer.capacity,
                "Ingest buffer capacity.",
            )
            metrics.gauge_fn(
                "repro_ingest_feed_staleness_seconds",
                self._staleness,
                "Seconds since the last cycle that applied rows.",
            )
            self._g_timestamp = metrics.gauge(
                "repro_ingest_last_timestamp",
                "Cycle label of the newest applied batch (stream time).",
            )
        else:
            self._spans = None
            self._m = None
            self._g_timestamp = None

    def _staleness(self) -> float:
        if self._last_apply_at is None:
            return 0.0
        return self.clock() - self._last_apply_at

    # ------------------------------------------------------------------
    # Priming
    # ------------------------------------------------------------------

    def prime(self, k: int = 1) -> None:
        """Load the feed's initial populations into the service.

        Objects bulk-load (and seed the batcher's shadow table); queries
        install with ``k`` neighbors — a feed carrying per-query ``k``
        (see :meth:`UpdateFeed.install_k`, e.g. a recorded trace)
        overrides the argument.
        """
        if self._primed:
            raise RuntimeError("driver already primed")
        initial_objects = self.feed.initial_objects()
        if initial_objects:
            items = sorted(initial_objects.items())
            self.service.load_objects(items)
            self.batcher.prime(items)
        for qid, point in sorted(self.feed.initial_queries().items()):
            self.service.install_query(qid, point, self.feed.install_k(qid, k))
        self._primed = True

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------

    def _fill_from_feed(self, cycle_start: float) -> tuple[str, int | None]:
        """Pull feed events until a cycle trigger fires (pull mode).

        Returns ``(trigger, mark_timestamp)``.

        Offers never block here: the pull loop is the only thread that
        could drain the buffer, so a blocking offer on a full BLOCK
        buffer would deadlock.  A full buffer instead closes the cycle
        (trigger ``"size"``) and the unplaceable event is carried into
        the next cycle, which starts with a freshly drained buffer.
        """
        if self._events is None:
            self._events = self.feed.events()
        events = self._events
        buffer = self.buffer
        max_batch = self.max_batch
        deadline = self.cycle_deadline
        clock = self.clock
        if self._carry is not None:
            if not buffer.try_offer(self._carry):
                return "size", None
            self._carry = None
        while True:
            event = next(events, _END)
            if event is _END:
                return "end", None
            if type(event) is CycleMark:
                if self.honor_marks:
                    return "mark", event.timestamp
                continue
            if type(event) is ObjectUpdate:
                pending = buffer.try_offer(event)
                if not pending:
                    self._carry = event
                    return "size", None
                if max_batch is not None and pending >= max_batch:
                    return "size", None
            else:
                buffer.offer_query(event)
            if deadline is not None and clock() - cycle_start >= deadline:
                return "deadline", None

    def _wait_on_buffer(self, cycle_start: float) -> str:
        """Wait for staged work until a trigger fires (buffered mode)."""
        buffer = self.buffer
        clock = self.clock
        max_batch = self.max_batch
        deadline = (
            None
            if self.cycle_deadline is None
            else cycle_start + self.cycle_deadline
        )
        if deadline is not None:
            # Deadline cadence (optionally with a size trigger): keep
            # accumulating — query updates included — until the batch
            # fills, the deadline elapses, or the producer closes.
            # buffer.wait wakes on every offer; each wake just re-checks.
            while True:
                if max_batch is not None and buffer.pending >= max_batch:
                    return "size"
                if buffer.closed:
                    if not buffer.pending and not buffer.pending_queries:
                        return "end"
                    return "drain"
                remaining = deadline - clock()
                if remaining <= 0:
                    return "deadline"
                buffer.wait(remaining)
        if max_batch is not None:
            buffer.wait_for_work(count=max_batch, deadline=None, clock=clock)
            if buffer.pending >= max_batch:
                return "size"
            if buffer.closed and not buffer.pending and not buffer.pending_queries:
                return "end"
            # Woke early: producer closed with leftovers, or a query
            # update arrived (order-sensitive, flushed promptly when no
            # deadline bounds its latency).
            return "drain"
        # No triggers configured: one cycle per batch of whatever shows up.
        buffer.wait_for_work(count=1, deadline=None, clock=clock)
        if buffer.closed and not buffer.pending and not buffer.pending_queries:
            return "end"
        return "drain"

    def pump_cycle(self, *, from_buffer: bool = False) -> CycleIngestStats | None:
        """Drive one cycle; returns its stats, or ``None`` at stream end.

        ``from_buffer`` selects buffered mode (a producer thread owns the
        feed); the default pulls from the feed inline.
        """
        clock = self.clock
        ordinal = len(self.report.cycles)
        cycle_start = clock()
        if self.fault_hook is not None:
            self.fault_hook(ordinal)
        if from_buffer:
            trigger = self._wait_on_buffer(cycle_start)
            mark_ts = None
        else:
            trigger, mark_ts = self._fill_from_feed(cycle_start)
        trigger_elapsed = clock() - cycle_start
        drained = self.buffer.drain(self.max_batch)
        drain_done = clock()
        if trigger == "end" and not drained.object_targets and not drained.query_updates:
            return None
        timestamp = mark_ts if mark_ts is not None else ordinal
        batch, noops = self.batcher.assemble(
            drained.object_targets, drained.query_updates, timestamp
        )
        ingest_sec = clock() - cycle_start
        if self.record:
            self.recorded.append(batch)
        tick = self.service.tick_report(batch if self.flat else batch.to_batch())
        elapsed = clock() - cycle_start
        if self._spans is not None:
            self._spans.record("drain", drain_done - cycle_start)
            self._spans.record("assemble", ingest_sec - (drain_done - cycle_start))
            self._spans.record("process", tick.process_sec)
            self._spans.record("publish", tick.publish_sec)
        if self.cycle_deadline is None:
            overrun = False
        elif trigger == "deadline":
            # The fill/wait phase ends at the deadline by construction;
            # overrun means the post-trigger work alone ate a further
            # full period.
            overrun = (elapsed - trigger_elapsed) > self.cycle_deadline
        else:
            overrun = elapsed > self.cycle_deadline
        stats = CycleIngestStats(
            cycle=ordinal,
            timestamp=timestamp,
            trigger=trigger,
            offered=drained.counters.offered,
            coalesced=drained.counters.coalesced,
            dropped=drained.counters.dropped,
            blocked=drained.counters.blocked,
            applied=len(batch),
            noops=noops,
            query_updates=len(batch.query_updates),
            changed=len(tick.changed),
            deadline_overrun=overrun,
            ingest_sec=ingest_sec,
            process_sec=tick.process_sec + tick.publish_sec,
        )
        self.report.cycles.append(stats)
        if self._m is not None:
            self._observe_cycle(stats)
        if self.on_cycle is not None:
            self.on_cycle(stats)
        if self.health is not None:
            # After on_cycle: a hard violation propagates with the cycle
            # already recorded and reported.
            self.report.alerts.extend(
                self.health.observe(self._health_sample(stats))
            )
        return stats

    def _observe_cycle(self, stats: CycleIngestStats) -> None:
        counters = self._m
        counters["cycles"].inc()
        counters["offered"].inc(stats.offered)
        counters["coalesced"].inc(stats.coalesced)
        counters["dropped"].inc(stats.dropped)
        counters["applied"].inc(stats.applied)
        counters["changed"].inc(stats.changed)
        if stats.deadline_overrun:
            counters["deadline_overruns"].inc()
        if stats.applied or stats.query_updates:
            self._last_apply_at = self.clock()
            self._g_timestamp.set(stats.timestamp)

    def _health_sample(self, stats: CycleIngestStats) -> HealthSample:
        return HealthSample(
            cycle=stats.cycle,
            timestamp=float(stats.timestamp),
            trigger=stats.trigger,
            offered=stats.offered,
            coalesced=stats.coalesced,
            dropped=stats.dropped,
            applied=stats.applied,
            changed=stats.changed,
            deadline_overrun=stats.deadline_overrun,
            ingest_sec=stats.ingest_sec,
            process_sec=stats.process_sec,
            buffer_pending=self.buffer.pending,
            buffer_capacity=self.buffer.capacity,
            queue_depth=(
                0
                if self._queue_depth_probe is None
                else self._queue_depth_probe()
            ),
            reconnects=(
                0
                if self._reconnect_probe is None
                else self._reconnect_probe()
            ),
        )

    def run(
        self, max_cycles: int | None = None, *, from_buffer: bool = False
    ) -> IngestReport:
        """Pump cycles until the feed ends (or ``max_cycles``)."""
        while max_cycles is None or len(self.report.cycles) < max_cycles:
            if self._stop.is_set():
                break
            if self.pump_cycle(from_buffer=from_buffer) is None:
                break
        monitor = getattr(self.service, "monitor", None)
        partition_stats = getattr(monitor, "partition_stats", None)
        if partition_stats is not None:
            self.report.partition = dict(partition_stats())
        return self.report

    # ------------------------------------------------------------------
    # Background operation
    # ------------------------------------------------------------------

    def start(
        self, max_cycles: int | None = None, *, from_buffer: bool = False
    ) -> None:
        """Run the pump loop on a daemon thread (see :meth:`stop`)."""
        if self._thread is not None:
            raise RuntimeError("driver already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run_background,
            args=(max_cycles, from_buffer),
            name="ingest-driver",
            daemon=True,
        )
        self._thread.start()

    def _run_background(self, max_cycles: int | None, from_buffer: bool) -> None:
        """Thread body: a crash must not die silently — it is recorded on
        the report (``failed``/``error``) and re-raised by :meth:`stop`."""
        try:
            self.run(max_cycles, from_buffer=from_buffer)
        except BaseException as exc:  # noqa: BLE001 - surfaced via stop()
            self.failure = exc
            self.report.failed = True
            self.report.error = repr(exc)

    def stop(self, timeout: float | None = 5.0) -> IngestReport:
        """Signal the background loop to finish, join it, and re-raise
        the exception that killed it, if one did."""
        self._stop.set()
        self.buffer.close()  # wake a blocked consumer wait
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if self.failure is not None:
            failure, self.failure = self.failure, None
            raise failure
        return self.report


class ThreadedFeedPump:
    """Producer thread pushing a feed into an :class:`IngestBuffer`.

    The live half of buffered mode: cycle marks are ignored (the driver
    re-cuts cycles by size/deadline), object updates go through
    :meth:`IngestBuffer.offer` — so a full buffer exerts real
    back-pressure on this thread (BLOCK) or sheds stale positions
    (DROP_OLDEST).  ``events_per_cycle`` throttles the push rate for
    demos; ``None`` pushes as fast as the buffer accepts.
    """

    def __init__(
        self,
        feed: UpdateFeed,
        buffer: IngestBuffer,
        *,
        max_events: int | None = None,
        offer_timeout: float = 0.05,
    ) -> None:
        self.feed = feed
        self.buffer = buffer
        self.max_events = max_events
        self.offer_timeout = offer_timeout
        self.pushed = 0
        #: exception that killed the producer thread (re-raised by stop()).
        self.failure: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def _run(self) -> None:
        try:
            for event in self.feed.events():
                if self._stop.is_set():
                    break
                if self.max_events is not None and self.pushed >= self.max_events:
                    break
                if type(event) is CycleMark:
                    continue
                if type(event) is QueryUpdate:
                    self.buffer.offer_query(event)
                else:
                    while not self.buffer.offer(event, timeout=self.offer_timeout):
                        # A closed buffer rejects instantly (nobody will
                        # drain it again): retrying would spin forever.
                        if self._stop.is_set() or self.buffer.closed:
                            return
                self.pushed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced via stop()
            # A dying feed must not fail silently: record the reason —
            # the buffer close below still unblocks the consumer, which
            # otherwise would see a clean early end of stream.
            self.failure = exc
        finally:
            self.buffer.close()

    def start(self) -> "ThreadedFeedPump":
        if self._thread is not None:
            raise RuntimeError("pump already started")
        self._thread = threading.Thread(
            target=self._run, name="ingest-feed-pump", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Join the producer thread; re-raises the exception that killed
        it, if one did (a feed crash is an error, not an end-of-stream)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        if self.failure is not None:
            failure, self.failure = self.failure, None
            raise failure
