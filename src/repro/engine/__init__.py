"""Metrics collection for workload replay (system S11 of DESIGN.md).

The replay loop itself lives in :meth:`repro.api.session.Session.replay`
(one-shot: :func:`repro.api.session.replay_workload`); this package holds
the per-cycle/per-run measurement vocabulary it produces — cycle timing
and grid access counter snapshots, the two quantities the paper's
evaluation reports (CPU time and cell accesses).
"""

from repro.engine.metrics import CycleMetrics, RunReport

__all__ = ["CycleMetrics", "RunReport"]
