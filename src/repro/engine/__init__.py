"""Monitoring server and metrics collection (system S11 of DESIGN.md).

The engine replays a materialized workload into any
:class:`repro.monitor.ContinuousMonitor`, timing each processing cycle and
snapshotting the grid access counters — the two quantities the paper's
evaluation reports (CPU time and cell accesses).
"""

from repro.engine.metrics import CycleMetrics, RunReport
from repro.engine.server import MonitoringServer, run_workload

__all__ = ["CycleMetrics", "MonitoringServer", "RunReport", "run_workload"]
