"""Metrics collection for workload replay (system S11 of DESIGN.md).

The replay loop itself lives in :meth:`repro.api.session.Session.replay`
(one-shot: :func:`repro.api.session.replay_workload`); this package holds
the per-cycle/per-run measurement vocabulary it produces — cycle timing
and grid access counter snapshots, the two quantities the paper's
evaluation reports (CPU time and cell accesses).
"""

from repro.engine.metrics import CycleMetrics, RunReport

__all__ = ["CycleMetrics", "MonitoringServer", "RunReport", "run_workload"]


def __getattr__(name: str):
    # Deprecated replay shim, imported lazily so the warning only fires
    # for code that still reaches for it.
    if name in ("MonitoringServer", "run_workload"):
        from repro.engine import server as _server

        return getattr(_server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
