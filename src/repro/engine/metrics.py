"""Per-cycle and per-run metrics.

The paper's evaluation reports two primary quantities:

* **CPU time** per simulation (Figures 6.1, 6.2, 6.4, 6.5, 6.6 and 6.3a);
* **cell accesses per query per timestamp** (Figure 6.3b), where "a cell
  visit corresponds to a complete scan over the object list in the cell".

:class:`CycleMetrics` captures both per processing cycle;
:class:`RunReport` aggregates a full simulation and computes the derived
figures the experiment drivers print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grid.stats import GridStats


@dataclass(slots=True)
class CycleMetrics:
    """Measurements of one processing cycle (one timestamp)."""

    timestamp: int
    elapsed_sec: float
    stats: GridStats
    object_updates: int
    query_updates: int
    results_changed: int


@dataclass(slots=True)
class RunReport:
    """Aggregated measurements of one workload replay."""

    algorithm: str
    n_queries: int
    cycles: list[CycleMetrics] = field(default_factory=list)
    install_sec: float = 0.0
    install_stats: GridStats = field(default_factory=GridStats)

    @property
    def timestamps(self) -> int:
        return len(self.cycles)

    @property
    def total_processing_sec(self) -> float:
        """CPU time spent handling updates (excludes initial installation)."""
        return sum(c.elapsed_sec for c in self.cycles)

    @property
    def total_sec(self) -> float:
        """CPU time including the initial query installation."""
        return self.install_sec + self.total_processing_sec

    @property
    def total_cell_scans(self) -> int:
        return sum(c.stats.cell_scans for c in self.cycles)

    @property
    def total_objects_scanned(self) -> int:
        return sum(c.stats.objects_scanned for c in self.cycles)

    @property
    def total_results_changed(self) -> int:
        return sum(c.results_changed for c in self.cycles)

    @property
    def cell_accesses_per_query_per_timestamp(self) -> float:
        """The Figure 6.3b metric."""
        denom = self.n_queries * max(1, self.timestamps)
        if denom == 0:
            return 0.0
        return self.total_cell_scans / denom

    @property
    def mean_cycle_sec(self) -> float:
        if not self.cycles:
            return 0.0
        return self.total_processing_sec / len(self.cycles)

    def summary(self) -> dict[str, float]:
        """Flat summary used by the experiment reporting tables."""
        return {
            "cpu_sec": self.total_processing_sec,
            "cpu_total_sec": self.total_sec,
            "install_sec": self.install_sec,
            "cell_scans": float(self.total_cell_scans),
            "cell_accesses_per_query_per_ts": self.cell_accesses_per_query_per_timestamp,
            "objects_scanned": float(self.total_objects_scanned),
            "results_changed": float(self.total_results_changed),
        }
