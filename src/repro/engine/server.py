"""The legacy replay entry point — now a shim over the client API.

.. deprecated::
    :class:`MonitoringServer` predates the typed client surface.  New
    code drives :class:`repro.api.session.Session` directly (register
    specs, tick batches, subscribe per handle); the replay/measurement
    loop this class used to own lives in :meth:`Session.replay`, and the
    one-shot convenience is :func:`repro.api.session.replay_workload`.
    Every in-repo caller has been migrated; importing this module warns,
    and the shim will be removed in a future release.  The
    ``RunReport``/``CycleMetrics`` surface is unchanged.

Mirrors the paper's simulation loop: load the initial object population,
install the queries, then — for every timestamp — hand the cycle's object
and query updates to the monitoring algorithm, measure the processing time
with ``time.perf_counter`` and snapshot the grid counters.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable

warnings.warn(
    "repro.engine.server is deprecated: use repro.api.session.Session.replay "
    "(or the replay_workload convenience) instead of MonitoringServer/"
    "run_workload",
    DeprecationWarning,
    stacklevel=2,
)

from repro.api.session import Session
from repro.engine.metrics import CycleMetrics, RunReport
from repro.mobility.workload import Workload
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.service import MonitoringService


class MonitoringServer:
    """Drives one monitor over one workload (deprecated shim, see module
    docstring).

    Args:
        monitor: the algorithm under test.
        workload: the materialized update stream.
        collect_results: when true, every cycle's full result table is
            recorded (needed by the equivalence tests; costs memory).
        service: optional pre-built :class:`MonitoringService` wrapping
            ``monitor`` (to reuse an existing subscription hub); built on
            the fly otherwise.
    """

    def __init__(
        self,
        monitor: ContinuousMonitor,
        workload: Workload,
        *,
        collect_results: bool = False,
        service: MonitoringService | None = None,
    ) -> None:
        if service is None:
            service = MonitoringService(monitor)
        elif service.monitor is not monitor:
            raise ValueError("service wraps a different monitor instance")
        self.session = Session(service)
        self.service = service
        self.monitor = monitor
        self.workload = workload
        self.collect_results = collect_results
        #: per-cycle {qid: result} tables, when collect_results is set.
        self.result_log: list[dict[int, list[ResultEntry]]] = []

    def run(
        self,
        on_cycle: Callable[[CycleMetrics], None] | None = None,
    ) -> RunReport:
        """Replay the full workload; returns the aggregated report."""
        return self.session.replay(
            self.workload,
            collect_results=self.collect_results,
            on_cycle=on_cycle,
            result_log=self.result_log,
        )


def run_workload(
    monitor: ContinuousMonitor,
    workload: Workload,
    *,
    collect_results: bool = False,
) -> RunReport:
    """One-shot convenience wrapper around :class:`MonitoringServer`."""
    return MonitoringServer(
        monitor, workload, collect_results=collect_results
    ).run()
