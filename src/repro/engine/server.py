"""The central monitoring server: workload replay and measurement.

Mirrors the paper's simulation loop: load the initial object population,
install the queries, then — for every timestamp — hand the cycle's object
and query updates to the monitoring algorithm, measure the processing time
with ``time.perf_counter`` and snapshot the grid counters.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.engine.metrics import CycleMetrics, RunReport
from repro.mobility.workload import Workload
from repro.monitor import ContinuousMonitor, ResultEntry


class MonitoringServer:
    """Drives one monitor over one workload.

    Args:
        monitor: the algorithm under test.
        workload: the materialized update stream.
        collect_results: when true, every cycle's full result table is
            recorded (needed by the equivalence tests; costs memory).
    """

    def __init__(
        self,
        monitor: ContinuousMonitor,
        workload: Workload,
        *,
        collect_results: bool = False,
    ) -> None:
        self.monitor = monitor
        self.workload = workload
        self.collect_results = collect_results
        #: per-cycle {qid: result} tables, when collect_results is set.
        self.result_log: list[dict[int, list[ResultEntry]]] = []

    def run(
        self,
        on_cycle: Callable[[CycleMetrics], None] | None = None,
    ) -> RunReport:
        """Replay the full workload; returns the aggregated report."""
        monitor = self.monitor
        workload = self.workload
        report = RunReport(
            algorithm=monitor.name, n_queries=len(workload.initial_queries)
        )

        monitor.load_objects(workload.initial_objects.items())
        monitor.reset_stats()
        t0 = time.perf_counter()
        for qid, point in workload.initial_queries.items():
            monitor.install_query(qid, point, workload.spec.k)
        report.install_sec = time.perf_counter() - t0
        report.install_stats = monitor.stats.snapshot()

        if self.collect_results:
            self.result_log.append(self._snapshot_results())

        for batch in workload.batches:
            monitor.reset_stats()
            t0 = time.perf_counter()
            changed = monitor.process(batch.object_updates, batch.query_updates)
            elapsed = time.perf_counter() - t0
            metrics = CycleMetrics(
                timestamp=batch.timestamp,
                elapsed_sec=elapsed,
                stats=monitor.stats.snapshot(),
                object_updates=len(batch.object_updates),
                query_updates=len(batch.query_updates),
                results_changed=len(changed),
            )
            report.cycles.append(metrics)
            if self.collect_results:
                self.result_log.append(self._snapshot_results())
            if on_cycle is not None:
                on_cycle(metrics)
        return report

    def _snapshot_results(self) -> dict[int, list[ResultEntry]]:
        return {qid: self.monitor.result(qid) for qid in self.monitor.query_ids()}


def run_workload(
    monitor: ContinuousMonitor,
    workload: Workload,
    *,
    collect_results: bool = False,
) -> RunReport:
    """One-shot convenience wrapper around :class:`MonitoringServer`."""
    return MonitoringServer(
        monitor, workload, collect_results=collect_results
    ).run()
