"""The central monitoring server: workload replay and measurement.

Mirrors the paper's simulation loop: load the initial object population,
install the queries, then — for every timestamp — hand the cycle's object
and query updates to the monitoring algorithm, measure the processing time
with ``time.perf_counter`` and snapshot the grid counters.

Since the service-layer refactor the server is a thin adapter over
:class:`repro.service.service.MonitoringService`: replay drives the
service's ``tick`` so the same loop transparently feeds delta subscribers
(pass a service with a populated hub, or subscribe through
``server.service``), works against a sharded monitor, and still reports
the exact :class:`RunReport`/:class:`CycleMetrics` surface it always did.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.engine.metrics import CycleMetrics, RunReport
from repro.mobility.workload import Workload
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.service import MonitoringService


class MonitoringServer:
    """Drives one monitor over one workload.

    Args:
        monitor: the algorithm under test.
        workload: the materialized update stream.
        collect_results: when true, every cycle's full result table is
            recorded (needed by the equivalence tests; costs memory).
        service: optional pre-built :class:`MonitoringService` wrapping
            ``monitor`` (to reuse an existing subscription hub); built on
            the fly otherwise.
    """

    def __init__(
        self,
        monitor: ContinuousMonitor,
        workload: Workload,
        *,
        collect_results: bool = False,
        service: MonitoringService | None = None,
    ) -> None:
        if service is None:
            service = MonitoringService(monitor)
        elif service.monitor is not monitor:
            raise ValueError("service wraps a different monitor instance")
        self.service = service
        self.monitor = monitor
        self.workload = workload
        self.collect_results = collect_results
        #: per-cycle {qid: result} tables, when collect_results is set.
        self.result_log: list[dict[int, list[ResultEntry]]] = []

    def run(
        self,
        on_cycle: Callable[[CycleMetrics], None] | None = None,
    ) -> RunReport:
        """Replay the full workload; returns the aggregated report."""
        monitor = self.monitor
        service = self.service
        workload = self.workload
        report = RunReport(
            algorithm=monitor.name, n_queries=len(workload.initial_queries)
        )

        monitor.load_objects(workload.initial_objects.items())
        monitor.reset_stats()
        t0 = time.perf_counter()
        for qid, point in workload.initial_queries.items():
            service.install_query(qid, point, workload.spec.k)
        report.install_sec = time.perf_counter() - t0
        report.install_stats = monitor.stats.snapshot()

        if self.collect_results:
            self.result_log.append(monitor.result_table())

        for batch in workload.batches:
            monitor.reset_stats()
            t0 = time.perf_counter()
            changed = service.tick_batch(batch)
            elapsed = time.perf_counter() - t0
            metrics = CycleMetrics(
                timestamp=batch.timestamp,
                elapsed_sec=elapsed,
                stats=monitor.stats.snapshot(),
                object_updates=len(batch.object_updates),
                query_updates=len(batch.query_updates),
                results_changed=len(changed),
            )
            report.cycles.append(metrics)
            if self.collect_results:
                self.result_log.append(monitor.result_table())
            if on_cycle is not None:
                on_cycle(metrics)
        return report


def run_workload(
    monitor: ContinuousMonitor,
    workload: Workload,
    *,
    collect_results: bool = False,
) -> RunReport:
    """One-shot convenience wrapper around :class:`MonitoringServer`."""
    return MonitoringServer(
        monitor, workload, collect_results=collect_results
    ).run()
