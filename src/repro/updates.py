"""Update-stream vocabulary shared by monitors, the engine and the workload
generators.

The paper models the input as a stream of location updates: "An update from
object p is a tuple ``<p.id, x_old, y_old, x_new, y_new>``, implying that p
moves from ``(x_old, y_old)`` to ``(x_new, y_new)``" (Section 3).  We extend
the tuple with two boundary cases the evaluation needs:

* *appearance* — ``old is None`` (a Brinkhoff-style object enters the
  network at a node);
* *disappearance* — ``new is None`` (the object completes its path and goes
  off-line; Section 4.2 notes CPM "trivially deals with this situation by
  treating off-line NNs as outgoing ones").

Query updates follow Figure 3.9: a query may be ``insert``-ed, ``move``-d
(handled as a termination plus a re-insertion) or ``terminate``-d.

Two batch encodings coexist: the row-oriented :class:`UpdateBatch` (one
:class:`ObjectUpdate` dataclass per row — the vocabulary every monitor
accepts) and the columnar :class:`FlatUpdateBatch` (parallel
``oids``/``old_xs``/``old_ys``/``new_xs``/``new_ys`` arrays plus
appearance/disappearance masks — the ``process_flat`` hot path of the
ingestion tier).  Conversion between the two is lossless in both
directions.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.geometry.points import Point


@dataclass(frozen=True, slots=True)
class ObjectUpdate:
    """One object location update ``<oid, old, new>``.

    ``old is None`` means the object appears; ``new is None`` means it
    disappears.  Both being ``None`` is invalid.
    """

    oid: int
    old: Point | None
    new: Point | None

    def __post_init__(self) -> None:
        if self.old is None and self.new is None:
            raise ValueError(f"update for object {self.oid} carries no location")

    @property
    def is_appearance(self) -> bool:
        return self.old is None

    @property
    def is_disappearance(self) -> bool:
        return self.new is None


class QueryUpdateKind(Enum):
    """The three query-stream events of Figure 3.9."""

    INSERT = "insert"
    MOVE = "move"
    TERMINATE = "terminate"


@dataclass(frozen=True, slots=True)
class QueryUpdate:
    """One query update.

    ``point`` and ``k`` are required for ``INSERT`` and ``MOVE``; they are
    ignored for ``TERMINATE``.
    """

    qid: int
    kind: QueryUpdateKind
    point: Point | None = None
    k: int | None = None

    def __post_init__(self) -> None:
        if self.kind is not QueryUpdateKind.TERMINATE and self.point is None:
            raise ValueError(
                f"query update {self.qid}/{self.kind.value} requires a location"
            )


@dataclass(frozen=True, slots=True)
class UpdateBatch:
    """All updates arriving within one processing cycle (timestamp)."""

    timestamp: int
    object_updates: tuple[ObjectUpdate, ...] = field(default_factory=tuple)
    query_updates: tuple[QueryUpdate, ...] = field(default_factory=tuple)

    @property
    def size(self) -> int:
        return len(self.object_updates) + len(self.query_updates)


@dataclass(slots=True)
class FlatUpdateBatch:
    """Columnar (structure-of-arrays) encoding of one cycle's object updates.

    The row ``i`` encodes the tuple ``<oids[i], old_xs[i], old_ys[i],
    new_xs[i], new_ys[i]>`` of Section 3, with the two boundary cases
    carried as masks instead of ``None`` sentinels:

    * ``appear[i]`` — the object appears; ``old_xs[i]``/``old_ys[i]`` are
      meaningless placeholders (``0.0``);
    * ``disappear[i]`` — the object disappears; ``new_xs[i]``/``new_ys[i]``
      are placeholders.

    The layout exists for the update-handling hot path: a monitor's
    ``process_flat`` iterates the parallel columns with one ``zip`` —
    plain floats, no per-update dataclass attribute reads and no
    position-tuple indexing (see ``CPMMonitor.process_flat``).  Conversion
    to and from the :class:`ObjectUpdate` vocabulary is lossless
    (:meth:`from_updates` / :meth:`to_object_updates` round-trip
    byte-identically), so both representations describe the same stream.

    The columns are buffer-backed: ``oids`` is an ``array('q')``, the four
    coordinate columns are ``array('d')`` and the two masks are
    ``bytearray`` (one byte per row, 0/1).  Each column therefore exposes
    its raw bytes through the buffer protocol — :meth:`column_buffers` —
    which is what lets ``ProcessShardExecutor`` ship a batch to a shard as
    one ``multiprocessing.shared_memory`` block and the wire encoder read
    rows without building :class:`ObjectUpdate` objects.  The constructor
    coerces plain lists, so literal construction in tests keeps working.

    Query updates ride along untouched — they are orders of magnitude
    rarer than object updates and never hot.
    """

    timestamp: int
    oids: array = field(default_factory=lambda: array("q"))
    old_xs: array = field(default_factory=lambda: array("d"))
    old_ys: array = field(default_factory=lambda: array("d"))
    new_xs: array = field(default_factory=lambda: array("d"))
    new_ys: array = field(default_factory=lambda: array("d"))
    appear: bytearray = field(default_factory=bytearray)
    disappear: bytearray = field(default_factory=bytearray)
    query_updates: tuple[QueryUpdate, ...] = ()

    def __post_init__(self) -> None:
        if type(self.oids) is not array:
            self.oids = array("q", self.oids)
        for name in ("old_xs", "old_ys", "new_xs", "new_ys"):
            col = getattr(self, name)
            if type(col) is not array:
                setattr(self, name, array("d", col))
        for name in ("appear", "disappear"):
            col = getattr(self, name)
            if type(col) is not bytearray:
                setattr(self, name, bytearray(col))
        n = len(self.oids)
        for name in ("old_xs", "old_ys", "new_xs", "new_ys", "appear", "disappear"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name!r} holds {len(getattr(self, name))} rows, "
                    f"expected {n}"
                )

    def column_buffers(self) -> tuple[memoryview, ...]:
        """Raw little-endian byte views of the seven columns, in field
        order (``oids``, the four coordinate columns, the two masks).

        Zero-copy: the views alias the live column buffers, so they must
        not be held across appends (an append may realloc the backing
        buffer).
        """
        return (
            memoryview(self.oids).cast("B"),
            memoryview(self.old_xs).cast("B"),
            memoryview(self.old_ys).cast("B"),
            memoryview(self.new_xs).cast("B"),
            memoryview(self.new_ys).cast("B"),
            memoryview(self.appear),
            memoryview(self.disappear),
        )

    @classmethod
    def from_column_bytes(
        cls,
        n: int,
        buffer,
        timestamp: int = 0,
        query_updates: tuple[QueryUpdate, ...] = (),
    ) -> "FlatUpdateBatch":
        """Rebuild a batch from the packed column bytes of ``n`` rows.

        ``buffer`` holds the seven columns back to back in
        :meth:`column_buffers` order (``42 * n`` bytes: five 8-byte
        columns plus two 1-byte masks); this is the inverse of writing
        those views contiguously, e.g. into a shared-memory block.
        """
        view = memoryview(buffer)
        w = 8 * n
        cols = []
        off = 0
        for typecode in ("q", "d", "d", "d", "d"):
            col = array(typecode)
            col.frombytes(view[off : off + w])
            cols.append(col)
            off += w
        appear = bytearray(view[off : off + n])
        disappear = bytearray(view[off + n : off + 2 * n])
        return cls(
            timestamp,
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            cols[4],
            appear,
            disappear,
            query_updates,
        )

    def __len__(self) -> int:
        return len(self.oids)

    @property
    def size(self) -> int:
        """Total updates in the batch (mirrors :attr:`UpdateBatch.size`)."""
        return len(self.oids) + len(self.query_updates)

    def append_move(
        self, oid: int, old_x: float, old_y: float, new_x: float, new_y: float
    ) -> None:
        """Append a plain movement row."""
        self.oids.append(oid)
        self.old_xs.append(old_x)
        self.old_ys.append(old_y)
        self.new_xs.append(new_x)
        self.new_ys.append(new_y)
        self.appear.append(False)
        self.disappear.append(False)

    def append_appear(self, oid: int, x: float, y: float) -> None:
        """Append an appearance row (old columns hold placeholders)."""
        self.oids.append(oid)
        self.old_xs.append(0.0)
        self.old_ys.append(0.0)
        self.new_xs.append(x)
        self.new_ys.append(y)
        self.appear.append(True)
        self.disappear.append(False)

    def append_disappear(self, oid: int, x: float, y: float) -> None:
        """Append a disappearance row (new columns hold placeholders)."""
        self.oids.append(oid)
        self.old_xs.append(x)
        self.old_ys.append(y)
        self.new_xs.append(0.0)
        self.new_ys.append(0.0)
        self.appear.append(False)
        self.disappear.append(True)

    @classmethod
    def from_updates(
        cls,
        object_updates: Iterable[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
        timestamp: int = 0,
    ) -> "FlatUpdateBatch":
        """Columnarize a sequence of :class:`ObjectUpdate` rows."""
        batch = cls(timestamp=timestamp, query_updates=tuple(query_updates))
        for upd in object_updates:
            old = upd.old
            new = upd.new
            if old is None:
                batch.append_appear(upd.oid, new[0], new[1])
            elif new is None:
                batch.append_disappear(upd.oid, old[0], old[1])
            else:
                batch.append_move(upd.oid, old[0], old[1], new[0], new[1])
        return batch

    @classmethod
    def from_batch(cls, batch: UpdateBatch) -> "FlatUpdateBatch":
        """Columnarize a packaged :class:`UpdateBatch`."""
        return cls.from_updates(
            batch.object_updates, batch.query_updates, timestamp=batch.timestamp
        )

    def to_object_updates(self) -> tuple[ObjectUpdate, ...]:
        """Reconstruct the :class:`ObjectUpdate` rows (lossless)."""
        out: list[ObjectUpdate] = []
        append = out.append
        for oid, ox, oy, nx, ny, ap, dis in zip(
            self.oids,
            self.old_xs,
            self.old_ys,
            self.new_xs,
            self.new_ys,
            self.appear,
            self.disappear,
        ):
            if ap:
                append(ObjectUpdate(oid, None, (nx, ny)))
            elif dis:
                append(ObjectUpdate(oid, (ox, oy), None))
            else:
                append(ObjectUpdate(oid, (ox, oy), (nx, ny)))
        return tuple(out)

    def to_batch(self) -> UpdateBatch:
        """Reconstruct the packaged :class:`UpdateBatch` (lossless)."""
        return UpdateBatch(
            timestamp=self.timestamp,
            object_updates=self.to_object_updates(),
            query_updates=self.query_updates,
        )


def move_update(oid: int, old: Point, new: Point) -> ObjectUpdate:
    """Convenience constructor for a plain movement update."""
    return ObjectUpdate(oid=oid, old=old, new=new)


def appear_update(oid: int, position: Point) -> ObjectUpdate:
    """Convenience constructor for an appearance update."""
    return ObjectUpdate(oid=oid, old=None, new=position)


def disappear_update(oid: int, position: Point) -> ObjectUpdate:
    """Convenience constructor for a disappearance update."""
    return ObjectUpdate(oid=oid, old=position, new=None)
