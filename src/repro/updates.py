"""Update-stream vocabulary shared by monitors, the engine and the workload
generators.

The paper models the input as a stream of location updates: "An update from
object p is a tuple ``<p.id, x_old, y_old, x_new, y_new>``, implying that p
moves from ``(x_old, y_old)`` to ``(x_new, y_new)``" (Section 3).  We extend
the tuple with two boundary cases the evaluation needs:

* *appearance* — ``old is None`` (a Brinkhoff-style object enters the
  network at a node);
* *disappearance* — ``new is None`` (the object completes its path and goes
  off-line; Section 4.2 notes CPM "trivially deals with this situation by
  treating off-line NNs as outgoing ones").

Query updates follow Figure 3.9: a query may be ``insert``-ed, ``move``-d
(handled as a termination plus a re-insertion) or ``terminate``-d.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.geometry.points import Point


@dataclass(frozen=True, slots=True)
class ObjectUpdate:
    """One object location update ``<oid, old, new>``.

    ``old is None`` means the object appears; ``new is None`` means it
    disappears.  Both being ``None`` is invalid.
    """

    oid: int
    old: Point | None
    new: Point | None

    def __post_init__(self) -> None:
        if self.old is None and self.new is None:
            raise ValueError(f"update for object {self.oid} carries no location")

    @property
    def is_appearance(self) -> bool:
        return self.old is None

    @property
    def is_disappearance(self) -> bool:
        return self.new is None


class QueryUpdateKind(Enum):
    """The three query-stream events of Figure 3.9."""

    INSERT = "insert"
    MOVE = "move"
    TERMINATE = "terminate"


@dataclass(frozen=True, slots=True)
class QueryUpdate:
    """One query update.

    ``point`` and ``k`` are required for ``INSERT`` and ``MOVE``; they are
    ignored for ``TERMINATE``.
    """

    qid: int
    kind: QueryUpdateKind
    point: Point | None = None
    k: int | None = None

    def __post_init__(self) -> None:
        if self.kind is not QueryUpdateKind.TERMINATE and self.point is None:
            raise ValueError(
                f"query update {self.qid}/{self.kind.value} requires a location"
            )


@dataclass(frozen=True, slots=True)
class UpdateBatch:
    """All updates arriving within one processing cycle (timestamp)."""

    timestamp: int
    object_updates: tuple[ObjectUpdate, ...] = field(default_factory=tuple)
    query_updates: tuple[QueryUpdate, ...] = field(default_factory=tuple)

    @property
    def size(self) -> int:
        return len(self.object_updates) + len(self.query_updates)


def move_update(oid: int, old: Point, new: Point) -> ObjectUpdate:
    """Convenience constructor for a plain movement update."""
    return ObjectUpdate(oid=oid, old=old, new=new)


def appear_update(oid: int, position: Point) -> ObjectUpdate:
    """Convenience constructor for an appearance update."""
    return ObjectUpdate(oid=oid, old=None, new=position)


def disappear_update(oid: int, position: Point) -> ObjectUpdate:
    """Convenience constructor for a disappearance update."""
    return ObjectUpdate(oid=oid, old=position, new=None)
