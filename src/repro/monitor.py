"""Abstract interface shared by every continuous k-NN monitor.

CPM, YPK-CNN, SEA-CNN and the brute-force reference all implement
:class:`ContinuousMonitor`, so the replay engine
(:mod:`repro.engine.server`), the experiment drivers and the cross-algorithm
equivalence tests can treat them interchangeably.

Results are lists of ``(distance, object_id)`` pairs sorted ascending by
``(distance, object_id)``; ties on distance are broken by object id in every
implementation so identical inputs produce identical outputs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.geometry.points import Point
from repro.grid.stats import GridStats
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind, UpdateBatch

ResultEntry = tuple[float, int]


class ContinuousMonitor(ABC):
    """A continuous k-NN monitoring algorithm over moving 2D objects."""

    #: short algorithm name used in reports ("CPM", "YPK-CNN", ...).
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    @abstractmethod
    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Bulk-load the initial object population (before any query)."""

    @abstractmethod
    def object_position(self, oid: int) -> Point | None:
        """Current position of an object, or ``None`` when off-line."""

    @property
    @abstractmethod
    def object_count(self) -> int:
        """Number of objects currently on-line."""

    # ------------------------------------------------------------------
    # Query management
    # ------------------------------------------------------------------

    @abstractmethod
    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        """Register a point k-NN query and return its initial result."""

    @abstractmethod
    def remove_query(self, qid: int) -> None:
        """Terminate a query and drop all its book-keeping."""

    @abstractmethod
    def result(self, qid: int) -> list[ResultEntry]:
        """Current result of a registered query (ascending ``(dist, oid)``)."""

    @abstractmethod
    def query_ids(self) -> list[int]:
        """Ids of all currently registered queries."""

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    @abstractmethod
    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        """Process one cycle of updates; returns ids of queries whose result
        changed (including newly inserted and moved queries)."""

    def process_batch(self, batch: UpdateBatch) -> set[int]:
        """Process a packaged :class:`repro.updates.UpdateBatch`."""
        return self.process(batch.object_updates, batch.query_updates)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def stats(self) -> GridStats:
        """Grid access counters (cell scans etc.) for the current run."""

    def reset_stats(self) -> None:
        """Zero the access counters (the engine calls this between cycles)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def apply_query_update(self, update: QueryUpdate) -> None:
        """Default query-update dispatch used by implementations.

        Figure 3.9 treats a moving query as a termination followed by an
        insertion at the new location.
        """
        if update.kind is QueryUpdateKind.TERMINATE:
            self.remove_query(update.qid)
            return
        if update.kind is QueryUpdateKind.MOVE:
            self.remove_query(update.qid)
        assert update.point is not None
        self.install_query(update.qid, update.point, update.k or 1)
