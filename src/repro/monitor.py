"""Abstract interface shared by every continuous k-NN monitor.

CPM, YPK-CNN, SEA-CNN and the brute-force reference all implement
:class:`ContinuousMonitor`, so the replay loop
(:meth:`repro.api.session.Session.replay`), the experiment drivers and the
cross-algorithm equivalence tests can treat them interchangeably.

Results are lists of ``(distance, object_id)`` pairs sorted ascending by
``(distance, object_id)``; ties on distance are broken by object id in every
implementation so identical inputs produce identical outputs.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.geometry.points import Point
from repro.grid.stats import GridStats
from repro.service.deltas import ResultDelta, diff_results
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    UpdateBatch,
)

ResultEntry = tuple[float, int]


@dataclass(slots=True)
class QueryRecord:
    """One installed query, reduced to its installation parameters.

    Exactly one of ``point`` (plain point k-NN) or ``strategy`` (any
    strategy-backed query: constrained, range, aggregate, filtered) is
    set.  Strategies are engine-state-free by contract (the filtered tag
    table is rebound at install), so a record re-installs cleanly on a
    fresh engine.
    """

    qid: int
    k: int
    point: Point | None = None
    strategy: object | None = None


@dataclass(slots=True)
class MonitorState:
    """Picklable logical state of a monitor (see :meth:`capture_state`).

    Holds everything needed to rebuild an engine that *answers
    identically*: object positions, attribute tags, installed queries (in
    installation order) and the access-counter totals.  It deliberately
    excludes search bookkeeping (visit lists, heaps, influence marks) —
    that state is reconstructed by re-running the installation searches.
    """

    name: str
    objects: list[tuple[int, Point]] = field(default_factory=list)
    tags: dict[int, frozenset[str]] = field(default_factory=dict)
    queries: list[QueryRecord] = field(default_factory=list)
    stats: GridStats = field(default_factory=GridStats)


class ContinuousMonitor(ABC):
    """A continuous k-NN monitoring algorithm over moving 2D objects."""

    #: short algorithm name used in reports ("CPM", "YPK-CNN", ...).
    name: str = "abstract"

    #: lazily created ``oid -> frozenset(tags)`` table backing filtered
    #: queries (:class:`repro.core.strategies.FilteredStrategy`); shared
    #: by reference with every installed filter strategy.
    _object_tags: dict[int, frozenset[str]] | None = None

    # ------------------------------------------------------------------
    # Object attributes (filtered-subscription support)
    # ------------------------------------------------------------------

    @property
    def tag_table(self) -> dict[int, frozenset[str]]:
        """The live ``oid -> tags`` table (created on first touch)."""
        if self._object_tags is None:
            self._object_tags = {}
        return self._object_tags

    def set_object_tags(self, tags: dict[int, Iterable[str]]) -> None:
        """Merge attribute tags into the object tag table.

        An empty (or ``None``) tag set removes the object's entry.  Tag
        changes are visible to filtered queries from the next cycle that
        *touches* the object — a pure tag change does not itself
        re-evaluate results; pair it with a disappear+appear update when
        immediate re-evaluation is required.
        """
        table = self.tag_table
        for oid, tag_set in tags.items():
            if tag_set:
                table[int(oid)] = frozenset(str(t) for t in tag_set)
            else:
                table.pop(int(oid), None)

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    @abstractmethod
    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Bulk-load the initial object population (before any query)."""

    @abstractmethod
    def object_position(self, oid: int) -> Point | None:
        """Current position of an object, or ``None`` when off-line."""

    @property
    @abstractmethod
    def object_count(self) -> int:
        """Number of objects currently on-line."""

    # ------------------------------------------------------------------
    # Query management
    # ------------------------------------------------------------------

    @abstractmethod
    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        """Register a point k-NN query and return its initial result."""

    @abstractmethod
    def remove_query(self, qid: int) -> None:
        """Terminate a query and drop all its book-keeping."""

    @abstractmethod
    def result(self, qid: int) -> list[ResultEntry]:
        """Current result of a registered query (ascending ``(dist, oid)``)."""

    @abstractmethod
    def query_ids(self) -> list[int]:
        """Ids of all currently registered queries."""

    def result_table(self) -> dict[int, list[ResultEntry]]:
        """Full ``{qid: result}`` snapshot of every registered query."""
        return {qid: self.result(qid) for qid in self.query_ids()}

    def iter_objects(self) -> Iterable[tuple[int, Point]]:
        """Ascending-oid iteration of the live ``(oid, position)`` pairs.

        Feeds the wire cold-start (``sync`` with an object prologue).
        This base implementation reads the ``_positions`` side table every
        built-in baseline keeps; monitors with a different object store
        (CPM reads positions back through its cell columns) override it.
        """
        positions = getattr(self, "_positions", None)
        if positions is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not enumerate its objects"
            )
        for oid in sorted(positions):
            yield oid, positions[oid]

    # ------------------------------------------------------------------
    # State capture (fault-tolerant rebuild support)
    # ------------------------------------------------------------------

    def _query_records(self) -> list[QueryRecord]:
        """Installed queries as :class:`QueryRecord`, in install order.

        Engines that support :meth:`capture_state` implement this hook;
        the base implementation refuses so capture never silently drops
        queries on an engine that keeps them elsewhere.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not enumerate its queries for capture"
        )

    def capture_state(self) -> MonitorState:
        """Snapshot the logical engine state into a :class:`MonitorState`.

        The snapshot is detached through a pickle round-trip so it shares
        no mutable structures (tag tables, strategies) with the live
        engine — it can outlive the engine, travel over a pipe, or seed a
        replacement while the original keeps running.
        """
        state = MonitorState(
            name=self.name,
            objects=list(self.iter_objects()),
            tags=dict(self._object_tags or {}),
            queries=self._query_records(),
            stats=self.stats.snapshot(),
        )
        return pickle.loads(pickle.dumps(state))

    def restore_state(self, state: MonitorState) -> None:
        """Rebuild a **fresh** engine from a captured snapshot.

        Loads the objects, replays the tag table, re-installs every query
        in its original order, then restores the access-counter totals so
        the rebuild's own search traffic is not accounted (the counters
        read as if the engine had never gone away).

        Guarantee: the restored engine returns byte-identical *results*
        to the captured one.  Future counter *deltas* may diverge for
        engines whose per-query bookkeeping evolves beyond a fresh
        install (CPM visit lists grow with history); where byte-exact
        counter accounting matters across a rebuild, replay the command
        history instead — that is what
        :class:`repro.service.supervisor.SupervisedShardExecutor` does
        between checkpoints.
        """
        if self.object_count or self.query_ids():
            raise RuntimeError("restore_state requires a freshly built engine")
        self.load_objects(state.objects)
        if state.tags:
            self.set_object_tags(state.tags)
        for record in state.queries:
            if record.strategy is not None:
                install = getattr(self, "install_strategy_query", None)
                if install is None:
                    raise NotImplementedError(
                        f"{type(self).__name__} cannot restore a "
                        f"strategy-backed query (qid {record.qid})"
                    )
                install(record.qid, record.strategy, record.k)
            else:
                assert record.point is not None
                self.install_query(record.qid, record.point, record.k)
        self.stats.restore(state.stats)

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    @abstractmethod
    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        """Process one cycle of updates; returns ids of queries whose result
        changed (including newly inserted and moved queries)."""

    def process_batch(self, batch: UpdateBatch) -> set[int]:
        """Process a packaged :class:`repro.updates.UpdateBatch`."""
        return self.process(batch.object_updates, batch.query_updates)

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        """Process one cycle from a columnar :class:`FlatUpdateBatch`.

        Contract: byte-identical to :meth:`process` over
        ``batch.to_object_updates()`` — same changed set, same results,
        same deterministic access counters.  ``query_updates`` overrides
        the batch's own query updates when given (the sharded monitor
        routes them separately).

        This base implementation translates back to the
        :class:`ObjectUpdate` vocabulary; monitors with a columnar hot
        path (CPM) override it to iterate the flat arrays end to end.
        """
        if query_updates is None:
            query_updates = batch.query_updates
        return self.process(batch.to_object_updates(), query_updates)

    # ------------------------------------------------------------------
    # Delta reporting
    # ------------------------------------------------------------------

    #: when a capture-aware ``process`` implementation sees this dict it
    #: records, once per query, the query's *pre-cycle* result under its
    #: qid at the moment the query is first touched (see
    #: :meth:`_process_deltas_captured`).  ``None`` disables capture.
    _delta_log: dict[int, list[ResultEntry]] | None = None

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> dict[int, ResultDelta]:
        """Process one cycle and report structured per-query result deltas.

        The returned mapping holds one :class:`ResultDelta` for every query
        whose result changed (the keys match :meth:`process`'s return set)
        plus a ``terminated`` delta for every query removed this cycle.

        This base implementation snapshots the full result table around
        :meth:`process` — correct for any monitor, O(n) per cycle.  The
        built-in monitors override it with targeted capture that only pays
        for the touched queries.
        """
        before = self.result_table()
        changed = self.process(object_updates, query_updates)
        deltas: dict[int, ResultDelta] = {}
        for qid in changed:
            deltas[qid] = diff_results(qid, before.get(qid, []), self.result(qid))
        live = set(self.query_ids())
        for qid in before.keys() - live:
            deltas[qid] = diff_results(qid, before[qid], [], terminated=True)
        return deltas

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> dict[int, ResultDelta]:
        """Delta-reporting twin of :meth:`process_flat`.

        Contract: the returned deltas are byte-identical to
        :meth:`process_deltas` over ``batch.to_object_updates()`` (same
        keys, same :class:`ResultDelta` tuples, same deterministic
        counters).  This base implementation translates back to the
        :class:`ObjectUpdate` vocabulary; monitors whose columnar loop
        feeds :attr:`_delta_log` (CPM) override it so streaming
        deployments keep the columnar apply.
        """
        if query_updates is None:
            query_updates = batch.query_updates
        return self.process_deltas(batch.to_object_updates(), query_updates)

    def _process_deltas_captured(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> dict[int, ResultDelta]:
        """Shared targeted-capture implementation of :meth:`process_deltas`.

        Monitors whose ``process`` feeds :attr:`_delta_log` (recording each
        touched query's pre-cycle result before its first mutation) call
        this helper; it pre-captures the queries receiving query updates
        (their results change through remove/install, not through object
        handling), runs the cycle, and diffs.
        """
        return self._captured_deltas(
            query_updates, lambda: self.process(object_updates, query_updates)
        )

    def _captured_deltas(
        self,
        query_updates: Sequence[QueryUpdate],
        run,
    ) -> dict[int, ResultDelta]:
        """Targeted-capture core shared by the row and columnar cycles.

        ``run`` executes one cycle (``process`` or ``process_flat`` over
        the same ``query_updates``) and returns its changed set; any
        capture-aware cycle loop works because the capture happens at
        scratch acquisition, which both loops share.
        """
        if self._delta_log is not None:
            raise RuntimeError("process_deltas is not re-entrant")
        before: dict[int, list[ResultEntry]] = {}
        installed = set(self.query_ids())
        for qu in query_updates:
            if qu.qid in installed and qu.qid not in before:
                before[qu.qid] = self.result(qu.qid)
        self._delta_log = before
        try:
            changed = run()
        finally:
            self._delta_log = None
        deltas: dict[int, ResultDelta] = {}
        for qid in changed:
            deltas[qid] = diff_results(qid, before.get(qid, []), self.result(qid))
        live = set(self.query_ids())
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE and qu.qid not in live:
                deltas[qu.qid] = diff_results(
                    qu.qid, before.get(qu.qid, []), [], terminated=True
                )
        return deltas

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def stats(self) -> GridStats:
        """Grid access counters (cell scans etc.) for the current run."""

    def reset_stats(self) -> None:
        """Zero the access counters (the engine calls this between cycles)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def apply_query_update(self, update: QueryUpdate) -> None:
        """Default query-update dispatch used by implementations.

        Figure 3.9 treats a moving query as a termination followed by an
        insertion at the new location.
        """
        if update.kind is QueryUpdateKind.TERMINATE:
            self.remove_query(update.qid)
            return
        if update.kind is QueryUpdateKind.MOVE:
            self.remove_query(update.qid)
        assert update.point is not None
        self.install_query(update.qid, update.point, update.k or 1)
