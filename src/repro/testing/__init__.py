"""Deterministic test harnesses (fault injection).

Not imported by the library proper — test suites and chaos drivers pull
:mod:`repro.testing.faults` in explicitly.
"""

from __future__ import annotations

from repro.testing.faults import FaultPlan, ScheduledFault

__all__ = ["FaultPlan", "ScheduledFault"]
