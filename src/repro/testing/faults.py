"""Seeded, deterministic fault injection for the service tier.

A :class:`FaultPlan` is a replayable failure schedule: *kill worker N at
command K*, *wedge worker N at command K*, *cut connection C after frame
M*, *cut the feed socket after frame M*, *delay command K by d seconds*.
The plan compiles into the observation hooks the runtime layers already
expose —

* :class:`repro.service.executor.ProcessShardExecutor` ``fault_hook``
  (called before every command send with the per-shard command ordinal),
* :class:`repro.api.server.MonitorSocketServer` ``fault_hook`` (called
  before every outbound frame with the per-connection frame ordinal),
* :class:`repro.ingest.feeds.SocketFeed` ``fault_hook`` (called per
  decoded inbound frame)

— so a chaos test states its schedule once and replays it exactly: same
seed, same schedule, same failure points, same recovery path.  Worker
kills use ``SIGKILL`` *and join the corpse* before returning, so the next
pipe operation fails deterministically (never a half-dead race); wedges
use ``SIGSTOP``, which only the executor's ``recv_timeout`` path can
detect (and whose restart path reaps with ``SIGKILL`` — a stopped process
ignores ``SIGTERM`` until resumed).

Every fault fires at most once; :attr:`FaultPlan.fired` records the
actual firing order for post-run assertions.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from random import Random

__all__ = ["FaultPlan", "ScheduledFault"]


@dataclass(frozen=True, slots=True)
class ScheduledFault:
    """One point fault: ``kind`` at ordinal ``at`` of lane ``key``.

    ``key`` is the shard index (worker faults), connection index
    (connection drops) or 0 (feed drops); ``seconds`` is only meaningful
    for ``delay`` faults.
    """

    #: "kill" | "stop" | "delay" | "drop_connection" | "drop_feed"
    #: | "stall_ingest"
    kind: str
    key: int
    at: int
    seconds: float = 0.0


@dataclass
class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    Build a plan fluently, hand its hooks to the components under test::

        plan = FaultPlan(seed=7).kill_worker(shard=1, at_command=5)
        executor = SupervisedShardExecutor(fault_hook=plan.executor_hook())
        ...
        assert [f.kind for f in plan.fired] == ["kill"]

    ``seed`` drives the randomized schedule helpers only; explicitly
    scheduled faults need no seed.
    """

    seed: int | None = None
    faults: list[ScheduledFault] = field(default_factory=list)
    #: faults that actually fired, in firing order.
    fired: list[ScheduledFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------

    def kill_worker(self, shard: int, at_command: int) -> "FaultPlan":
        """SIGKILL shard ``shard``'s worker just before command ``at_command``
        (0-based per-shard ordinal, monotonic across restarts) is sent."""
        self.faults.append(ScheduledFault("kill", shard, at_command))
        return self

    def stop_worker(self, shard: int, at_command: int) -> "FaultPlan":
        """SIGSTOP (wedge, don't kill) the worker before command
        ``at_command`` — exercises the ``recv_timeout`` detection path."""
        self.faults.append(ScheduledFault("stop", shard, at_command))
        return self

    def delay_command(
        self, shard: int, at_command: int, seconds: float
    ) -> "FaultPlan":
        """Sleep ``seconds`` before sending command ``at_command`` (latency
        injection on the parent side)."""
        self.faults.append(ScheduledFault("delay", shard, at_command, seconds))
        return self

    def drop_connection(self, after_frames: int, conn: int = 0) -> "FaultPlan":
        """Abruptly close server connection ``conn`` (accept order, 0-based)
        when it is about to write outbound frame ``after_frames``."""
        self.faults.append(ScheduledFault("drop_connection", conn, after_frames))
        return self

    def drop_feed(self, after_frames: int) -> "FaultPlan":
        """Make a :class:`~repro.ingest.feeds.SocketFeed` lose its transport
        after decoding ``after_frames`` inbound frames."""
        self.faults.append(ScheduledFault("drop_feed", 0, after_frames))
        return self

    def stall_ingest(self, at_cycle: int, seconds: float) -> "FaultPlan":
        """Stall the ingest driver for ``seconds`` at the start of cycle
        ``at_cycle`` (0-based) — a deterministic way to force deadline
        overruns and exercise the hard health thresholds."""
        self.faults.append(ScheduledFault("stall_ingest", 0, at_cycle, seconds))
        return self

    def random_worker_kills(
        self, n: int, shards: int, max_command: int
    ) -> "FaultPlan":
        """Schedule ``n`` seeded-random worker kills across the fleet.

        Kill points are drawn without replacement from the
        ``shards x max_command`` lattice by ``Random(seed)``, so the same
        seed always yields the same schedule.
        """
        rng = Random(self.seed)
        lattice = [(s, c) for s in range(shards) for c in range(1, max_command)]
        for shard, at in sorted(rng.sample(lattice, n)):
            self.kill_worker(shard, at)
        return self

    # ------------------------------------------------------------------
    # Hook compilation
    # ------------------------------------------------------------------

    def _take(self, kinds: tuple[str, ...], key: int, at: int) -> ScheduledFault | None:
        """Pop-and-record the first pending fault matching ``(kind, key, at)``."""
        with self._lock:
            for fault in self.faults:
                if fault.kind in kinds and fault.key == key and fault.at == at:
                    if fault in self.fired:
                        continue
                    self.fired.append(fault)
                    return fault
        return None

    def executor_hook(self):
        """``fault_hook`` for :class:`ProcessShardExecutor` and subclasses."""

        def hook(shard: int, seq: int, worker) -> None:
            fault = self._take(("kill", "stop", "delay"), shard, seq)
            if fault is None:
                return
            if fault.kind == "kill":
                worker.kill()
                worker.join(timeout=5.0)
            elif fault.kind == "stop":
                os.kill(worker.pid, signal.SIGSTOP)
            else:
                time.sleep(fault.seconds)

        return hook

    def connection_hook(self):
        """``fault_hook`` for :class:`repro.api.server.MonitorSocketServer`:
        returns ``True`` when the connection's transport should be cut
        before the given outbound frame."""

        def hook(conn: int, frame_seq: int) -> bool:
            return self._take(("drop_connection",), conn, frame_seq) is not None

        return hook

    def ingest_hook(self):
        """``fault_hook`` for :class:`repro.ingest.driver.IngestDriver`:
        called with the cycle ordinal at the start of every cycle; sleeps
        through any matching ``stall_ingest`` fault."""

        def hook(cycle: int) -> None:
            fault = self._take(("stall_ingest",), 0, cycle)
            if fault is not None:
                time.sleep(fault.seconds)

        return hook

    def feed_hook(self):
        """``fault_hook`` for :class:`repro.ingest.feeds.SocketFeed`: returns
        ``True`` when the feed's transport should be cut after the given
        decoded frame."""

        def hook(frame_seq: int) -> bool:
            return self._take(("drop_feed",), 0, frame_seq) is not None

        return hook
