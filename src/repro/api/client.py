"""The remote client: the Session API mirrored over a socket.

A :class:`Client` connects to a :class:`repro.api.server.MonitorSocketServer`
and exposes the same vocabulary as the in-process
:class:`repro.api.session.Session` — ``register`` returning handles with
``move`` / ``terminate`` / ``snapshot`` / ``subscribe``, plus
``send_updates`` / ``tick`` for driving cycles — every call translated
to wire frames (:mod:`repro.api.wire`).

One background reader thread owns the socket's receive side.  It
dispatches ``delta`` frames to the subscribed handles' callbacks
(callbacks therefore run on the reader thread — keep them fast, hand
off to a queue for heavy work) and routes reply frames to the one
in-flight request (requests are serialized by an internal lock).
Because the server publishes a cycle's deltas before replying to the
``tick`` that produced them, every delta of a cycle has been dispatched
by the time :meth:`tick` returns — remote code can treat ``tick`` as a
synchronization point exactly like in-process code does.

**Reconnects.**  Pass a :class:`repro.api.retry.ReconnectPolicy` to make
the client survive transport loss: when the link drops abnormally (and
only then — a server ``bye`` or a local :meth:`Client.close` stays
final), the reader thread redials with capped exponential backoff and
re-syncs over the wire-v2 ``sync`` path — re-adopting every session
query, re-subscribing their delta topics and refreshing the handles'
results — then resumes streaming.  Each recovery is surfaced as a
:class:`ReconnectEvent` (``reconnect_events`` / ``on_reconnect``).
Semantics the application must own: a request in flight at the moment
of loss fails with :class:`RemoteError` (it may or may not have been
applied — reads are safe to retry, writes need idempotence), staged
updates not yet ticked are lost with the old connection, and deltas
published while the link was down are *not* replayed — treat a
reconnect like a ``lagged`` marker and re-snapshot what you watch
(the re-synced results in the event carry exactly that snapshot).

**Lag recovery.**  The in-band case needs no request at all: the server
follows every ``lagged`` frame (DROP_AND_SNAPSHOT slow-consumer policy)
with one fresh ``sync_query`` snapshot per subscribed query, which the
client records in ``lag_snapshots`` — a stalled-then-drained consumer
converges as soon as it reads its backlog.  ``auto_resync=True``
additionally re-runs the full wire-v2 ``sync`` handshake on a side
thread — the reader thread cannot issue requests itself — refreshing
*every* handle's result and re-subscribing its topic, which also covers
queries this connection never watched.  Each completed recovery lands
in ``resync_events``; overlapping lag markers coalesce into the one
in-flight re-sync.

**Telemetry.**  ``watch_metrics`` subscribes the connection to the
server's wire-v3 telemetry stream: ``metrics`` frames land in
``metrics_frames``, ``alert`` frames in ``alert_events`` (neither is
routed to the request/reply path).  Pass a
:class:`repro.obs.metrics.MetricsRegistry` as ``metrics=`` to have the
client's own transport health — reconnects, shed deltas, received
alerts — exported alongside everything else.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.api import wire
from repro.api.queries import QuerySpec
from repro.api.retry import ReconnectPolicy
from repro.obs.metrics import MetricsRegistry
from repro.geometry.points import Point
from repro.service.deltas import ResultDelta
from repro.updates import ObjectUpdate, QueryUpdate

ResultEntry = tuple[float, int]
DeltaCallback = Callable[[int | None, ResultDelta], None]

#: sentinel returned by the reader pump for EOF-without-bye (the server
#: vanished without an orderly goodbye — a reconnectable failure).
_EOF = object()


@dataclass(slots=True)
class SyncState:
    """What :meth:`Client.sync` brought over: the handles of every query
    registered on the session (with their synced results) and, when
    requested, the object table rows ``(oid, (x, y), tags-or-None)``."""

    handles: list["RemoteQueryHandle"] = field(default_factory=list)
    results: dict[int, list[ResultEntry]] = field(default_factory=dict)
    objects: list[tuple[int, Point, tuple[str, ...] | None]] = field(
        default_factory=list
    )


@dataclass(slots=True)
class ReconnectEvent:
    """One successful transparent reconnect (see ``Client.reconnect_events``).

    ``results`` holds the re-synced result table — the authoritative
    post-gap snapshot of every session query (deltas missed while the
    link was down are not replayed; this is the re-anchor point).
    """

    attempts: int  # dial attempts this recovery needed (>= 1)
    cause: str  # repr of the transport failure that triggered it
    results: dict[int, list[ResultEntry]] = field(default_factory=dict)


class RemoteError(RuntimeError):
    """The server answered a request with an ``error`` frame."""


class RemoteSubscription:
    """Client-side registration of one delta callback (see ``close``)."""

    __slots__ = ("callback", "delivered", "qid", "_client")

    def __init__(self, client: "Client", qid: int, callback: DeltaCallback) -> None:
        self._client = client
        self.qid = qid
        self.callback = callback
        self.delivered = 0

    def close(self) -> None:
        """Detach the callback (and unsubscribe the topic when it was the
        last one on this query)."""
        self._client._drop_subscription(self)


class RemoteQueryHandle:
    """A registered query on the remote monitor (mirror of QueryHandle)."""

    __slots__ = ("qid", "_client", "_spec", "_alive")

    def __init__(self, client: "Client", qid: int, spec: QuerySpec) -> None:
        self._client = client
        self.qid = qid
        self._spec = spec
        self._alive = True

    @property
    def spec(self) -> QuerySpec:
        return self._spec

    @property
    def alive(self) -> bool:
        return self._alive

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError(f"query {self.qid} is terminated")

    def snapshot(self) -> list[ResultEntry]:
        self._check_alive()
        return self._client.snapshot(self.qid)

    def move(self, point: Point) -> list[ResultEntry]:
        self._check_alive()
        reply = self._client._request(
            wire.Move(qid=self.qid, point=(point[0], point[1])), wire.Snapshot
        )
        self._spec = self._spec.moved_to((point[0], point[1]))
        return list(reply.result)

    def terminate(self) -> None:
        self._check_alive()
        self._client._request(wire.Terminate(qid=self.qid), wire.Ok)
        self._alive = False
        self._client._forget_handle(self.qid)

    def subscribe(
        self, callback: DeltaCallback, *, include_unchanged: bool = False
    ) -> RemoteSubscription:
        """Route this query's deltas to ``callback(timestamp, delta)``.

        Callbacks run on the client's reader thread.
        """
        self._check_alive()
        return self._client._subscribe(self.qid, callback, include_unchanged)


class Client:
    """A wire-protocol monitoring client (see module docstring).

    Use :meth:`connect`, or hand an already-connected socket to the
    constructor (tests).  The client reads the server's ``welcome``
    eagerly and refuses servers that do not speak a supported version.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        client_name: str = "",
        reconnect: ReconnectPolicy | None = None,
        on_reconnect: Callable[[ReconnectEvent], None] | None = None,
        auto_resync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._write_lock = threading.Lock()
        self._request_lock = threading.Lock()
        self._replies: queue.Queue = queue.Queue()
        self._handles: dict[int, RemoteQueryHandle] = {}
        self._subscriptions: dict[int, list[RemoteSubscription]] = {}
        self._closed = threading.Event()
        self._client_name = client_name
        self._reconnect = reconnect
        self._on_reconnect = on_reconnect
        #: the dial address for redials; without one (a pre-connected
        #: socket whose peer cannot be named) reconnects are disabled.
        try:
            peer = sock.getpeername()
        except OSError:
            peer = None
        self._address: tuple | None = peer if peer else None
        #: distinguishes a local close() (final) from transport loss
        #: (reconnectable): the reader must never redial a user close.
        self._user_closed = threading.Event()
        #: cleared while a reconnect is in progress; requests wait on it.
        self._connected = threading.Event()
        self._connected.set()
        #: every successful transparent reconnect, in order.
        self.reconnect_events: list[ReconnectEvent] = []
        #: why the reader loop stopped, when it stopped abnormally (a
        #: transport error or an undecodable server frame); surfaced in
        #: the RemoteError of the next request.
        self._reader_error: BaseException | None = None
        #: exceptions raised by subscription callbacks (callbacks run on
        #: the reader thread; a raising callback does NOT kill the
        #: connection — the error is recorded here and delivery goes on).
        self.callback_errors: list[BaseException] = []
        #: set to a list to record **every** delta frame this connection
        #: receives, subscribed or not — the hook that lets tests and the
        #: remote-dashboard example prove the server routes only the
        #: topics this connection asked for.
        self.delta_frame_log: list[wire.Delta] | None = None
        #: dropped-delivery counts from ``lagged`` frames (the server's
        #: DROP_AND_SNAPSHOT slow-consumer policy shed deltas for this
        #: connection; re-snapshot what you watch).
        self.lag_events: list[int] = []
        #: qid -> the freshest result the server pushed after a
        #: ``lagged`` marker (unsolicited ``sync_query`` follow-ups).
        #: These arrive without any request from this side, so a
        #: stalled-then-drained consumer converges even with
        #: ``auto_resync`` off.
        self.lag_snapshots: dict[int, list[ResultEntry]] = {}
        #: True while :meth:`sync` owns the reply stream — handshake
        #: ``sync_query`` frames route to the request, any other
        #: ``sync_query`` is a server-pushed lag follow-up.
        self._sync_active = False
        #: re-run the sync handshake automatically on every ``lagged``
        #: marker (see module docstring); completed recoveries append
        #: their :class:`SyncState` to ``resync_events``.
        self._auto_resync = auto_resync
        #: single-inflight guard: lag markers arriving while a re-sync
        #: is already running coalesce into it.
        self._resyncing = threading.Event()
        #: every completed automatic lag re-sync, in order.
        self.resync_events: list[SyncState] = []
        #: server ``metrics`` frames received after :meth:`watch_metrics`.
        self.metrics_frames: list[wire.Metrics] = []
        #: server ``alert`` frames pushed to this connection.
        self.alert_events: list[wire.Alert] = []
        #: optional registry exporting this client's transport health.
        self.metrics = metrics
        #: the server's ``welcome`` frame (name + supported versions).
        self.welcome: wire.Welcome = self._read_welcome()
        if wire.WIRE_VERSION not in self.welcome.versions:
            raise RemoteError(
                f"server speaks versions {list(self.welcome.versions)}, "
                f"client needs {wire.WIRE_VERSION}"
            )
        self._reader_thread = threading.Thread(
            target=self._read_loop, name="monitor-client-reader", daemon=True
        )
        self._reader_thread.start()
        if client_name:
            self._send(wire.Hello(client=client_name))

    def _closed_reason(self) -> str:
        if self._reader_error is not None:
            return f"connection closed ({self._reader_error!r})"
        return "connection closed"

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        client_name: str = "",
        reconnect: ReconnectPolicy | None = None,
        on_reconnect: Callable[[ReconnectEvent], None] | None = None,
        auto_resync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> "Client":
        sock = cls._dial((host, port), timeout)
        client = cls(
            sock,
            client_name=client_name,
            reconnect=reconnect,
            on_reconnect=on_reconnect,
            auto_resync=auto_resync,
            metrics=metrics,
        )
        client._address = (host, port)
        return client

    @staticmethod
    def _dial(address: tuple, timeout: float) -> socket.socket:
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(None)
        # Request/response frames are small; Nagle + delayed ACK would
        # add ~40ms to every round trip.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------

    def _send(self, frame: wire.Frame) -> None:
        data = (wire.encode_frame(frame) + "\n").encode("utf-8")
        with self._write_lock:
            self._sock.sendall(data)

    def _read_welcome(self) -> wire.Welcome:
        line = self._reader.readline()
        if not line:
            raise RemoteError("connection closed before welcome")
        frame = wire.decode_frame(line)
        if type(frame) is not wire.Welcome:
            raise RemoteError(f"expected welcome, got {frame!r}")
        return frame

    def _read_loop(self) -> None:
        try:
            while True:
                outcome = self._pump()
                if outcome is None or self._user_closed.is_set():
                    # Orderly end (server bye, or our own close racing the
                    # read): final, never redialed.
                    break
                if self._reconnect is None or self._address is None:
                    if isinstance(outcome, BaseException):
                        # Transport failure or an undecodable server frame:
                        # remember why, so the next request's RemoteError
                        # can say.
                        self._reader_error = outcome
                    break
                # Abnormal loss with reconnects enabled: fail the in-flight
                # request (its reply is gone with the old connection), then
                # redial off-line while requesters wait on _connected.
                cause = (
                    outcome
                    if isinstance(outcome, BaseException)
                    else ConnectionResetError("server closed without bye")
                )
                self._connected.clear()
                self._replies.put(None)
                if not self._redial(cause):
                    self._reader_error = cause
                    break
        finally:
            self._closed.set()
            # Wake requesters blocked on the reconnect window or on a
            # reply that will never come (in that order: a requester
            # re-checks _closed after _connected fires).
            self._connected.set()
            self._replies.put(None)

    def _pump(self):
        """Read frames until the connection ends.

        Returns ``None`` for an orderly end (server ``bye``), ``_EOF``
        for a silent peer close, or the exception for a transport/decode
        failure.
        """
        try:
            for line in self._reader:
                line = line.strip()
                if not line:
                    continue
                frame = wire.decode_frame(line)
                kind = type(frame)
                if kind is wire.Delta:
                    self._dispatch_delta(frame)
                elif kind is wire.Lagged:
                    self._on_lagged(frame)
                elif kind is wire.SyncQuery and not self._sync_active:
                    self._on_lag_snapshot(frame)
                elif kind is wire.Metrics:
                    self._on_metrics(frame)
                elif kind is wire.Alert:
                    self._on_alert(frame)
                elif kind is wire.Bye:
                    return None
                else:
                    # Replies (registered/snapshot/ticked/ok/error) go to
                    # the single in-flight request.
                    self._replies.put(frame)
        except (OSError, ValueError) as exc:
            return exc
        return _EOF

    def _redial(self, cause: BaseException) -> bool:
        """Dial-and-resync with backoff (reader thread).  True on success."""
        policy = self._reconnect
        attempts = 0
        for delay in policy.delays():
            if self._user_closed.is_set():
                return False
            time.sleep(delay)
            if self._user_closed.is_set():
                return False
            attempts += 1
            try:
                sock = self._dial(self._address, policy.connect_timeout)
            except OSError:
                continue
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            old_sock = self._sock
            with self._write_lock:
                # Writers (requests are still parked on _connected, but a
                # racing send_updates may hold the lock) must never see a
                # half-swapped transport.
                self._sock = sock
                self._reader = reader
            try:
                old_sock.close()
            except OSError:
                pass
            try:
                event = self._resync(attempts, cause)
            except (OSError, ValueError, RemoteError):
                # The fresh connection died during the handshake/re-sync;
                # treat it like a failed dial and keep backing off.
                continue
            # Leftover frames from the old connection (including the None
            # we queued at loss time, if no request consumed it) are
            # stale; the link is clean from here.
            self._drain_replies()
            self.reconnect_events.append(event)
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_client_reconnects_total",
                    "Transparent transport recoveries completed.",
                ).inc()
            self._connected.set()
            if self._on_reconnect is not None:
                try:
                    self._on_reconnect(event)
                except Exception as exc:  # observer must not kill the link
                    self.callback_errors.append(exc)
            return True
        return False

    def _resync(self, attempts: int, cause: BaseException) -> ReconnectEvent:
        """Handshake + wire-v2 ``sync`` on a fresh transport.

        Runs inline on the reader thread (the pump is paused, so frames
        are read directly): validates the welcome, re-announces the
        client, then replays the session's queries through ``sync`` —
        re-creating missing handles, refreshing specs, re-subscribing
        every query's delta topic (``watch=True``) — and drops handles
        for queries that vanished while the link was down.  Deltas the
        server publishes concurrently are dispatched as usual.
        """
        welcome = self._read_welcome()
        if wire.WIRE_VERSION not in welcome.versions:
            raise RemoteError(
                f"server speaks versions {list(welcome.versions)}, "
                f"client needs {wire.WIRE_VERSION}"
            )
        self.welcome = welcome
        if self._client_name:
            self._send(wire.Hello(client=self._client_name))
        self._send(
            wire.Sync(objects=False, watch=True)
        )
        results: dict[int, list[ResultEntry]] = {}
        synced_objects = 0
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionResetError("connection lost during re-sync")
            line = line.strip()
            if not line:
                continue
            frame = wire.decode_frame(line)
            kind = type(frame)
            if kind is wire.Delta:
                self._dispatch_delta(frame)
            elif kind is wire.Lagged:
                self.lag_events.append(frame.dropped)
            elif kind is wire.SyncObjects:
                synced_objects += len(frame.rows)
            elif kind is wire.SyncQuery:
                handle = self._handles.get(frame.qid)
                if handle is None:
                    handle = RemoteQueryHandle(self, frame.qid, frame.spec)
                    self._handles[frame.qid] = handle
                else:
                    handle._spec = frame.spec
                results[frame.qid] = list(frame.result)
            elif kind is wire.SyncDone:
                if len(results) != frame.queries:
                    raise RemoteError(
                        f"re-sync incomplete: got {len(results)}/"
                        f"{frame.queries} queries"
                    )
                break
            elif kind is wire.Bye:
                raise ConnectionResetError("server said bye during re-sync")
            elif kind is wire.Error:
                raise RemoteError(frame.message)
            # Anything else on a fresh connection is stale noise; skip it.
        for qid in list(self._handles):
            if qid not in results:
                # Terminated while we were away.
                self._handles[qid]._alive = False
                self._forget_handle(qid)
        return ReconnectEvent(
            attempts=attempts, cause=repr(cause), results=results
        )

    def _drain_replies(self) -> None:
        while True:
            try:
                self._replies.get_nowait()
            except queue.Empty:
                return

    def _await_link(self) -> None:
        """Park until any in-progress reconnect settles (or give up)."""
        if self._connected.is_set():
            return
        budget = (
            self._reconnect.total_budget() if self._reconnect is not None else 5.0
        )
        if not self._connected.wait(timeout=budget):
            raise RemoteError("reconnect did not complete in time")

    def _dispatch_delta(self, frame: wire.Delta) -> None:
        if self.delta_frame_log is not None:
            self.delta_frame_log.append(frame)
        for subscription in tuple(self._subscriptions.get(frame.delta.qid, ())):
            try:
                subscription.callback(frame.timestamp, frame.delta)
            except Exception as exc:  # a bad callback must not kill the link
                self.callback_errors.append(exc)
            else:
                subscription.delivered += 1

    def _on_lagged(self, frame: wire.Lagged) -> None:
        self.lag_events.append(frame.dropped)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_client_lagged_deltas_total",
                "Deltas the server shed for this connection (lagged frames).",
            ).inc(frame.dropped)
        if self._auto_resync:
            self._spawn_resync()

    def _on_lag_snapshot(self, frame: wire.SyncQuery) -> None:
        """A server-pushed post-lag snapshot (no request from this side).

        The server follows every ``lagged`` marker with one fresh
        ``sync_query`` per subscribed query, so the gap the shed deltas
        left is closed here — the authoritative result lands in
        :attr:`lag_snapshots` without a re-sync round trip.
        """
        handle = self._handles.get(frame.qid)
        if handle is None:
            handle = RemoteQueryHandle(self, frame.qid, frame.spec)
            self._handles[frame.qid] = handle
        else:
            handle._spec = frame.spec
        self.lag_snapshots[frame.qid] = list(frame.result)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_client_lag_snapshots_total",
                "Post-lag snapshots the server pushed to this connection.",
            ).inc()

    def _spawn_resync(self) -> None:
        """Kick off the lag-recovery ``sync`` on a side thread.

        Runs on the reader thread, which cannot issue requests itself
        (:meth:`sync` would deadlock waiting for replies only this
        thread can enqueue).  At most one re-sync is in flight; lag
        markers arriving meanwhile coalesce into it.
        """
        if self._resyncing.is_set() or self._closed.is_set():
            return
        self._resyncing.set()

        def run() -> None:
            try:
                state = self.sync(objects=False, watch=True)
            except RemoteError as exc:
                # A lost link mid-recovery is the reconnect machinery's
                # problem (or the application's, via the next request);
                # the recovery itself must not kill anything.
                self.callback_errors.append(exc)
            else:
                self.resync_events.append(state)
                if self.metrics is not None:
                    self.metrics.counter(
                        "repro_client_resyncs_total",
                        "Automatic lag re-syncs completed.",
                    ).inc()
            finally:
                self._resyncing.clear()

        threading.Thread(
            target=run, name="monitor-client-resync", daemon=True
        ).start()

    def _on_metrics(self, frame: wire.Metrics) -> None:
        self.metrics_frames.append(frame)

    def _on_alert(self, frame: wire.Alert) -> None:
        self.alert_events.append(frame)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_client_alerts_received_total",
                "Server health alerts pushed to this connection, by level.",
                level=frame.level,
            ).inc()

    def _request(self, frame: wire.Frame, expected: type) -> wire.Frame:
        """Send one frame and wait for its reply (serialized)."""
        if threading.current_thread() is self._reader_thread:
            # The reply could only be enqueued by the reader thread —
            # which is the one blocked here.  Fail fast instead.
            raise RemoteError(
                "requests cannot be issued from inside a delta callback "
                "(it runs on the reader thread); hand off to another thread"
            )
        with self._request_lock:
            self._await_link()
            if self._closed.is_set():
                raise RemoteError(self._closed_reason())
            self._send(frame)
            reply = self._replies.get()
        if reply is None:
            raise RemoteError(
                f"{self._closed_reason()} while waiting for a reply"
            )
        if type(reply) is wire.Error:
            raise RemoteError(reply.message)
        if type(reply) is not expected:
            raise RemoteError(
                f"expected {expected.__name__}, got {reply!r}"
            )
        return reply

    # ------------------------------------------------------------------
    # The Session vocabulary
    # ------------------------------------------------------------------

    def register(
        self, spec: QuerySpec, *, qid: int | None = None, watch: bool = True
    ) -> RemoteQueryHandle:
        """Install a typed query on the remote monitor.

        ``watch=True`` (default) also subscribes the connection to the
        query's delta topic server-side, so callbacks attached with
        :meth:`RemoteQueryHandle.subscribe` start streaming immediately.
        """
        reply = self._request(
            wire.Register(spec=spec, qid=qid, watch=watch), wire.Registered
        )
        handle = RemoteQueryHandle(self, reply.qid, spec)
        self._handles[reply.qid] = handle
        return handle

    def handle(self, qid: int) -> RemoteQueryHandle:
        return self._handles[qid]

    def handles(self) -> list[RemoteQueryHandle]:
        return [self._handles[qid] for qid in sorted(self._handles)]

    def snapshot(self, qid: int) -> list[ResultEntry]:
        reply = self._request(wire.GetSnapshot(qid=qid), wire.Snapshot)
        return list(reply.result)

    def set_object_tags(self, tags: Mapping[int, Iterable[str]]) -> None:
        """Merge object attribute tags on the remote monitor (the
        predicate state of :class:`repro.api.queries.FilteredKnnSpec`
        subscriptions); an empty tag set removes an object's tags."""
        rows = tuple(
            (int(oid), tuple(sorted(str(t) for t in tag_set)))
            for oid, tag_set in tags.items()
        )
        self._request(wire.Tags(rows=rows), wire.Ok)

    def sync(self, *, objects: bool = False, watch: bool = True) -> SyncState:
        """Cold-start: mirror the server session's current state.

        Streams every registered query (spec + current result) — and the
        object table when ``objects`` is set — building a
        :class:`RemoteQueryHandle` for each query so a fresh client can
        adopt a long-running session entirely over the wire.
        ``watch=True`` also subscribes this connection to every synced
        query's delta topic.
        """
        if threading.current_thread() is self._reader_thread:
            raise RemoteError(
                "requests cannot be issued from inside a delta callback "
                "(it runs on the reader thread); hand off to another thread"
            )
        state = SyncState()
        with self._request_lock:
            self._await_link()
            if self._closed.is_set():
                raise RemoteError(self._closed_reason())
            self._sync_active = True
            try:
                return self._run_sync(state, objects=objects, watch=watch)
            finally:
                self._sync_active = False

    def _run_sync(self, state: SyncState, *, objects: bool, watch: bool):
        self._send(wire.Sync(objects=objects, watch=watch))
        # The sync stream is a multi-frame reply; requests are
        # serialized, so everything until sync_done belongs to us.
        while True:
            reply = self._replies.get()
            if reply is None:
                raise RemoteError(
                    f"{self._closed_reason()} while waiting for sync"
                )
            kind = type(reply)
            if kind is wire.Error:
                raise RemoteError(reply.message)
            if kind is wire.SyncObjects:
                state.objects.extend(reply.rows)
            elif kind is wire.SyncQuery:
                handle = self._handles.get(reply.qid)
                if handle is None:
                    handle = RemoteQueryHandle(self, reply.qid, reply.spec)
                    self._handles[reply.qid] = handle
                # A lag follow-up racing the handshake can repeat a qid
                # in this stream; the later (handshake) result wins and
                # the completeness check counts each query once.
                if reply.qid not in state.results:
                    state.handles.append(handle)
                state.results[reply.qid] = list(reply.result)
            elif kind is wire.SyncDone:
                if len(state.handles) != reply.queries or (
                    len(state.objects) != reply.objects
                ):
                    raise RemoteError(
                        f"sync stream incomplete: got "
                        f"{len(state.handles)}/{reply.queries} queries, "
                        f"{len(state.objects)}/{reply.objects} objects"
                    )
                return state
            else:
                raise RemoteError(f"unexpected frame during sync: {reply!r}")

    def send_updates(self, object_updates: Sequence[ObjectUpdate]) -> None:
        """Stage object updates for the next :meth:`tick` (no reply)."""
        self._await_link()
        self._send(wire.Updates(updates=tuple(object_updates)))

    def send_query_update(self, update: QueryUpdate) -> None:
        """Stage a raw query update for the next :meth:`tick`."""
        self._await_link()
        self._send(wire.QueryOp(update=update))

    def tick(self, *, timestamp: int | None = None) -> set[int]:
        """Close the staged cycle; returns the changed-query id set.

        Every delta of the cycle has been dispatched to subscription
        callbacks by the time this returns (see module docstring).
        """
        reply = self._request(wire.Tick(timestamp=timestamp), wire.Ticked)
        return set(reply.changed)

    def watch_metrics(
        self,
        *,
        interval_ms: int = 0,
        alerts: bool = True,
        timeout: float = 5.0,
    ) -> wire.Metrics:
        """Subscribe to the server's telemetry stream (wire v3).

        The server replies with an immediate ``metrics`` frame (the
        current registry snapshot) and, when ``interval_ms`` is
        positive, keeps pushing one every interval; ``alerts=True`` also
        opts this connection into pushed ``alert`` frames.  Frames land
        in :attr:`metrics_frames` / :attr:`alert_events` on the reader
        thread.  Returns the immediate snapshot frame (waited for up to
        ``timeout`` seconds, since it arrives out-of-band after the
        ``ok`` reply).
        """
        seen = len(self.metrics_frames)
        self._request(
            wire.WatchMetrics(interval_ms=interval_ms, alerts=alerts), wire.Ok
        )
        deadline = time.monotonic() + timeout
        while len(self.metrics_frames) <= seen:
            if self._closed.is_set():
                raise RemoteError(self._closed_reason())
            if time.monotonic() >= deadline:
                raise RemoteError(
                    "no metrics frame arrived after watch_metrics"
                )
            time.sleep(0.005)
        return self.metrics_frames[seen]

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def _subscribe(
        self, qid: int, callback: DeltaCallback, include_unchanged: bool
    ) -> RemoteSubscription:
        bucket = self._subscriptions.setdefault(qid, [])
        if not bucket:
            self._request(
                wire.Subscribe(qid=qid, include_unchanged=include_unchanged),
                wire.Ok,
            )
        subscription = RemoteSubscription(self, qid, callback)
        bucket.append(subscription)
        return subscription

    def _drop_subscription(self, subscription: RemoteSubscription) -> None:
        bucket = self._subscriptions.get(subscription.qid)
        if not bucket or subscription not in bucket:
            return
        bucket.remove(subscription)
        if not bucket:
            del self._subscriptions[subscription.qid]
            if not self._closed.is_set():
                try:
                    self._request(wire.Unsubscribe(qid=subscription.qid), wire.Ok)
                except RemoteError:
                    pass

    def _forget_handle(self, qid: int) -> None:
        self._handles.pop(qid, None)
        self._subscriptions.pop(qid, None)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Orderly shutdown (idempotent).  Always final — a local close
        never triggers a reconnect."""
        self._user_closed.set()
        if not self._closed.is_set():
            try:
                self._send(wire.Bye())
            except OSError:
                pass
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader_thread.join(timeout=5.0)

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
