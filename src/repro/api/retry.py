"""Reconnect/backoff policy shared by the wire-tier endpoints.

Both sides of the wire reconnect with the same discipline —
:class:`repro.api.client.Client` (the query/result side) and
:class:`repro.ingest.feeds.SocketFeed` (the ingest side) — so the knobs
live here once: capped exponential backoff with multiplicative jitter,
bounded by ``max_retries``.  The jitter stream is seeded, which keeps
chaos tests replayable: the same :class:`ReconnectPolicy` always sleeps
the same schedule.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from random import Random


@dataclass(frozen=True, slots=True)
class ReconnectPolicy:
    """Backoff schedule for transparent reconnects.

    Attributes:
        max_retries: connection attempts before giving up for good.
        base_delay: sleep before the first attempt (seconds).
        max_delay: backoff cap (seconds).
        multiplier: exponential growth factor between attempts.
        jitter: each sleep is scaled by ``1 + jitter * u`` with
            ``u ~ U[0, 1)`` — spreads thundering-herd reconnects while
            keeping the schedule bounded by ``(1 + jitter) * max_delay``.
        seed: seeds the jitter stream (deterministic schedules for
            tests); ``None`` draws a fresh stream per policy use.
        connect_timeout: per-attempt TCP connect timeout (seconds).
    """

    max_retries: int = 8
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None
    connect_timeout: float = 10.0

    def delays(self) -> Iterator[float]:
        """The sleep schedule: ``max_retries`` jittered, capped delays."""
        rng = Random(self.seed)
        delay = self.base_delay
        for _ in range(self.max_retries):
            yield min(delay, self.max_delay) * (1.0 + self.jitter * rng.random())
            delay *= self.multiplier

    def total_budget(self) -> float:
        """Upper bound on one full reconnect cycle's duration (seconds).

        Callers blocked on a link mid-reconnect wait at most this long
        before giving up (sleeps at their jitter ceiling plus one connect
        timeout per attempt, plus slack for the re-sync exchange).
        """
        delay = self.base_delay
        total = 5.0
        for _ in range(self.max_retries):
            total += min(delay, self.max_delay) * (1.0 + self.jitter)
            total += self.connect_timeout
            delay *= self.multiplier
        return total
