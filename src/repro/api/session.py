"""The typed in-process client surface: sessions and query handles.

A :class:`Session` is *the* way programs talk to the monitor.  It wraps
a :class:`repro.service.service.MonitoringService` (or builds one around
a bare engine) and exposes the client vocabulary:

* :meth:`Session.register` installs a typed
  :class:`repro.api.queries.QuerySpec` and returns a
  :class:`QueryHandle`;
* a handle *is* the query from the client's point of view:
  ``snapshot()`` reads the current ordered result, ``move()``
  re-anchors it, ``terminate()`` tears it down, and ``subscribe(cb)``
  attaches a callback that sees **only this query's**
  :class:`repro.service.deltas.ResultDelta` stream (per-query topic
  routing in the hub — never the firehose);
* :meth:`Session.tick` (and the batch/flat/report variants) advance the
  monitoring cycle exactly like the service does.

The same surface exists remotely: :class:`repro.api.client.Client`
mirrors it over the ndjson wire protocol.  Workload replay lives here
too — :meth:`Session.replay`, or the one-shot :func:`replay_workload`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.api.queries import KnnSpec, QuerySpec, install_spec
from repro.geometry.points import Point
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.service.deltas import ResultDelta, diff_results
from repro.service.service import MonitoringService, TickReport
from repro.service.subscriptions import Subscription
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    UpdateBatch,
)

DeltaCallback = Callable[[int | None, ResultDelta], None]


class QueryHandle:
    """One registered continuous query, as held by a client.

    Handles are created by :meth:`Session.register`; all operations
    delegate to the session so the engine-facing logic lives in one
    place.  A terminated handle stays inspectable (``spec``, ``qid``)
    but every operation on it raises.
    """

    __slots__ = ("qid", "_session", "_spec", "_subscriptions", "_alive")

    def __init__(self, session: "Session", qid: int, spec: QuerySpec) -> None:
        self._session = session
        self.qid = qid
        self._spec = spec
        self._subscriptions: list[Subscription] = []
        self._alive = True

    # -- introspection -------------------------------------------------

    @property
    def spec(self) -> QuerySpec:
        """The spec currently installed (moves re-anchor it)."""
        return self._spec

    @property
    def alive(self) -> bool:
        return self._alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._alive else "terminated"
        return f"QueryHandle(qid={self.qid}, {state}, spec={self._spec!r})"

    # -- operations ----------------------------------------------------

    def _check_alive(self) -> None:
        if not self._alive:
            raise RuntimeError(f"query {self.qid} is terminated")

    def snapshot(self) -> list[ResultEntry]:
        """Current ordered result (ascending ``(dist, oid)``)."""
        self._check_alive()
        return self._session.snapshot(self.qid)

    def move(self, point: Point) -> list[ResultEntry]:
        """Re-anchor the query at ``point``; returns the new result.

        Semantically the Figure 3.9 query move (termination +
        re-insertion); subscribers on this handle receive the resulting
        delta (old result vs new result, ``timestamp=None``).
        """
        self._check_alive()
        return self._session._move(self, point)

    def terminate(self) -> None:
        """Terminate the query; subscribers receive the draining delta
        and the handle's own subscriptions are then closed."""
        self._check_alive()
        self._session._terminate(self)

    def subscribe(
        self, callback: DeltaCallback, *, include_unchanged: bool = False
    ) -> Subscription:
        """Route **this query's** deltas to ``callback(timestamp, delta)``.

        The subscription lives on the hub's per-query topic, so the
        callback never sees (nor pays for) other queries' traffic.
        """
        self._check_alive()
        subscription = self._session.hub.subscribe_query(
            self.qid, callback, include_unchanged=include_unchanged
        )
        self._subscriptions.append(subscription)
        return subscription

    def close(self) -> None:
        """Close the handle's subscriptions (the query keeps running)."""
        for subscription in self._subscriptions:
            subscription.close()
        self._subscriptions.clear()

    def _drop(self) -> None:
        self._alive = False
        self.close()

    def __enter__(self) -> "QueryHandle":
        return self

    def __exit__(self, *_exc) -> None:
        if self._alive:
            self.terminate()
        else:
            self.close()


class Session:
    """A typed client session over one monitoring service.

    Args:
        monitor: the engine to drive — a bare
            :class:`repro.monitor.ContinuousMonitor` (wrapped in a fresh
            :class:`MonitoringService`) or an existing service (reusing
            its hub and monitor).  ``None`` builds a default
            :class:`repro.core.cpm.CPMMonitor`.
    """

    def __init__(
        self, monitor: ContinuousMonitor | MonitoringService | None = None
    ) -> None:
        if monitor is None:
            from repro.core.cpm import CPMMonitor

            monitor = CPMMonitor()
        if isinstance(monitor, MonitoringService):
            self.service = monitor
        else:
            self.service = MonitoringService(monitor)
        self._handles: dict[int, QueryHandle] = {}
        self._next_qid = 0

    # ------------------------------------------------------------------
    # Introspection / plumbing
    # ------------------------------------------------------------------

    @property
    def monitor(self) -> ContinuousMonitor:
        return self.service.monitor

    @property
    def hub(self):
        return self.service.hub

    def query_ids(self) -> list[int]:
        return self.monitor.query_ids()

    def handles(self) -> list[QueryHandle]:
        """The live handles, ascending qid."""
        return [self._handles[qid] for qid in sorted(self._handles)]

    def handle(self, qid: int) -> QueryHandle:
        return self._handles[qid]

    def snapshot(self, qid: int) -> list[ResultEntry]:
        return self.monitor.result(qid)

    # ------------------------------------------------------------------
    # Population / registration
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        self.service.load_objects(objects)

    def set_object_tags(self, tags) -> None:
        """Merge attribute tags into the monitor's object tag table.

        Tags are the predicate state of filtered subscriptions
        (:class:`repro.api.queries.FilteredKnnSpec`): a filtered query
        only ever returns objects carrying all of its tags.  Tag changes
        take effect from the next cycle that touches the object (see
        :meth:`repro.monitor.ContinuousMonitor.set_object_tags`).
        """
        self.service.set_object_tags(tags)

    def register(self, spec: QuerySpec, *, qid: int | None = None) -> QueryHandle:
        """Install a typed query and return its handle.

        ``qid`` is auto-assigned (smallest unused id at or above the
        session's counter) unless given.  Firehose subscribers receive
        the initial snapshot as an all-incoming delta; the handle's own
        subscribers attach afterwards, so their stream starts with the
        first post-install change (the initial result is returned by
        ``register`` itself, via :meth:`QueryHandle.snapshot`).
        """
        auto = qid is None
        if auto:
            # O(1) per registration: probe only the session's own handle
            # table.  A collision with an out-of-band install (a query
            # put on the monitor without this session) surfaces as the
            # engine's duplicate-install KeyError below and is resolved
            # with one full scan — the rare path pays, not every call.
            qid = self._next_qid
            while qid in self._handles:
                qid += 1
            self._next_qid = qid + 1
        elif qid in self._handles:
            raise KeyError(f"query {qid} is already registered")
        try:
            self._install(qid, spec)
        except KeyError:
            if not auto:
                raise
            qid = max(
                (q for q in (*self.monitor.query_ids(), *self._handles)),
                default=-1,
            ) + 1
            self._next_qid = qid + 1
            self._install(qid, spec)
        handle = QueryHandle(self, qid, spec)
        self._handles[qid] = handle
        return handle

    def _install(self, qid: int, spec: QuerySpec) -> None:
        if isinstance(spec, KnnSpec):
            # The universal path: works on every engine (sharded too) and
            # publishes the install delta through the service.
            self.service.install_query(qid, spec.point, spec.k)
        else:
            result = install_spec(self.monitor, qid, spec)
            if self.hub.has_subscribers:
                self.hub.publish(None, {qid: diff_results(qid, [], result)})

    # ------------------------------------------------------------------
    # Handle operations (the engine-facing halves)
    # ------------------------------------------------------------------

    def _move(self, handle: QueryHandle, point: Point) -> list[ResultEntry]:
        spec = handle.spec.moved_to(point)
        if isinstance(spec, KnnSpec):
            # The real Figure 3.9 move: a query-update-only cycle through
            # the service (delta capture and publication included).
            self.service.tick(
                (),
                (QueryUpdate(handle.qid, QueryUpdateKind.MOVE, point, spec.k),),
            )
        else:
            old = self.monitor.result(handle.qid)
            self.monitor.remove_query(handle.qid)
            result = install_spec(self.monitor, handle.qid, spec)
            if self.hub.has_subscribers:
                self.hub.publish(
                    None, {handle.qid: diff_results(handle.qid, old, result)}
                )
        handle._spec = spec
        return self.monitor.result(handle.qid)

    def _terminate(self, handle: QueryHandle) -> None:
        self.service.remove_query(handle.qid)
        self._handles.pop(handle.qid, None)
        handle._drop()

    # ------------------------------------------------------------------
    # Cycle processing (service pass-throughs)
    # ------------------------------------------------------------------

    def subscribe(self, callback: DeltaCallback, **kwargs) -> Subscription:
        """Hub subscription (firehose unless ``qids=`` narrows it)."""
        return self.hub.subscribe(callback, **kwargs)

    def tick(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
        *,
        timestamp: int | None = None,
    ) -> set[int]:
        changed = self.service.tick(
            object_updates, query_updates, timestamp=timestamp
        )
        self._reap(query_updates)
        return changed

    def tick_batch(self, batch: UpdateBatch) -> set[int]:
        changed = self.service.tick_batch(batch)
        self._reap(batch.query_updates)
        return changed

    def tick_flat(self, batch: FlatUpdateBatch) -> set[int]:
        changed = self.service.tick_flat(batch)
        self._reap(batch.query_updates)
        return changed

    def tick_report(self, batch: UpdateBatch | FlatUpdateBatch) -> TickReport:
        report = self.service.tick_report(batch)
        self._reap(batch.query_updates)
        return report

    def _reap(self, query_updates: Sequence[QueryUpdate]) -> None:
        """Drop handles whose queries a raw update stream terminated."""
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                handle = self._handles.pop(qu.qid, None)
                if handle is not None:
                    handle._drop()

    # ------------------------------------------------------------------
    # Workload replay (the engine's measurement loop, client-side)
    # ------------------------------------------------------------------

    def replay(
        self,
        workload,
        *,
        collect_results: bool = False,
        on_cycle=None,
        result_log: list | None = None,
    ):
        """Replay a materialized workload; returns the aggregated
        :class:`repro.engine.metrics.RunReport`.

        This is the paper's simulation loop (load, install, then one
        ``tick`` per timestamp with per-cycle timing and counter
        snapshots).  ``result_log`` (when ``collect_results``) receives
        the per-cycle ``{qid: result}`` tables, install snapshot first.
        """
        # Local import: keeps the api package importable without pulling
        # the metrics vocabulary in at load time.
        from repro.engine.metrics import CycleMetrics, RunReport
        import time

        monitor = self.monitor
        workload_spec = workload.spec
        report = RunReport(
            algorithm=monitor.name, n_queries=len(workload.initial_queries)
        )

        monitor.load_objects(workload.initial_objects.items())
        monitor.reset_stats()
        t0 = time.perf_counter()
        for qid, point in workload.initial_queries.items():
            self.register(KnnSpec(point=point, k=workload_spec.k), qid=qid)
        report.install_sec = time.perf_counter() - t0
        report.install_stats = monitor.stats.snapshot()

        if collect_results and result_log is not None:
            result_log.append(monitor.result_table())

        # Columnar replay: the materialized stream is transposed once
        # (memoized on the workload) and every cycle runs the monitors'
        # ``process_flat`` fast path — the row and columnar cycles are
        # pinned byte-identical, so results, changed sets and counters
        # match a ``tick_batch`` replay exactly.
        for batch in workload.flat_batches():
            monitor.reset_stats()
            t0 = time.perf_counter()
            changed = self.tick_flat(batch)
            elapsed = time.perf_counter() - t0
            metrics = CycleMetrics(
                timestamp=batch.timestamp,
                elapsed_sec=elapsed,
                stats=monitor.stats.snapshot(),
                object_updates=len(batch.oids),
                query_updates=len(batch.query_updates),
                results_changed=len(changed),
            )
            report.cycles.append(metrics)
            if collect_results and result_log is not None:
                result_log.append(monitor.result_table())
            if on_cycle is not None:
                on_cycle(metrics)
        return report

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self, *, close_monitor: bool = True) -> None:
        """Close every handle's subscriptions and — by default — the
        monitor's runtime resources (its ``close``, when it has one: the
        sharded executors do).  Queries stay installed either way.  A
        session that does *not* own its monitor (several sessions sharing
        one service, a host session handed to a socket server) passes
        ``close_monitor=False`` so only the owning session tears the
        engine down."""
        for handle in list(self._handles.values()):
            handle.close()
        if close_monitor:
            close = getattr(self.monitor, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def replay_workload(
    monitor: ContinuousMonitor | MonitoringService,
    workload,
    *,
    collect_results: bool = False,
    result_log: list | None = None,
    on_cycle=None,
):
    """One-shot replay of a workload into a monitor (or service).

    Builds a throwaway :class:`Session` (reusing the hub when handed a
    :class:`MonitoringService`) and runs :meth:`Session.replay`.
    ``result_log`` receives the per-cycle ``{qid: result}`` tables when
    ``collect_results`` is set (install snapshot first).
    """
    session = Session(monitor)
    return session.replay(
        workload,
        collect_results=collect_results,
        on_cycle=on_cycle,
        result_log=result_log,
    )
