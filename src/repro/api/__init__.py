"""The typed client API: sessions, handles and the wire protocol.

This package is *the* way programs talk to the monitor (ROADMAP: the
delta network transport and the wire-format ingestion source, unified):

* :mod:`repro.api.queries` — typed query specs
  (:class:`KnnSpec` / :class:`ConstrainedKnnSpec` / :class:`RangeSpec`);
* :mod:`repro.api.session` — the in-process client surface
  (:class:`Session` + :class:`QueryHandle` with per-query delta
  subscriptions);
* :mod:`repro.api.wire` — the versioned ndjson wire protocol (updates
  in, deltas out);
* :mod:`repro.api.server` — the socket server publishing subscribed
  deltas and accepting update/query frames;
* :mod:`repro.api.client` — the remote client mirroring the Session
  API over a socket.

Submodules are imported lazily (PEP 562, same pattern as
:mod:`repro.service`) so importing :mod:`repro.api` stays cheap and
cycle-free.
"""

from __future__ import annotations

_EXPORTS = {
    "KnnSpec": "repro.api.queries",
    "ConstrainedKnnSpec": "repro.api.queries",
    "RangeSpec": "repro.api.queries",
    "QuerySpec": "repro.api.queries",
    "install_spec": "repro.api.queries",
    "Session": "repro.api.session",
    "QueryHandle": "repro.api.session",
    "Client": "repro.api.client",
    "RemoteQueryHandle": "repro.api.client",
    "RemoteError": "repro.api.client",
    "ReconnectEvent": "repro.api.client",
    "ReconnectPolicy": "repro.api.retry",
    "MonitorSocketServer": "repro.api.server",
    "WIRE_VERSION": "repro.api.wire",
    "WireError": "repro.api.wire",
    "encode_frame": "repro.api.wire",
    "decode_frame": "repro.api.wire",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
