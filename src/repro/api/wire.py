"""The versioned ndjson wire protocol: updates in, deltas out.

One frame = one JSON object = one ``\\n``-terminated line.  Every frame
carries the protocol version under ``"v"`` and its type under ``"t"``;
decoding rejects unknown versions and unknown types up front, so a
future version can change any frame shape without silently corrupting
older peers (the versioning policy is documented in the README's
client-API section).

**v2** added the pub/sub vocabulary — attribute tags, filtered
subscriptions, the cold-start sync handshake and the slow-consumer lag
marker — and **v3** adds the telemetry vocabulary — the
``watch_metrics`` request plus server-pushed ``metrics`` snapshots and
``alert`` events.  Both bumps are additive (new frame types only, no
reshapes), so v1 and v2 lines still decode
(:data:`SUPPORTED_VERSIONS`); everything this module *encodes* is
stamped v3, which a strict older peer rejects loudly at the first
frame.

The frame vocabulary mirrors the in-process client surface
(:mod:`repro.api.session`) plus the ingestion vocabulary
(:mod:`repro.updates`):

====================  =========  ==========================================
frame                 direction  meaning
====================  =========  ==========================================
:class:`Hello`        c -> s     optional client introduction
:class:`Welcome`      s -> c     greeting; lists the server's versions
:class:`Updates`      c -> s     stage object location updates
:class:`QueryOp`      c -> s     stage a raw query update (insert/move/term)
:class:`Tick`         c -> s     close the staged cycle (timestamp label)
:class:`Ticked`       s -> c     cycle outcome: changed query ids
:class:`Register`     c -> s     install a typed query spec
:class:`Registered`   s -> c     its qid + initial result snapshot
:class:`Move`         c -> s     re-anchor a registered query
:class:`Terminate`    c -> s     terminate a registered query
:class:`GetSnapshot`  c -> s     request a query's current result
:class:`Snapshot`     s -> c     the ordered result table of one query
:class:`Subscribe`    c -> s     route this query's deltas to me
:class:`Unsubscribe`  c -> s     stop routing them
:class:`Delta`        s -> c     one per-query result delta
:class:`Tags`         c -> s     merge object attribute tags (v2)
:class:`Sync`         c -> s     cold-start: stream current state (v2)
:class:`SyncObjects`  s -> c     one chunk of the object table (v2)
:class:`SyncQuery`    s -> c     one registered query + its result (v2)
:class:`SyncDone`     s -> c     cold-start stream complete (v2)
:class:`Lagged`       s -> c     deltas dropped by slow-consumer policy (v2)
:class:`WatchMetrics` c -> s     push telemetry snapshots to me (v3)
:class:`Metrics`      s -> c     one flat registry snapshot (v3)
:class:`Alert`        s -> c     one health alert event (v3)
:class:`Ok`           s -> c     generic acknowledgement (op echoed)
:class:`Error`        s -> c     request failed (message echoed)
:class:`Bye`          both       orderly shutdown
====================  =========  ==========================================

Encoding is canonical: explicit key order, compact separators, floats
serialized by ``repr`` (via ``json``) — so ``encode(decode(line)) ==
line`` for every frame this module produced, which is what lets the
tests (and paranoid clients) compare delta streams byte for byte.

Points are ``[x, y]``; result entries are ``[dist, oid]``; object
update rows are ``[oid, old, new]`` with ``null`` for the
appearance/disappearance side, exactly the Section 3 tuple.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from repro.api.queries import QuerySpec, spec_from_wire, spec_to_wire
from repro.geometry.points import Point
from repro.service.deltas import ResultDelta
from repro.updates import FlatUpdateBatch, ObjectUpdate, QueryUpdate, QueryUpdateKind

#: the protocol version this module speaks (stamps every encoded frame).
WIRE_VERSION = 3

#: versions :func:`decode_frame` accepts.  v2 (pub/sub) and v3
#: (telemetry) are additive over v1 (new frame types only, no
#: reshapes), so older lines still parse.
SUPPORTED_VERSIONS = (1, 2, 3)

ResultEntry = tuple[float, int]


class WireError(ValueError):
    """A frame could not be decoded (bad json, version, type or shape)."""


# ----------------------------------------------------------------------
# Frame types
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Hello:
    client: str = ""


@dataclass(frozen=True, slots=True)
class Welcome:
    server: str = ""
    versions: tuple[int, ...] = (WIRE_VERSION,)


@dataclass(frozen=True, slots=True)
class Updates:
    """Object location updates staged for the next :class:`Tick`."""

    updates: tuple[ObjectUpdate, ...]


@dataclass(frozen=True, slots=True)
class QueryOp:
    """A raw :class:`repro.updates.QueryUpdate` staged for the next tick
    (the ingestion vocabulary; typed registration uses :class:`Register`)."""

    update: QueryUpdate


@dataclass(frozen=True, slots=True)
class Tick:
    timestamp: int | None = None


@dataclass(frozen=True, slots=True)
class Ticked:
    timestamp: int | None
    changed: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Register:
    spec: QuerySpec
    qid: int | None = None
    watch: bool = True


@dataclass(frozen=True, slots=True)
class Registered:
    qid: int
    result: tuple[ResultEntry, ...]


@dataclass(frozen=True, slots=True)
class Move:
    qid: int
    point: Point


@dataclass(frozen=True, slots=True)
class Terminate:
    qid: int


@dataclass(frozen=True, slots=True)
class GetSnapshot:
    qid: int


@dataclass(frozen=True, slots=True)
class Snapshot:
    qid: int
    result: tuple[ResultEntry, ...]


@dataclass(frozen=True, slots=True)
class Subscribe:
    qid: int
    include_unchanged: bool = False


@dataclass(frozen=True, slots=True)
class Unsubscribe:
    qid: int


@dataclass(frozen=True, slots=True)
class Delta:
    """One :class:`repro.service.deltas.ResultDelta`, stamped with its
    cycle timestamp (``None`` = outside the replay loop: installs,
    immediate moves/terminations)."""

    timestamp: int | None
    delta: ResultDelta


@dataclass(frozen=True, slots=True)
class Tags:
    """Merge object attribute tags (the filtered-subscription predicate
    state).  Rows are ``[oid, [tag, ...]]``; an empty tag list removes
    the object's tags."""

    rows: tuple[tuple[int, tuple[str, ...]], ...]


@dataclass(frozen=True, slots=True)
class Sync:
    """Cold-start request: stream the server's current state.

    The server answers with zero or more :class:`SyncObjects` chunks
    (iff ``objects`` is set), one :class:`SyncQuery` per query this
    connection registered, then :class:`SyncDone`.  ``watch`` upgrades
    every synced query to a subscribed one in the same breath."""

    objects: bool = False
    watch: bool = True


@dataclass(frozen=True, slots=True)
class SyncObjects:
    """One chunk of the object table.  Rows are
    ``[oid, [x, y], tags-or-null]``."""

    rows: tuple[tuple[int, Point, tuple[str, ...] | None], ...]


@dataclass(frozen=True, slots=True)
class SyncQuery:
    """One registered query: its id, spec and current ordered result."""

    qid: int
    spec: QuerySpec
    result: tuple[ResultEntry, ...]


@dataclass(frozen=True, slots=True)
class SyncDone:
    """Cold-start stream complete (counts echoed for sanity checks)."""

    queries: int
    objects: int


@dataclass(frozen=True, slots=True)
class Lagged:
    """The slow-consumer policy dropped ``dropped`` delta deliveries for
    this connection; the client should re-snapshot what it watches."""

    dropped: int


@dataclass(frozen=True, slots=True)
class WatchMetrics:
    """Start (or refresh) telemetry streaming on this connection.

    ``interval_ms == 0`` requests a single immediate :class:`Metrics`
    snapshot; a positive interval subscribes to periodic snapshots.
    ``alerts`` additionally routes :class:`Alert` frames here."""

    interval_ms: int = 0
    alerts: bool = True


@dataclass(frozen=True, slots=True)
class Metrics:
    """One flat registry snapshot.  Rows are ``[series, value]`` in
    sorted series order; values keep their JSON number type (int stays
    int) so a round-trip re-encodes byte-identically."""

    timestamp: float
    rows: tuple[tuple[str, int | float], ...]


@dataclass(frozen=True, slots=True)
class Alert:
    """One health alert event (tier, rule, message, trigger value)."""

    level: str
    rule: str
    message: str
    value: float = 0.0
    cycle: int = 0
    timestamp: float = 0.0


@dataclass(frozen=True, slots=True)
class Ok:
    op: str
    qid: int | None = None


@dataclass(frozen=True, slots=True)
class Error:
    message: str


@dataclass(frozen=True, slots=True)
class Bye:
    pass


Frame = Union[
    Hello, Welcome, Updates, QueryOp, Tick, Ticked, Register, Registered,
    Move, Terminate, GetSnapshot, Snapshot, Subscribe, Unsubscribe, Delta,
    Tags, Sync, SyncObjects, SyncQuery, SyncDone, Lagged,
    WatchMetrics, Metrics, Alert,
    Ok, Error, Bye,
]


# ----------------------------------------------------------------------
# Scalar helpers
# ----------------------------------------------------------------------


def _point(raw) -> Point:
    x, y = raw
    return (float(x), float(y))


def _opt_point(raw) -> Point | None:
    return None if raw is None else _point(raw)


def _number(raw) -> int | float:
    """A JSON number, *without* coercing int to float — telemetry
    counters stay ints so canonical re-encode is byte-identical."""
    if type(raw) is int or type(raw) is float:
        return raw
    raise TypeError(f"not a number: {raw!r}")


def _entries(raw) -> tuple[ResultEntry, ...]:
    return tuple((float(d), int(oid)) for d, oid in raw)


def _entries_out(entries) -> list[list]:
    return [[d, oid] for d, oid in entries]


def _update_row(upd: ObjectUpdate) -> list:
    return [
        upd.oid,
        None if upd.old is None else [upd.old[0], upd.old[1]],
        None if upd.new is None else [upd.new[0], upd.new[1]],
    ]


def _query_op_out(qu: QueryUpdate) -> dict:
    obj: dict = {"qid": qu.qid, "op": qu.kind.value}
    if qu.point is not None:
        obj["point"] = [qu.point[0], qu.point[1]]
    if qu.k is not None:
        obj["k"] = qu.k
    return obj


def _query_op_in(obj: dict) -> QueryUpdate:
    k = obj.get("k")
    return QueryUpdate(
        int(obj["qid"]),
        QueryUpdateKind(obj["op"]),
        _opt_point(obj.get("point")),
        None if k is None else int(k),
    )


def _delta_out(delta: ResultDelta) -> dict:
    return {
        "qid": delta.qid,
        "in": _entries_out(delta.incoming),
        "out": _entries_out(delta.outgoing),
        "reordered": delta.reordered,
        "result": _entries_out(delta.result),
        "terminated": delta.terminated,
    }


def _delta_in(obj: dict) -> ResultDelta:
    return ResultDelta(
        qid=int(obj["qid"]),
        incoming=_entries(obj["in"]),
        outgoing=_entries(obj["out"]),
        reordered=bool(obj["reordered"]),
        result=_entries(obj["result"]),
        terminated=bool(obj["terminated"]),
    )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _body(frame: Frame) -> tuple[str, dict]:
    if type(frame) is Delta:
        return "delta", {"ts": frame.timestamp, **_delta_out(frame.delta)}
    if type(frame) is Updates:
        return "updates", {"rows": [_update_row(u) for u in frame.updates]}
    if type(frame) is Tick:
        return "tick", {"ts": frame.timestamp}
    if type(frame) is Ticked:
        return "ticked", {"ts": frame.timestamp, "changed": list(frame.changed)}
    if type(frame) is QueryOp:
        return "query", _query_op_out(frame.update)
    if type(frame) is Register:
        return "register", {
            "spec": spec_to_wire(frame.spec),
            "qid": frame.qid,
            "watch": frame.watch,
        }
    if type(frame) is Registered:
        return "registered", {
            "qid": frame.qid,
            "result": _entries_out(frame.result),
        }
    if type(frame) is Move:
        return "move", {"qid": frame.qid, "point": [frame.point[0], frame.point[1]]}
    if type(frame) is Terminate:
        return "terminate", {"qid": frame.qid}
    if type(frame) is GetSnapshot:
        return "get_snapshot", {"qid": frame.qid}
    if type(frame) is Snapshot:
        return "snapshot", {"qid": frame.qid, "result": _entries_out(frame.result)}
    if type(frame) is Subscribe:
        return "subscribe", {
            "qid": frame.qid,
            "include_unchanged": frame.include_unchanged,
        }
    if type(frame) is Unsubscribe:
        return "unsubscribe", {"qid": frame.qid}
    if type(frame) is Tags:
        return "tags", {
            "rows": [[oid, list(tags)] for oid, tags in frame.rows]
        }
    if type(frame) is Sync:
        return "sync", {"objects": frame.objects, "watch": frame.watch}
    if type(frame) is SyncObjects:
        return "sync_objects", {
            "rows": [
                [oid, [pt[0], pt[1]], None if tags is None else list(tags)]
                for oid, pt, tags in frame.rows
            ]
        }
    if type(frame) is SyncQuery:
        return "sync_query", {
            "qid": frame.qid,
            "spec": spec_to_wire(frame.spec),
            "result": _entries_out(frame.result),
        }
    if type(frame) is SyncDone:
        return "sync_done", {"queries": frame.queries, "objects": frame.objects}
    if type(frame) is Lagged:
        return "lagged", {"dropped": frame.dropped}
    if type(frame) is WatchMetrics:
        return "watch_metrics", {
            "interval_ms": frame.interval_ms,
            "alerts": frame.alerts,
        }
    if type(frame) is Metrics:
        return "metrics", {
            "ts": frame.timestamp,
            "rows": [[name, value] for name, value in frame.rows],
        }
    if type(frame) is Alert:
        return "alert", {
            "level": frame.level,
            "rule": frame.rule,
            "message": frame.message,
            "value": frame.value,
            "cycle": frame.cycle,
            "ts": frame.timestamp,
        }
    if type(frame) is Hello:
        return "hello", {"client": frame.client}
    if type(frame) is Welcome:
        return "welcome", {"server": frame.server, "versions": list(frame.versions)}
    if type(frame) is Ok:
        return "ok", {"op": frame.op, "qid": frame.qid}
    if type(frame) is Error:
        return "error", {"message": frame.message}
    if type(frame) is Bye:
        return "bye", {}
    raise TypeError(f"not a wire frame: {frame!r}")


def encode_frame(frame: Frame) -> str:
    """One canonical ndjson line (no trailing newline)."""
    kind, body = _body(frame)
    obj = {"v": WIRE_VERSION, "t": kind}
    obj.update(body)
    return json.dumps(obj, separators=(",", ":"))


def encode_updates_flat(batch: FlatUpdateBatch) -> str:
    """The :class:`Updates` frame line read straight from a columnar
    :class:`repro.updates.FlatUpdateBatch` — no per-row
    :class:`ObjectUpdate` objects are built.

    Byte-identical to
    ``encode_frame(Updates(updates=batch.to_object_updates()))``: the
    coordinate columns hold the same floats the row objects would carry
    (``json`` serializes them by ``repr`` either way) and the key order
    is the canonical ``v``/``t``/``rows``.
    """
    rows: list[list] = []
    append = rows.append
    for oid, ox, oy, nx, ny, ap, dis in zip(
        batch.oids,
        batch.old_xs,
        batch.old_ys,
        batch.new_xs,
        batch.new_ys,
        batch.appear,
        batch.disappear,
    ):
        append([oid, None if ap else [ox, oy], None if dis else [nx, ny]])
    return json.dumps(
        {"v": WIRE_VERSION, "t": "updates", "rows": rows},
        separators=(",", ":"),
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def decode_frame(line: str | bytes) -> Frame:
    """Parse one frame line; raises :class:`WireError` on anything off.

    Unknown versions are rejected *before* the type is inspected — a v2
    peer talking to a v1 endpoint fails loudly at the first frame.
    """
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError(f"frame is not an object: {obj!r}")
    version = obj.get("v")
    if version not in SUPPORTED_VERSIONS:
        raise WireError(
            f"unsupported wire version {version!r} "
            f"(this endpoint speaks {list(SUPPORTED_VERSIONS)})"
        )
    kind = obj.get("t")
    try:
        if kind == "delta":
            return Delta(timestamp=obj["ts"], delta=_delta_in(obj))
        if kind == "updates":
            rows = []
            for oid, old, new in obj["rows"]:
                rows.append(
                    ObjectUpdate(int(oid), _opt_point(old), _opt_point(new))
                )
            return Updates(updates=tuple(rows))
        if kind == "tick":
            ts = obj["ts"]
            return Tick(timestamp=None if ts is None else int(ts))
        if kind == "ticked":
            ts = obj["ts"]
            return Ticked(
                timestamp=None if ts is None else int(ts),
                changed=tuple(int(q) for q in obj["changed"]),
            )
        if kind == "query":
            return QueryOp(update=_query_op_in(obj))
        if kind == "register":
            qid = obj.get("qid")
            return Register(
                spec=spec_from_wire(obj["spec"]),
                qid=None if qid is None else int(qid),
                watch=bool(obj.get("watch", True)),
            )
        if kind == "registered":
            return Registered(qid=int(obj["qid"]), result=_entries(obj["result"]))
        if kind == "move":
            return Move(qid=int(obj["qid"]), point=_point(obj["point"]))
        if kind == "terminate":
            return Terminate(qid=int(obj["qid"]))
        if kind == "get_snapshot":
            return GetSnapshot(qid=int(obj["qid"]))
        if kind == "snapshot":
            return Snapshot(qid=int(obj["qid"]), result=_entries(obj["result"]))
        if kind == "subscribe":
            return Subscribe(
                qid=int(obj["qid"]),
                include_unchanged=bool(obj.get("include_unchanged", False)),
            )
        if kind == "unsubscribe":
            return Unsubscribe(qid=int(obj["qid"]))
        if kind == "tags":
            return Tags(
                rows=tuple(
                    (int(oid), tuple(str(t) for t in tags))
                    for oid, tags in obj["rows"]
                )
            )
        if kind == "sync":
            return Sync(
                objects=bool(obj.get("objects", False)),
                watch=bool(obj.get("watch", True)),
            )
        if kind == "sync_objects":
            return SyncObjects(
                rows=tuple(
                    (
                        int(oid),
                        _point(pt),
                        None if tags is None else tuple(str(t) for t in tags),
                    )
                    for oid, pt, tags in obj["rows"]
                )
            )
        if kind == "sync_query":
            return SyncQuery(
                qid=int(obj["qid"]),
                spec=spec_from_wire(obj["spec"]),
                result=_entries(obj["result"]),
            )
        if kind == "sync_done":
            return SyncDone(
                queries=int(obj["queries"]), objects=int(obj["objects"])
            )
        if kind == "lagged":
            return Lagged(dropped=int(obj["dropped"]))
        if kind == "watch_metrics":
            return WatchMetrics(
                interval_ms=int(obj.get("interval_ms", 0)),
                alerts=bool(obj.get("alerts", True)),
            )
        if kind == "metrics":
            return Metrics(
                timestamp=_number(obj["ts"]),
                rows=tuple(
                    (str(name), _number(value)) for name, value in obj["rows"]
                ),
            )
        if kind == "alert":
            return Alert(
                level=str(obj["level"]),
                rule=str(obj["rule"]),
                message=str(obj["message"]),
                value=_number(obj.get("value", 0.0)),
                cycle=int(obj.get("cycle", 0)),
                timestamp=_number(obj.get("ts", 0.0)),
            )
        if kind == "hello":
            return Hello(client=str(obj.get("client", "")))
        if kind == "welcome":
            return Welcome(
                server=str(obj.get("server", "")),
                versions=tuple(int(v) for v in obj.get("versions", ())),
            )
        if kind == "ok":
            qid = obj.get("qid")
            return Ok(op=str(obj["op"]), qid=None if qid is None else int(qid))
        if kind == "error":
            return Error(message=str(obj["message"]))
        if kind == "bye":
            return Bye()
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad {kind!r} frame: {exc}") from exc
    raise WireError(f"unknown frame type {kind!r}")


def encode_delta(timestamp: int | None, delta: ResultDelta) -> str:
    """Shorthand used by publishers: the :class:`Delta` frame line."""
    return encode_frame(Delta(timestamp=timestamp, delta=delta))
