"""Socket transport: publish subscribed deltas, accept update frames.

A :class:`MonitorSocketServer` exposes one
:class:`repro.api.session.Session` over TCP speaking the ndjson wire
protocol (:mod:`repro.api.wire`).  Each connection gets a reader thread;
frames on one connection are processed strictly in arrival order, and
every engine-touching operation takes the server-wide :attr:`lock` — the
monitoring cycle itself stays single-threaded, the transport only
serializes *around* it.  A host program that also drives the session
directly (e.g. a server-side feed) must hold the same lock, or use
:meth:`tick`.

Delta delivery rides the hub's per-query routing: a ``subscribe`` frame
registers a per-qid subscription whose callback encodes the delta and
writes it to that connection.  Because the deltas produced by a ``tick``
frame are published *before* the ``ticked`` reply is written — and TCP
preserves order — a client has received every delta of a cycle by the
time it sees the cycle's ``ticked`` frame.  That ordering is what makes
remote delta streams byte-comparable with in-process runs.
"""

from __future__ import annotations

import socket
import threading

from repro.api import wire
from repro.api.session import Session
from repro.service.subscriptions import Subscription
from repro.updates import QueryUpdateKind


class _Connection:
    """Server-side state of one client connection."""

    def __init__(self, server: "MonitorSocketServer", sock: socket.socket) -> None:
        self.server = server
        self.sock = sock
        self.reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self.write_lock = threading.Lock()
        #: qid -> hub subscription feeding this connection.
        self.subscriptions: dict[int, Subscription] = {}
        #: updates staged by ``updates`` / ``query`` frames until ``tick``.
        self.staged_objects: list = []
        self.staged_queries: list = []
        self.closed = False

    # -- writing -------------------------------------------------------

    def send(self, frame: wire.Frame) -> None:
        data = (wire.encode_frame(frame) + "\n").encode("utf-8")
        try:
            with self.write_lock:
                self.sock.sendall(data)
        except OSError:
            self.closed = True

    def deliver(self, timestamp: int | None, delta) -> None:
        """Hub callback: one subscribed delta out to the client."""
        self.send(wire.Delta(timestamp=timestamp, delta=delta))

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for subscription in self.subscriptions.values():
            subscription.close()
        self.subscriptions.clear()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class MonitorSocketServer:
    """Serves one session to remote wire-protocol clients.

    Args:
        session: the session (and therefore monitor + hub) to expose.
        host/port: bind address; port 0 picks a free port (see
            :attr:`address` after :meth:`start`).
        name: server string echoed in the ``welcome`` frame.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "repro-monitor",
    ) -> None:
        self.session = session
        self.name = name
        #: guards every engine-touching operation (register/tick/...).
        self.lock = threading.RLock()
        self._host = host
        self._port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[_Connection] = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._sock is not None:
            raise RuntimeError("server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(16)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="monitor-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener and every connection."""
        self._stopping.set()
        if self._sock is not None:
            try:
                # Wakes a blocked accept() (close alone does not, on
                # Linux); ENOTCONN on platforms where it would have.
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        for conn in list(self._connections):
            conn.close()
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "MonitorSocketServer":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Host-side driving
    # ------------------------------------------------------------------

    def tick(self, object_updates, query_updates=(), *, timestamp=None):
        """Advance the session one cycle under the server lock (for host
        programs feeding updates server-side while clients subscribe)."""
        with self.lock:
            return self.session.tick(
                object_updates, query_updates, timestamp=timestamp
            )

    # ------------------------------------------------------------------
    # Accept / per-connection loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                client_sock, _addr = self._sock.accept()
            except OSError:
                break
            conn = _Connection(self, client_sock)
            self._connections.append(conn)
            conn.send(
                wire.Welcome(server=self.name, versions=wire.SUPPORTED_VERSIONS)
            )
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="monitor-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            for line in conn.reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = wire.decode_frame(line)
                except wire.WireError as exc:
                    conn.send(wire.Error(message=str(exc)))
                    break
                if type(frame) is wire.Bye:
                    conn.send(wire.Bye())
                    break
                try:
                    self._handle(conn, frame)
                except Exception as exc:  # app errors keep the connection
                    conn.send(wire.Error(message=f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
            try:
                self._connections.remove(conn)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    def _subscribe(
        self, conn: _Connection, qid: int, include_unchanged: bool
    ) -> None:
        existing = conn.subscriptions.get(qid)
        if existing is not None:
            if existing.include_unchanged == include_unchanged:
                return
            # Re-subscribing with a different filter replaces the old
            # registration (e.g. upgrading a register-time watch to an
            # include-unchanged stream).
            existing.close()
        conn.subscriptions[qid] = self.session.hub.subscribe_query(
            qid, conn.deliver, include_unchanged=include_unchanged
        )

    def _handle(self, conn: _Connection, frame: wire.Frame) -> None:
        session = self.session
        kind = type(frame)
        if kind is wire.Updates:
            conn.staged_objects.extend(frame.updates)
            return
        if kind is wire.QueryOp:
            conn.staged_queries.append(frame.update)
            return
        if kind is wire.Tick:
            with self.lock:
                changed = session.tick(
                    conn.staged_objects,
                    conn.staged_queries,
                    timestamp=frame.timestamp,
                )
            # Terminated-by-stream queries no longer route anywhere; reap
            # their connection subscriptions too.  Only a TERMINATE kind
            # qualifies (a raw MOVE/INSERT leaves the query alive), and
            # only if the query really ended the cycle uninstalled (a
            # terminate + re-insert within one batch keeps it).
            if conn.staged_queries:
                live = set(session.query_ids())
                for qu in conn.staged_queries:
                    if (
                        qu.kind is QueryUpdateKind.TERMINATE
                        and qu.qid in conn.subscriptions
                        and qu.qid not in live
                    ):
                        conn.subscriptions.pop(qu.qid).close()
            conn.staged_objects = []
            conn.staged_queries = []
            conn.send(
                wire.Ticked(
                    timestamp=frame.timestamp, changed=tuple(sorted(changed))
                )
            )
            return
        if kind is wire.Register:
            with self.lock:
                handle = session.register(frame.spec, qid=frame.qid)
                result = tuple(handle.snapshot())
                if frame.watch:
                    self._subscribe(conn, handle.qid, include_unchanged=False)
            conn.send(wire.Registered(qid=handle.qid, result=result))
            return
        if kind is wire.Move:
            with self.lock:
                result = session.handle(frame.qid).move(frame.point)
            conn.send(wire.Snapshot(qid=frame.qid, result=tuple(result)))
            return
        if kind is wire.Terminate:
            with self.lock:
                # Terminate first so the draining delta still routes to
                # this connection, then drop the dead topic.
                session.handle(frame.qid).terminate()
                subscription = conn.subscriptions.pop(frame.qid, None)
                if subscription is not None:
                    subscription.close()
            conn.send(wire.Ok(op="terminate", qid=frame.qid))
            return
        if kind is wire.GetSnapshot:
            with self.lock:
                result = tuple(session.snapshot(frame.qid))
            conn.send(wire.Snapshot(qid=frame.qid, result=result))
            return
        if kind is wire.Subscribe:
            with self.lock:
                self._subscribe(conn, frame.qid, frame.include_unchanged)
            conn.send(wire.Ok(op="subscribe", qid=frame.qid))
            return
        if kind is wire.Unsubscribe:
            subscription = conn.subscriptions.pop(frame.qid, None)
            if subscription is not None:
                subscription.close()
            conn.send(wire.Ok(op="unsubscribe", qid=frame.qid))
            return
        if kind is wire.Hello:
            return  # the welcome already went out on accept
        raise wire.WireError(
            f"frame {wire.encode_frame(frame)!r} is not valid client->server"
        )
