"""Socket transport: publish subscribed deltas, accept update frames.

A :class:`MonitorSocketServer` exposes one
:class:`repro.api.session.Session` over TCP speaking the ndjson wire
protocol (:mod:`repro.api.wire`).  Each connection gets a reader thread;
frames on one connection are processed strictly in arrival order, and
every engine-touching operation takes the server-wide :attr:`lock` — the
monitoring cycle itself stays single-threaded, the transport only
serializes *around* it.  A host program that also drives the session
directly (e.g. a server-side feed) must hold the same lock, or use
:meth:`tick`.

Delta delivery rides the hub's per-query routing: a ``subscribe`` frame
registers a per-qid subscription whose callback *enqueues* the delta on
the connection's bounded outbox (:class:`repro.service.subscriptions.
FanoutQueue`); a per-connection writer thread encodes and sends.  The
hub's publish loop therefore never blocks on a socket — a stalled
client costs O(1) per delta until its outbox fills, at which point the
server's :class:`SlowConsumerPolicy` fires (disconnect the laggard, or
drop its queued deltas and send a ``lagged`` marker) instead of
extending ``publish_sec`` for everyone else.

Every outbound frame of one connection flows through the same FIFO
outbox, so the v1 ordering contract survives the async tier: the deltas
produced by a ``tick`` frame are enqueued *before* the ``ticked`` reply
— and TCP preserves order — so a client has received every delta of a
cycle by the time it sees the cycle's ``ticked`` frame.  That ordering
is what makes remote delta streams byte-comparable with in-process
runs.
"""

from __future__ import annotations

import socket
import threading
from collections.abc import Callable

from repro.api import wire
from repro.api.session import Session
from repro.service.subscriptions import (
    FanoutQueue,
    SlowConsumerPolicy,
    Subscription,
)
from repro.updates import QueryUpdateKind

#: rows per ``sync_objects`` chunk of the cold-start stream.
SYNC_CHUNK = 512


class _Connection:
    """Server-side state of one client connection."""

    def __init__(
        self,
        server: "MonitorSocketServer",
        sock: socket.socket,
        index: int = 0,
    ) -> None:
        self.server = server
        self.sock = sock
        #: accept-order ordinal of this connection (fault-hook lane key).
        self.index = index
        #: outbound frames written so far (fault-hook ordinal).
        self.frames_sent = 0
        self.reader = sock.makefile("r", encoding="utf-8", newline="\n")
        #: qid -> hub subscription feeding this connection.
        self.subscriptions: dict[int, Subscription] = {}
        #: updates staged by ``updates`` / ``query`` frames until ``tick``.
        self.staged_objects: list = []
        self.staged_queries: list = []
        self.closed = False
        #: bounded outbound queue; its writer thread owns the send side.
        #: Deltas ride as ``(timestamp, delta)`` pairs and are encoded on
        #: the writer thread, keeping the hub's enqueue O(1) regardless
        #: of result width.
        self.outbox = FanoutQueue(
            self._write_item,
            limit=server.outbound_limit,
            policy=server.slow_consumer,
            lag_factory=lambda dropped: wire.Lagged(dropped=dropped),
            on_overflow=lambda: self.close(flush=False),
            name=f"conn-{sock.fileno()}",
        )

    # -- writing -------------------------------------------------------

    def _write_item(self, item) -> None:
        """Writer-thread sink: encode (late, for deltas) and send."""
        hook = self.server.fault_hook
        if hook is not None and hook(self.index, self.frames_sent):
            # Injected network drop: cut the transport abruptly — no
            # ``bye`` — so the peer sees exactly what a mid-stream
            # failure looks like.  The sendall below then raises, which
            # marks the outbox broken, and the reader thread's EOF tears
            # the connection down through the normal path.
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
        self.frames_sent += 1
        if type(item) is tuple:
            line = wire.encode_delta(item[0], item[1])
        else:
            line = wire.encode_frame(item)
        self.sock.sendall((line + "\n").encode("utf-8"))

    def send(self, frame: wire.Frame) -> None:
        self.outbox.put(frame)

    def deliver(self, timestamp: int | None, delta) -> None:
        """Hub callback: enqueue one subscribed delta (droppable — the
        DROP_AND_SNAPSHOT policy may shed it under backpressure)."""
        self.outbox.put((timestamp, delta), droppable=True)

    # -- teardown ------------------------------------------------------

    def close(self, *, flush: bool = True) -> None:
        """Tear the connection down.  Orderly closes flush the outbox
        first so queued replies (``error``, ``bye``) still reach the
        peer; overflow disconnects skip the flush — the peer is stalled,
        waiting on it would be the very head-of-line blocking the policy
        exists to prevent."""
        if self.closed:
            return
        self.closed = True
        for subscription in self.subscriptions.values():
            subscription.close()
        self.subscriptions.clear()
        if flush:
            self.outbox.join(timeout=2.0)
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        # The shutdown above errors out a writer blocked in sendall.
        self.outbox.close(flush=False, timeout=1.0)


class MonitorSocketServer:
    """Serves one session to remote wire-protocol clients.

    Args:
        session: the session (and therefore monitor + hub) to expose.
        host/port: bind address; port 0 picks a free port (see
            :attr:`address` after :meth:`start`).
        name: server string echoed in the ``welcome`` frame.
        outbound_limit: per-connection outbox bound (frames) before the
            slow-consumer policy fires.
        slow_consumer: what happens to a connection that cannot drain
            its outbox (see :class:`SlowConsumerPolicy`).
        sndbuf: ``SO_SNDBUF`` applied to accepted sockets; small values
            make kernel buffering deterministic for backpressure tests.
        fault_hook: chaos-test seam — ``hook(conn_index, frame_seq) ->
            bool``, called on the writer thread before every outbound
            frame with the connection's accept ordinal and per-connection
            frame ordinal; returning ``True`` cuts that connection's
            transport abruptly (no ``bye``), simulating a network drop
            (see :meth:`repro.testing.faults.FaultPlan.connection_hook`).
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "repro-monitor",
        outbound_limit: int = 1024,
        slow_consumer: SlowConsumerPolicy = SlowConsumerPolicy.DISCONNECT,
        sndbuf: int | None = None,
        fault_hook: Callable[[int, int], bool] | None = None,
    ) -> None:
        self.session = session
        self.name = name
        self.outbound_limit = outbound_limit
        self.slow_consumer = slow_consumer
        self.sndbuf = sndbuf
        self.fault_hook = fault_hook
        #: accepted connections so far (assigns fault-hook lane keys).
        self._accepted = 0
        #: guards every engine-touching operation (register/tick/...).
        self.lock = threading.RLock()
        self._host = host
        self._port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[_Connection] = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._sock is not None:
            raise RuntimeError("server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(16)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="monitor-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener and every connection."""
        self._stopping.set()
        if self._sock is not None:
            try:
                # Wakes a blocked accept() (close alone does not, on
                # Linux); ENOTCONN on platforms where it would have.
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        for conn in list(self._connections):
            conn.close()
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "MonitorSocketServer":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Host-side driving
    # ------------------------------------------------------------------

    def tick(self, object_updates, query_updates=(), *, timestamp=None):
        """Advance the session one cycle under the server lock (for host
        programs feeding updates server-side while clients subscribe)."""
        with self.lock:
            return self.session.tick(
                object_updates, query_updates, timestamp=timestamp
            )

    # ------------------------------------------------------------------
    # Accept / per-connection loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                client_sock, _addr = self._sock.accept()
            except OSError:
                break
            client_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.sndbuf is not None:
                client_sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf
                )
            conn = _Connection(self, client_sock, index=self._accepted)
            self._accepted += 1
            self._connections.append(conn)
            conn.send(
                wire.Welcome(server=self.name, versions=wire.SUPPORTED_VERSIONS)
            )
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="monitor-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            for line in conn.reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = wire.decode_frame(line)
                except wire.WireError as exc:
                    conn.send(wire.Error(message=str(exc)))
                    break
                if type(frame) is wire.Bye:
                    conn.send(wire.Bye())
                    break
                try:
                    self._handle(conn, frame)
                except Exception as exc:  # app errors keep the connection
                    conn.send(wire.Error(message=f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
            try:
                self._connections.remove(conn)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    def _subscribe(
        self, conn: _Connection, qid: int, include_unchanged: bool
    ) -> None:
        existing = conn.subscriptions.get(qid)
        if existing is not None:
            if existing.include_unchanged == include_unchanged:
                return
            # Re-subscribing with a different filter replaces the old
            # registration (e.g. upgrading a register-time watch to an
            # include-unchanged stream).
            existing.close()
        conn.subscriptions[qid] = self.session.hub.subscribe_query(
            qid, conn.deliver, include_unchanged=include_unchanged
        )

    def _handle(self, conn: _Connection, frame: wire.Frame) -> None:
        session = self.session
        kind = type(frame)
        if kind is wire.Updates:
            conn.staged_objects.extend(frame.updates)
            return
        if kind is wire.QueryOp:
            conn.staged_queries.append(frame.update)
            return
        if kind is wire.Tick:
            with self.lock:
                changed = session.tick(
                    conn.staged_objects,
                    conn.staged_queries,
                    timestamp=frame.timestamp,
                )
            # Terminated-by-stream queries no longer route anywhere; reap
            # their connection subscriptions too.  Only a TERMINATE kind
            # qualifies (a raw MOVE/INSERT leaves the query alive), and
            # only if the query really ended the cycle uninstalled (a
            # terminate + re-insert within one batch keeps it).
            if conn.staged_queries:
                live = set(session.query_ids())
                for qu in conn.staged_queries:
                    if (
                        qu.kind is QueryUpdateKind.TERMINATE
                        and qu.qid in conn.subscriptions
                        and qu.qid not in live
                    ):
                        conn.subscriptions.pop(qu.qid).close()
            conn.staged_objects = []
            conn.staged_queries = []
            conn.send(
                wire.Ticked(
                    timestamp=frame.timestamp, changed=tuple(sorted(changed))
                )
            )
            return
        if kind is wire.Register:
            with self.lock:
                handle = session.register(frame.spec, qid=frame.qid)
                result = tuple(handle.snapshot())
                if frame.watch:
                    self._subscribe(conn, handle.qid, include_unchanged=False)
            conn.send(wire.Registered(qid=handle.qid, result=result))
            return
        if kind is wire.Move:
            with self.lock:
                result = session.handle(frame.qid).move(frame.point)
            conn.send(wire.Snapshot(qid=frame.qid, result=tuple(result)))
            return
        if kind is wire.Terminate:
            with self.lock:
                # Terminate first so the draining delta still routes to
                # this connection, then drop the dead topic.
                session.handle(frame.qid).terminate()
                subscription = conn.subscriptions.pop(frame.qid, None)
                if subscription is not None:
                    subscription.close()
            conn.send(wire.Ok(op="terminate", qid=frame.qid))
            return
        if kind is wire.GetSnapshot:
            with self.lock:
                result = tuple(session.snapshot(frame.qid))
            conn.send(wire.Snapshot(qid=frame.qid, result=result))
            return
        if kind is wire.Subscribe:
            with self.lock:
                self._subscribe(conn, frame.qid, frame.include_unchanged)
            conn.send(wire.Ok(op="subscribe", qid=frame.qid))
            return
        if kind is wire.Unsubscribe:
            subscription = conn.subscriptions.pop(frame.qid, None)
            if subscription is not None:
                subscription.close()
            conn.send(wire.Ok(op="unsubscribe", qid=frame.qid))
            return
        if kind is wire.Tags:
            with self.lock:
                session.set_object_tags(
                    {oid: set(tags) for oid, tags in frame.rows}
                )
            conn.send(wire.Ok(op="tags"))
            return
        if kind is wire.Sync:
            self._sync(conn, frame)
            return
        if kind is wire.Hello:
            return  # the welcome already went out on accept
        raise wire.WireError(
            f"frame {wire.encode_frame(frame)!r} is not valid client->server"
        )

    def _sync(self, conn: _Connection, frame: wire.Sync) -> None:
        """Cold-start stream: the state a fresh client needs to mirror
        this session — the object table (on request), every registered
        query with its spec and current result, then ``sync_done``.

        Everything is captured under the server lock, but the frames go
        out through the outbox like any other traffic, so a huge sync
        never stalls the monitoring cycle either.
        """
        session = self.session
        with self.lock:
            monitor = session.service.monitor
            n_objects = 0
            if frame.objects:
                tag_table = getattr(monitor, "_object_tags", None) or {}
                rows = []
                for oid, point in monitor.iter_objects():
                    tags = tag_table.get(oid)
                    rows.append(
                        (oid, point, None if tags is None else tuple(sorted(tags)))
                    )
                    n_objects += 1
                    if len(rows) >= SYNC_CHUNK:
                        conn.send(wire.SyncObjects(rows=tuple(rows)))
                        rows = []
                if rows:
                    conn.send(wire.SyncObjects(rows=tuple(rows)))
            handles = session.handles()
            for handle in handles:
                conn.send(
                    wire.SyncQuery(
                        qid=handle.qid,
                        spec=handle.spec,
                        result=tuple(handle.snapshot()),
                    )
                )
                if frame.watch:
                    self._subscribe(conn, handle.qid, include_unchanged=False)
        conn.send(wire.SyncDone(queries=len(handles), objects=n_objects))
