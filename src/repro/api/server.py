"""Socket transport: publish subscribed deltas, accept update frames.

A :class:`MonitorSocketServer` exposes one
:class:`repro.api.session.Session` over TCP speaking the ndjson wire
protocol (:mod:`repro.api.wire`).  Each connection gets a reader thread;
frames on one connection are processed strictly in arrival order, and
every engine-touching operation takes the server-wide :attr:`lock` — the
monitoring cycle itself stays single-threaded, the transport only
serializes *around* it.  A host program that also drives the session
directly (e.g. a server-side feed) must hold the same lock, or use
:meth:`tick`.

Delta delivery rides the hub's per-query routing: a ``subscribe`` frame
registers a per-qid subscription whose callback *enqueues* the delta on
the connection's bounded outbox (:class:`repro.service.subscriptions.
FanoutQueue`); a per-connection writer thread encodes and sends.  The
hub's publish loop therefore never blocks on a socket — a stalled
client costs O(1) per delta until its outbox fills, at which point the
server's :class:`SlowConsumerPolicy` fires (disconnect the laggard, or
drop its queued deltas and send a ``lagged`` marker) instead of
extending ``publish_sec`` for everyone else.

Every outbound frame of one connection flows through the same FIFO
outbox, so the v1 ordering contract survives the async tier: the deltas
produced by a ``tick`` frame are enqueued *before* the ``ticked`` reply
— and TCP preserves order — so a client has received every delta of a
cycle by the time it sees the cycle's ``ticked`` frame.  That ordering
is what makes remote delta streams byte-comparable with in-process
runs.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.api import wire
from repro.api.session import Session
from repro.obs.health import AlertEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import ScrapeServer
from repro.service.subscriptions import (
    FanoutQueue,
    SlowConsumerPolicy,
    Subscription,
)
from repro.updates import QueryUpdateKind

#: rows per ``sync_objects`` chunk of the cold-start stream.
SYNC_CHUNK = 512

#: metrics-pump wakeup resolution (seconds): the granularity at which
#: per-connection ``watch_metrics`` intervals are honored.
METRICS_PUMP_TICK = 0.05


@dataclass(frozen=True, slots=True)
class ConnectionStats:
    """One connection's outbound accounting (a :class:`FanoutQueue`
    snapshot plus transport-level counts)."""

    index: int
    depth: int
    delivered: int
    dropped: int
    overflows: int
    broken: bool
    frames_sent: int
    subscriptions: int


@dataclass(frozen=True, slots=True)
class ServerStats:
    """Aggregate server health: per-connection rows plus fleet totals.

    Totals include connections that have already closed (their final
    counters are folded in at teardown), so ``dropped`` is the lifetime
    count the slow-consumer policies shed — previously recorded on each
    :class:`FanoutQueue` but unreachable from the embedding process.
    """

    connections: tuple[ConnectionStats, ...]
    accepted: int
    depth: int
    delivered: int
    dropped: int
    overflows: int


class _Connection:
    """Server-side state of one client connection."""

    def __init__(
        self,
        server: "MonitorSocketServer",
        sock: socket.socket,
        index: int = 0,
    ) -> None:
        self.server = server
        self.sock = sock
        #: accept-order ordinal of this connection (fault-hook lane key).
        self.index = index
        #: outbound frames written so far (fault-hook ordinal).
        self.frames_sent = 0
        self.reader = sock.makefile("r", encoding="utf-8", newline="\n")
        #: qid -> hub subscription feeding this connection.
        self.subscriptions: dict[int, Subscription] = {}
        #: updates staged by ``updates`` / ``query`` frames until ``tick``.
        self.staged_objects: list = []
        self.staged_queries: list = []
        self.closed = False
        #: ``watch_metrics`` state: push interval in seconds (``None`` =
        #: not watching), alert routing flag, next scheduled push.
        self.metrics_interval: float | None = None
        self.wants_alerts = False
        self.next_metrics_at = 0.0
        #: bounded outbound queue; its writer thread owns the send side.
        #: Deltas ride as ``(timestamp, delta)`` pairs and are encoded on
        #: the writer thread, keeping the hub's enqueue O(1) regardless
        #: of result width.
        self.outbox = FanoutQueue(
            self._write_item,
            limit=server.outbound_limit,
            policy=server.slow_consumer,
            lag_factory=lambda dropped: wire.Lagged(dropped=dropped),
            lag_followup=self._lag_followups,
            on_overflow=lambda: self.close(flush=False),
            name=f"conn-{sock.fileno()}",
        )

    # -- writing -------------------------------------------------------

    def _write_item(self, item) -> None:
        """Writer-thread sink: encode (late, for deltas) and send."""
        hook = self.server.fault_hook
        if hook is not None and hook(self.index, self.frames_sent):
            # Injected network drop: cut the transport abruptly — no
            # ``bye`` — so the peer sees exactly what a mid-stream
            # failure looks like.  The sendall below then raises, which
            # marks the outbox broken, and the reader thread's EOF tears
            # the connection down through the normal path.
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
        self.frames_sent += 1
        if type(item) is tuple:
            line = wire.encode_delta(item[0], item[1])
        else:
            line = wire.encode_frame(item)
        self.sock.sendall((line + "\n").encode("utf-8"))

    def _lag_followups(self):
        """Fresh ``sync_query`` snapshots pushed right after a resolved
        ``lagged`` marker, one per query this connection subscribes to.

        Runs on the writer thread (the fan-out queue calls it outside
        its own lock), so the snapshots reflect the state at delivery
        time — after every shed delta — and a stalled-then-drained
        consumer converges without issuing its own re-sync.
        """
        frames = []
        with self.server.lock:
            session = self.server.session
            for qid in sorted(self.subscriptions):
                try:
                    handle = session.handle(qid)
                except KeyError:
                    continue  # terminated while the marker was queued
                frames.append(
                    wire.SyncQuery(
                        qid=qid,
                        spec=handle.spec,
                        result=tuple(handle.snapshot()),
                    )
                )
        return frames

    def send(self, frame: wire.Frame) -> None:
        self.outbox.put(frame)

    def deliver(self, timestamp: int | None, delta) -> None:
        """Hub callback: enqueue one subscribed delta (droppable — the
        DROP_AND_SNAPSHOT policy may shed it under backpressure)."""
        self.outbox.put((timestamp, delta), droppable=True)

    # -- teardown ------------------------------------------------------

    def close(self, *, flush: bool = True) -> None:
        """Tear the connection down.  Orderly closes flush the outbox
        first so queued replies (``error``, ``bye``) still reach the
        peer; overflow disconnects skip the flush — the peer is stalled,
        waiting on it would be the very head-of-line blocking the policy
        exists to prevent."""
        if self.closed:
            return
        self.closed = True
        for subscription in self.subscriptions.values():
            subscription.close()
        self.subscriptions.clear()
        if flush:
            self.outbox.join(timeout=2.0)
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        # The shutdown above errors out a writer blocked in sendall.
        self.outbox.close(flush=False, timeout=1.0)
        self.server._retire(self)

    def stats(self) -> ConnectionStats:
        queue = self.outbox.stats()
        return ConnectionStats(
            index=self.index,
            depth=queue["depth"],
            delivered=queue["delivered"],
            dropped=queue["dropped"],
            overflows=queue["overflows"],
            broken=queue["broken"],
            frames_sent=self.frames_sent,
            subscriptions=len(self.subscriptions),
        )


class MonitorSocketServer:
    """Serves one session to remote wire-protocol clients.

    Args:
        session: the session (and therefore monitor + hub) to expose.
        host/port: bind address; port 0 picks a free port (see
            :attr:`address` after :meth:`start`).
        name: server string echoed in the ``welcome`` frame.
        outbound_limit: per-connection outbox bound (frames) before the
            slow-consumer policy fires.
        slow_consumer: what happens to a connection that cannot drain
            its outbox (see :class:`SlowConsumerPolicy`).
        sndbuf: ``SO_SNDBUF`` applied to accepted sockets; small values
            make kernel buffering deterministic for backpressure tests.
        fault_hook: chaos-test seam — ``hook(conn_index, frame_seq) ->
            bool``, called on the writer thread before every outbound
            frame with the connection's accept ordinal and per-connection
            frame ordinal; returning ``True`` cuts that connection's
            transport abruptly (no ``bye``), simulating a network drop
            (see :meth:`repro.testing.faults.FaultPlan.connection_hook`).
        registry: optional :class:`repro.obs.metrics.MetricsRegistry`.
            Enables the wire telemetry surface: ``watch_metrics`` frames
            are honored (a metrics-pump side thread pushes periodic
            ``metrics`` snapshots), :meth:`publish_alert` fans ``alert``
            frames out, and the server registers its own fan-out gauges
            (connections, outbound depth, delivered/dropped totals).
        scrape_port: with a ``registry``, additionally serve the
            Prometheus text scrape endpoint on this port from a side
            thread (``0`` picks a free port — see :attr:`scrape_address`;
            ``None`` disables the endpoint).
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "repro-monitor",
        outbound_limit: int = 1024,
        slow_consumer: SlowConsumerPolicy = SlowConsumerPolicy.DISCONNECT,
        sndbuf: int | None = None,
        fault_hook: Callable[[int, int], bool] | None = None,
        registry: MetricsRegistry | None = None,
        scrape_port: int | None = None,
    ) -> None:
        self.session = session
        self.name = name
        self.outbound_limit = outbound_limit
        self.slow_consumer = slow_consumer
        self.sndbuf = sndbuf
        self.fault_hook = fault_hook
        #: accepted connections so far (assigns fault-hook lane keys).
        self._accepted = 0
        #: guards every engine-touching operation (register/tick/...).
        self.lock = threading.RLock()
        self._host = host
        self._port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[_Connection] = []
        self._stopping = threading.Event()
        self.registry = registry
        self._scrape: ScrapeServer | None = (
            None
            if registry is None or scrape_port is None
            else ScrapeServer(registry, host, scrape_port)
        )
        self._metrics_thread: threading.Thread | None = None
        #: final counters of closed connections, folded into stats().
        self._retired = {"delivered": 0, "dropped": 0, "overflows": 0}
        self._retired_lock = threading.Lock()
        if registry is not None:
            self._m_alerts = registry.counter(
                "repro_server_alerts_published_total",
                "Alert frames fanned out to watching connections.",
            )
            registry.gauge_fn(
                "repro_server_connections",
                lambda: len(self._connections),
                "Open client connections.",
            )
            registry.gauge_fn(
                "repro_server_outbound_depth",
                lambda: self.stats().depth,
                "Frames queued across every connection outbox.",
            )
            registry.gauge_fn(
                "repro_server_deltas_delivered",
                lambda: self.stats().delivered,
                "Outbound items delivered (cumulative, closed conns included).",
            )
            registry.gauge_fn(
                "repro_server_deliveries_dropped",
                lambda: self.stats().dropped,
                "Deliveries shed by slow-consumer policies (cumulative).",
            )
        else:
            self._m_alerts = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[:2]

    @property
    def scrape_address(self) -> tuple[str, int]:
        """The scrape endpoint's ``(host, port)`` (after :meth:`start`)."""
        if self._scrape is None or self._scrape.port is None:
            raise RuntimeError("scrape endpoint not running")
        return self._scrape.host, self._scrape.port

    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._sock is not None:
            raise RuntimeError("server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(16)
        self._sock = sock
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="monitor-server-accept", daemon=True
        )
        self._accept_thread.start()
        if self._scrape is not None:
            self._scrape.start()
        if self.registry is not None:
            self._metrics_thread = threading.Thread(
                target=self._metrics_pump, name="monitor-server-metrics",
                daemon=True,
            )
            self._metrics_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener, the telemetry side threads and every
        connection."""
        self._stopping.set()
        if self._scrape is not None:
            self._scrape.stop()
        thread = self._metrics_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._metrics_thread = None
        if self._sock is not None:
            try:
                # Wakes a blocked accept() (close alone does not, on
                # Linux); ENOTCONN on platforms where it would have.
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        for conn in list(self._connections):
            conn.close()
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "MonitorSocketServer":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Host-side driving
    # ------------------------------------------------------------------

    def tick(self, object_updates, query_updates=(), *, timestamp=None):
        """Advance the session one cycle under the server lock (for host
        programs feeding updates server-side while clients subscribe)."""
        with self.lock:
            return self.session.tick(
                object_updates, query_updates, timestamp=timestamp
            )

    # ------------------------------------------------------------------
    # Telemetry surface
    # ------------------------------------------------------------------

    def stats(self) -> ServerStats:
        """Fan-out accounting: per-connection rows plus lifetime totals."""
        rows = tuple(conn.stats() for conn in list(self._connections))
        with self._retired_lock:
            retired = dict(self._retired)
        return ServerStats(
            connections=rows,
            accepted=self._accepted,
            depth=sum(row.depth for row in rows),
            delivered=retired["delivered"] + sum(r.delivered for r in rows),
            dropped=retired["dropped"] + sum(r.dropped for r in rows),
            overflows=retired["overflows"] + sum(r.overflows for r in rows),
        )

    def _retire(self, conn: _Connection) -> None:
        """Fold a closing connection's final counters into the totals."""
        queue = conn.outbox.stats()
        with self._retired_lock:
            self._retired["delivered"] += queue["delivered"]
            self._retired["dropped"] += queue["dropped"]
            self._retired["overflows"] += queue["overflows"]

    def publish_alert(self, event: AlertEvent) -> int:
        """Fan one health alert out to every ``watch_metrics(alerts=True)``
        connection; returns the number of connections it reached.  Shaped
        to plug straight into the ingest driver's ``on_alert``."""
        frame = wire.Alert(
            level=event.level,
            rule=event.rule,
            message=event.message,
            value=event.value,
            cycle=event.cycle,
            timestamp=event.timestamp,
        )
        reached = 0
        for conn in list(self._connections):
            if conn.wants_alerts and not conn.closed:
                conn.send(frame)
                reached += 1
        if self._m_alerts is not None and reached:
            self._m_alerts.inc(reached)
        return reached

    def _metrics_frame(self) -> wire.Metrics:
        assert self.registry is not None
        return wire.Metrics(
            timestamp=time.time(),
            rows=tuple(self.registry.snapshot().items()),
        )

    def _metrics_pump(self) -> None:
        """Side thread: honor each connection's ``watch_metrics`` cadence."""
        while not self._stopping.wait(METRICS_PUMP_TICK):
            now = time.monotonic()
            frame: wire.Metrics | None = None
            for conn in list(self._connections):
                interval = conn.metrics_interval
                if (
                    interval is None
                    or interval <= 0
                    or conn.closed
                    or now < conn.next_metrics_at
                ):
                    continue
                if frame is None:
                    # One snapshot per pump pass, shared by every
                    # connection due this tick.
                    frame = self._metrics_frame()
                conn.next_metrics_at = now + interval
                conn.send(frame)

    # ------------------------------------------------------------------
    # Accept / per-connection loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                client_sock, _addr = self._sock.accept()
            except OSError:
                break
            client_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.sndbuf is not None:
                client_sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf
                )
            conn = _Connection(self, client_sock, index=self._accepted)
            self._accepted += 1
            self._connections.append(conn)
            conn.send(
                wire.Welcome(server=self.name, versions=wire.SUPPORTED_VERSIONS)
            )
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="monitor-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            for line in conn.reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = wire.decode_frame(line)
                except wire.WireError as exc:
                    conn.send(wire.Error(message=str(exc)))
                    break
                if type(frame) is wire.Bye:
                    conn.send(wire.Bye())
                    break
                try:
                    self._handle(conn, frame)
                except Exception as exc:  # app errors keep the connection
                    conn.send(wire.Error(message=f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
            try:
                self._connections.remove(conn)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    def _subscribe(
        self, conn: _Connection, qid: int, include_unchanged: bool
    ) -> None:
        existing = conn.subscriptions.get(qid)
        if existing is not None:
            if existing.include_unchanged == include_unchanged:
                return
            # Re-subscribing with a different filter replaces the old
            # registration (e.g. upgrading a register-time watch to an
            # include-unchanged stream).
            existing.close()
        conn.subscriptions[qid] = self.session.hub.subscribe_query(
            qid, conn.deliver, include_unchanged=include_unchanged
        )

    def _handle(self, conn: _Connection, frame: wire.Frame) -> None:
        session = self.session
        kind = type(frame)
        if kind is wire.Updates:
            conn.staged_objects.extend(frame.updates)
            return
        if kind is wire.QueryOp:
            conn.staged_queries.append(frame.update)
            return
        if kind is wire.Tick:
            with self.lock:
                changed = session.tick(
                    conn.staged_objects,
                    conn.staged_queries,
                    timestamp=frame.timestamp,
                )
            # Terminated-by-stream queries no longer route anywhere; reap
            # their connection subscriptions too.  Only a TERMINATE kind
            # qualifies (a raw MOVE/INSERT leaves the query alive), and
            # only if the query really ended the cycle uninstalled (a
            # terminate + re-insert within one batch keeps it).
            if conn.staged_queries:
                live = set(session.query_ids())
                for qu in conn.staged_queries:
                    if (
                        qu.kind is QueryUpdateKind.TERMINATE
                        and qu.qid in conn.subscriptions
                        and qu.qid not in live
                    ):
                        conn.subscriptions.pop(qu.qid).close()
            conn.staged_objects = []
            conn.staged_queries = []
            conn.send(
                wire.Ticked(
                    timestamp=frame.timestamp, changed=tuple(sorted(changed))
                )
            )
            return
        if kind is wire.Register:
            with self.lock:
                handle = session.register(frame.spec, qid=frame.qid)
                result = tuple(handle.snapshot())
                if frame.watch:
                    self._subscribe(conn, handle.qid, include_unchanged=False)
            conn.send(wire.Registered(qid=handle.qid, result=result))
            return
        if kind is wire.Move:
            with self.lock:
                result = session.handle(frame.qid).move(frame.point)
            conn.send(wire.Snapshot(qid=frame.qid, result=tuple(result)))
            return
        if kind is wire.Terminate:
            with self.lock:
                # Terminate first so the draining delta still routes to
                # this connection, then drop the dead topic.
                session.handle(frame.qid).terminate()
                subscription = conn.subscriptions.pop(frame.qid, None)
                if subscription is not None:
                    subscription.close()
            conn.send(wire.Ok(op="terminate", qid=frame.qid))
            return
        if kind is wire.GetSnapshot:
            with self.lock:
                result = tuple(session.snapshot(frame.qid))
            conn.send(wire.Snapshot(qid=frame.qid, result=result))
            return
        if kind is wire.Subscribe:
            with self.lock:
                self._subscribe(conn, frame.qid, frame.include_unchanged)
            conn.send(wire.Ok(op="subscribe", qid=frame.qid))
            return
        if kind is wire.Unsubscribe:
            subscription = conn.subscriptions.pop(frame.qid, None)
            if subscription is not None:
                subscription.close()
            conn.send(wire.Ok(op="unsubscribe", qid=frame.qid))
            return
        if kind is wire.Tags:
            with self.lock:
                session.set_object_tags(
                    {oid: set(tags) for oid, tags in frame.rows}
                )
            conn.send(wire.Ok(op="tags"))
            return
        if kind is wire.Sync:
            self._sync(conn, frame)
            return
        if kind is wire.WatchMetrics:
            if self.registry is None:
                raise wire.WireError("server has no metrics registry attached")
            conn.wants_alerts = frame.alerts
            if frame.interval_ms > 0:
                conn.metrics_interval = frame.interval_ms / 1000.0
                conn.next_metrics_at = 0.0  # due at the next pump pass
            else:
                conn.metrics_interval = None
            conn.send(wire.Ok(op="watch_metrics"))
            # Always answer with one immediate snapshot; periodic pushes
            # (if requested) continue from the pump thread.
            conn.send(self._metrics_frame())
            return
        if kind is wire.Hello:
            return  # the welcome already went out on accept
        raise wire.WireError(
            f"frame {wire.encode_frame(frame)!r} is not valid client->server"
        )

    def _sync(self, conn: _Connection, frame: wire.Sync) -> None:
        """Cold-start stream: the state a fresh client needs to mirror
        this session — the object table (on request), every registered
        query with its spec and current result, then ``sync_done``.

        Everything is captured under the server lock, but the frames go
        out through the outbox like any other traffic, so a huge sync
        never stalls the monitoring cycle either.
        """
        session = self.session
        with self.lock:
            monitor = session.service.monitor
            n_objects = 0
            if frame.objects:
                tag_table = getattr(monitor, "_object_tags", None) or {}
                rows = []
                for oid, point in monitor.iter_objects():
                    tags = tag_table.get(oid)
                    rows.append(
                        (oid, point, None if tags is None else tuple(sorted(tags)))
                    )
                    n_objects += 1
                    if len(rows) >= SYNC_CHUNK:
                        conn.send(wire.SyncObjects(rows=tuple(rows)))
                        rows = []
                if rows:
                    conn.send(wire.SyncObjects(rows=tuple(rows)))
            handles = session.handles()
            for handle in handles:
                conn.send(
                    wire.SyncQuery(
                        qid=handle.qid,
                        spec=handle.spec,
                        result=tuple(handle.snapshot()),
                    )
                )
                if frame.watch:
                    self._subscribe(conn, handle.qid, include_unchanged=False)
        conn.send(wire.SyncDone(queries=len(handles), objects=n_objects))
