"""Typed query specifications: what a client asks the monitor to watch.

The engines register queries through positional arguments
(``install_query(qid, point, k)``, ``install_constrained_query(...)``),
which is fine inside the library but a poor client surface: the caller
must know which method matches which query type, and nothing ties the
arguments together as *one* continuously-monitored thing.  A
:class:`QuerySpec` is that thing — a small frozen value object naming
the query type and its geometry — and it is what travels through every
layer of the client API: :meth:`repro.api.session.Session.register`
installs specs in-process, the wire protocol (:mod:`repro.api.wire`)
serializes them, and the socket client re-registers them remotely.

Three spec types cover the engines the library has (the pub/sub framing
of per-query subscriptions — see *Distributed Spatial-Keyword kNN
Monitoring for Location-aware Pub/Sub* — treats each as one topic):

* :class:`KnnSpec` — classic continuous k-NN around a point (Section 3
  of the paper).  Works against **every** monitor, including the
  sharded service tier.
* :class:`ConstrainedKnnSpec` — constrained k-NN (Figure 5.3): the k
  nearest objects *inside* a rectangle.  Needs a strategy-capable
  engine (:class:`repro.core.cpm.CPMMonitor`).
* :class:`RangeSpec` — a continuous range query: every object inside a
  rectangle, delivered in the library-wide ordered ``(dist, oid)``
  vocabulary with distances measured from the rectangle's center.
  Installed as a constrained query with an effectively unbounded ``k``,
  so the one CPM engine (and the one delta stream) serves ranges too.
* :class:`FilteredKnnSpec` — attribute-filtered k-NN (the pub/sub
  subscription type): the k nearest objects carrying **all** of the
  spec's tags, optionally also constrained to a rectangle.  Rides the
  same strategy machinery (:class:`repro.core.strategies.FilteredStrategy`)
  and the engine's per-monitor tag table
  (:meth:`repro.monitor.ContinuousMonitor.set_object_tags`).

The strategy-backed specs install on any strategy-capable engine — the
CPM core directly, or the sharded service tier, which routes them to the
shard owning the spec's anchor cell (every shard maintains the full
object view, so anchor routing is a pure load-balancing choice).

All specs expose ``anchor`` (the representative point used for shard
routing and ``move``) and ``moved_to(point)`` (the same spec re-anchored
— a range moves by translating its rectangle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.geometry.points import Point
from repro.geometry.rects import Rect

#: ``k`` used to install a :class:`RangeSpec`: large enough that the
#: neighbor list never fills (``best_dist`` stays ``inf``), so the
#: constrained machinery degenerates to exact range monitoring.
RANGE_K = 1 << 30

RectLike = Union[Rect, tuple]


def as_rect(region: RectLike) -> Rect:
    """Normalize a rectangle argument (``Rect`` or ``(x0, y0, x1, y1)``)."""
    if isinstance(region, Rect):
        return region
    x0, y0, x1, y1 = region
    return Rect(float(x0), float(y0), float(x1), float(y1))


@dataclass(frozen=True, slots=True)
class KnnSpec:
    """Continuous k-NN around ``point`` (the paper's core query type)."""

    point: Point
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    @property
    def anchor(self) -> Point:
        return self.point

    def moved_to(self, point: Point) -> "KnnSpec":
        return KnnSpec(point=point, k=self.k)


@dataclass(frozen=True, slots=True)
class ConstrainedKnnSpec:
    """Continuous constrained k-NN: nearest ``k`` inside ``region``."""

    point: Point
    region: Rect
    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "region", as_rect(self.region))

    @property
    def anchor(self) -> Point:
        return self.point

    def moved_to(self, point: Point) -> "ConstrainedKnnSpec":
        """Re-anchor the query point; the constraint region stays put."""
        return ConstrainedKnnSpec(point=point, region=self.region, k=self.k)


@dataclass(frozen=True, slots=True)
class RangeSpec:
    """Continuous range query: all objects inside ``region``, ordered by
    distance from the region's center."""

    region: Rect

    def __post_init__(self) -> None:
        object.__setattr__(self, "region", as_rect(self.region))

    @property
    def anchor(self) -> Point:
        r = self.region
        return ((r.x0 + r.x1) / 2.0, (r.y0 + r.y1) / 2.0)

    def moved_to(self, point: Point) -> "RangeSpec":
        """Translate the rectangle so its center lands on ``point``."""
        r = self.region
        cx, cy = self.anchor
        dx = point[0] - cx
        dy = point[1] - cy
        return RangeSpec(region=Rect(r.x0 + dx, r.y0 + dy, r.x1 + dx, r.y1 + dy))


@dataclass(frozen=True, slots=True)
class FilteredKnnSpec:
    """Continuous attribute-filtered k-NN: the nearest ``k`` objects
    carrying every tag in ``tags`` (optionally inside ``region``)."""

    point: Point
    k: int = 1
    tags: tuple[str, ...] = ()
    region: Rect | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        normalized = tuple(sorted({str(t) for t in self.tags}))
        if not normalized:
            raise ValueError("a filtered query needs at least one tag")
        object.__setattr__(self, "tags", normalized)
        if self.region is not None:
            object.__setattr__(self, "region", as_rect(self.region))

    @property
    def anchor(self) -> Point:
        return self.point

    def moved_to(self, point: Point) -> "FilteredKnnSpec":
        """Re-anchor the query point; tags and region stay put."""
        return FilteredKnnSpec(
            point=point, k=self.k, tags=self.tags, region=self.region
        )


QuerySpec = Union[KnnSpec, ConstrainedKnnSpec, RangeSpec, FilteredKnnSpec]

_SPEC_TYPES = (KnnSpec, ConstrainedKnnSpec, RangeSpec, FilteredKnnSpec)


def install_spec(monitor, qid: int, spec: QuerySpec):
    """Install ``spec`` on ``monitor``; returns the initial result.

    :class:`KnnSpec` goes through the universal
    ``ContinuousMonitor.install_query``; the strategy-backed specs need
    a strategy-capable engine (``install_strategy_query`` — the CPM core,
    the brute-force reference, or the sharded service tier, which routes
    by the spec's anchor cell) and raise :class:`TypeError` against
    engines that lack it (the YPK/SEA baselines).
    """
    if isinstance(spec, KnnSpec):
        return monitor.install_query(qid, spec.point, spec.k)
    if not isinstance(spec, _SPEC_TYPES):
        raise TypeError(f"not a query spec: {spec!r}")
    install = getattr(monitor, "install_strategy_query", None)
    if install is None:
        raise TypeError(
            f"{type(monitor).__name__} supports only plain k-NN specs; "
            f"{type(spec).__name__} needs a strategy-capable engine "
            "(repro.core.cpm.CPMMonitor or the sharded service tier)"
        )
    from repro.core.strategies import (
        ConstrainedStrategy,
        FilteredStrategy,
        PointNNStrategy,
    )

    if isinstance(spec, ConstrainedKnnSpec):
        strategy = ConstrainedStrategy(
            PointNNStrategy(spec.point[0], spec.point[1]), spec.region
        )
        return install(qid, strategy, spec.k)
    if isinstance(spec, FilteredKnnSpec):
        inner: "QueryStrategy" = PointNNStrategy(spec.point[0], spec.point[1])
        if spec.region is not None:
            inner = ConstrainedStrategy(inner, spec.region)
        return install(qid, FilteredStrategy(inner, spec.tags), spec.k)
    cx, cy = spec.anchor
    strategy = ConstrainedStrategy(PointNNStrategy(cx, cy), spec.region)
    return install(qid, strategy, RANGE_K)


# ----------------------------------------------------------------------
# Wire representation (used by repro.api.wire)
# ----------------------------------------------------------------------

def spec_to_wire(spec: QuerySpec) -> dict:
    """The JSON-ready dict form of a spec (stable key order)."""
    if isinstance(spec, KnnSpec):
        return {"type": "knn", "point": [spec.point[0], spec.point[1]], "k": spec.k}
    if isinstance(spec, ConstrainedKnnSpec):
        r = spec.region
        return {
            "type": "constrained",
            "point": [spec.point[0], spec.point[1]],
            "region": [r.x0, r.y0, r.x1, r.y1],
            "k": spec.k,
        }
    if isinstance(spec, RangeSpec):
        r = spec.region
        return {"type": "range", "region": [r.x0, r.y0, r.x1, r.y1]}
    if isinstance(spec, FilteredKnnSpec):
        r = spec.region
        return {
            "type": "filtered",
            "point": [spec.point[0], spec.point[1]],
            "k": spec.k,
            "tags": list(spec.tags),
            "region": None if r is None else [r.x0, r.y0, r.x1, r.y1],
        }
    raise TypeError(f"not a query spec: {spec!r}")


def spec_from_wire(obj: dict) -> QuerySpec:
    """Parse the dict form back into a spec (inverse of spec_to_wire)."""
    kind = obj.get("type")
    if kind == "knn":
        x, y = obj["point"]
        return KnnSpec(point=(float(x), float(y)), k=int(obj.get("k", 1)))
    if kind == "constrained":
        x, y = obj["point"]
        return ConstrainedKnnSpec(
            point=(float(x), float(y)),
            region=as_rect(obj["region"]),
            k=int(obj.get("k", 1)),
        )
    if kind == "range":
        return RangeSpec(region=as_rect(obj["region"]))
    if kind == "filtered":
        x, y = obj["point"]
        region = obj.get("region")
        return FilteredKnnSpec(
            point=(float(x), float(y)),
            k=int(obj.get("k", 1)),
            tags=tuple(str(t) for t in obj["tags"]),
            region=None if region is None else as_rect(region),
        )
    raise ValueError(f"unknown query spec type {kind!r}")
