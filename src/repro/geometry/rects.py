"""Axis-aligned rectangles and the ``mindist`` primitive.

``mindist(c, q)`` — the minimum possible distance between any point inside a
cell/rectangle ``c`` and a query point ``q`` — is the pruning bound at the
heart of both the naive sorted-cell search of Section 3.1 and CPM's
conceptual partitioning (Lemma 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.points import Point


def mindist_point_rect(
    x: float, y: float, x0: float, y0: float, x1: float, y1: float
) -> float:
    """Minimum distance from point ``(x, y)`` to rectangle ``[x0,x1]x[y0,y1]``.

    Returns ``0.0`` when the point lies inside (or on the border of) the
    rectangle.  The rectangle must satisfy ``x0 <= x1`` and ``y0 <= y1``.
    """
    if x < x0:
        dx = x0 - x
    elif x > x1:
        dx = x - x1
    else:
        dx = 0.0
    if y < y0:
        dy = y0 - y
    elif y > y1:
        dy = y - y1
    else:
        dy = 0.0
    if dx == 0.0:
        return dy
    if dy == 0.0:
        return dx
    return math.hypot(dx, dy)


def rects_intersect(
    ax0: float, ay0: float, ax1: float, ay1: float,
    bx0: float, by0: float, bx1: float, by1: float,
) -> bool:
    """Whether two closed axis-aligned rectangles share at least one point."""
    return ax0 <= bx1 and bx0 <= ax1 and ay0 <= by1 and by0 <= ay1


@dataclass(frozen=True, slots=True)
class Rect:
    """Closed axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Used for the workspace bounds, the MBR ``M`` of a multi-point aggregate
    query (Section 5) and constrained-NN constraint regions (Figure 5.3).
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x0 > self.x1 or self.y0 > self.y1:
            raise ValueError(
                f"degenerate rectangle: ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @classmethod
    def bounding(cls, points: list[Point]) -> "Rect":
        """Minimum bounding rectangle of a non-empty point set."""
        if not points:
            raise ValueError("cannot bound an empty point set")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def corners(self) -> tuple[Point, Point, Point, Point]:
        return (
            (self.x0, self.y0),
            (self.x1, self.y0),
            (self.x1, self.y1),
            (self.x0, self.y1),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside or on the border."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def intersects(self, other: "Rect") -> bool:
        return rects_intersect(
            self.x0, self.y0, self.x1, self.y1,
            other.x0, other.y0, other.x1, other.y1,
        )

    def intersects_bounds(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> bool:
        """Intersection test against raw bounds (avoids a Rect allocation)."""
        return rects_intersect(self.x0, self.y0, self.x1, self.y1, x0, y0, x1, y1)

    def mindist(self, p: Point) -> float:
        """Minimum distance from ``p`` to this rectangle (0 inside)."""
        return mindist_point_rect(p[0], p[1], self.x0, self.y0, self.x1, self.y1)

    def clamp(self, x: float, y: float) -> Point:
        """Closest point of the rectangle to ``(x, y)``."""
        cx = min(max(x, self.x0), self.x1)
        cy = min(max(y, self.y0), self.y1)
        return (cx, cy)

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side (may not be negative
        beyond the rectangle extents)."""
        return Rect(
            self.x0 - margin, self.y0 - margin,
            self.x1 + margin, self.y1 + margin,
        )
