"""Geometry kernel shared by every subsystem.

The paper works in a two-dimensional Euclidean workspace (Section 3,
footnote 3).  This package provides the small set of exact geometric
primitives the monitoring algorithms rely on:

* point-to-point distance (:func:`repro.geometry.points.dist`),
* point-to-rectangle minimum distance (:func:`repro.geometry.rects.mindist_point_rect`),
* axis-aligned rectangles with intersection / containment tests
  (:class:`repro.geometry.rects.Rect`),
* aggregate distance functions ``sum`` / ``min`` / ``max`` used by the
  aggregate-NN extension of Section 5
  (:mod:`repro.geometry.aggregates`).

Everything is pure Python operating on plain ``float`` tuples, which keeps
the per-object cost of the monitoring hot loops low and the semantics
obvious.
"""

from repro.geometry.aggregates import (
    AGGREGATES,
    AggregateFunction,
    adist,
    get_aggregate,
)
from repro.geometry.points import (
    dist,
    dist_sq,
    max_distance_to_corners,
    midpoint,
    translate,
)
from repro.geometry.rects import (
    Rect,
    mindist_point_rect,
    rects_intersect,
)

__all__ = [
    "AGGREGATES",
    "AggregateFunction",
    "Rect",
    "adist",
    "dist",
    "dist_sq",
    "get_aggregate",
    "max_distance_to_corners",
    "midpoint",
    "mindist_point_rect",
    "rects_intersect",
    "translate",
]
