"""Aggregate distance functions for aggregate-NN monitoring (Section 5).

Given a set of query points ``Q = {q1, ..., qm}`` and an object ``p``, the
aggregate distance is ``adist(p, Q) = f(dist(p, q1), ..., dist(p, qm))`` for
a monotonically increasing ``f``.  The paper develops the three canonical
cases:

* ``sum`` — minimizes the total distance travelled for all users to meet at
  ``p`` (the group-NN semantics of [PSTM04]);
* ``max`` — minimizes the arrival time of the last user;
* ``min`` — retrieves the object closest to *any* user.

Each aggregate also fixes the per-level increment of the conceptual
rectangle keys: ``m * delta`` for ``sum`` (Corollary 5.1) and ``delta`` for
``min``/``max`` (Corollary 5.2).  :class:`AggregateFunction` bundles the
reduction together with that increment multiplier so the CPM engine can stay
aggregate-agnostic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Callable

from repro.geometry.points import Point, dist


@dataclass(frozen=True, slots=True)
class AggregateFunction:
    """A monotone aggregate over individual query-point distances.

    Attributes:
        name: canonical name (``"sum"``, ``"min"`` or ``"max"``).
        reduce: reduction applied to the iterable of individual distances.
        level_step_per_point: multiplier ``s`` such that the key of
            consecutive same-direction conceptual rectangles increases by
            ``s * m * delta`` where ``m = |Q|``.  ``1.0`` for ``sum``
            (Corollary 5.1 gives ``m * delta``), ``0.0``-marker is never
            used; for ``min``/``max`` the increment is ``delta`` regardless
            of ``m``, expressed as ``per_query=False``.
        per_query: whether the level increment scales with ``m``.
    """

    name: str
    reduce: Callable[[Iterable[float]], float] = field(compare=False)
    per_query: bool

    def __call__(self, distances: Iterable[float]) -> float:
        return self.reduce(distances)

    def level_step(self, m: int, delta: float) -> float:
        """Key increment between levels ``j`` and ``j+1`` (Corollaries 5.1/5.2)."""
        if m <= 0:
            raise ValueError("aggregate queries need at least one query point")
        if delta <= 0:
            raise ValueError("cell side length must be positive")
        return m * delta if self.per_query else delta


AGG_SUM = AggregateFunction(name="sum", reduce=sum, per_query=True)
AGG_MIN = AggregateFunction(name="min", reduce=min, per_query=False)
AGG_MAX = AggregateFunction(name="max", reduce=max, per_query=False)

AGGREGATES: dict[str, AggregateFunction] = {
    "sum": AGG_SUM,
    "min": AGG_MIN,
    "max": AGG_MAX,
}


def get_aggregate(name: str | AggregateFunction) -> AggregateFunction:
    """Resolve an aggregate by name (or pass one through).

    >>> get_aggregate("sum").name
    'sum'
    """
    if isinstance(name, AggregateFunction):
        return name
    try:
        return AGGREGATES[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATES))
        raise ValueError(f"unknown aggregate {name!r}; expected one of {known}") from None


def adist(p: Point, query_points: Sequence[Point], fn: str | AggregateFunction = "sum") -> float:
    """Aggregate distance ``adist(p, Q)`` of Section 5.

    >>> adist((0.0, 0.0), [(3.0, 4.0), (0.0, 1.0)], "sum")
    6.0
    >>> adist((0.0, 0.0), [(3.0, 4.0), (0.0, 1.0)], "min")
    1.0
    >>> adist((0.0, 0.0), [(3.0, 4.0), (0.0, 1.0)], "max")
    5.0
    """
    agg = get_aggregate(fn)
    if not query_points:
        raise ValueError("adist over an empty query set is undefined")
    return agg(dist(p, q) for q in query_points)
