"""Point primitives.

Points are plain ``(x, y)`` tuples of floats throughout the library.  The
monitoring algorithms compute millions of distances per simulation, so these
helpers stay free of any object-construction overhead.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

Point = tuple[float, float]


def dist(a: Point, b: Point) -> float:
    """Euclidean distance between two points.

    This is the ``dist(p, q)`` of Table 3.1.

    >>> dist((0.0, 0.0), (3.0, 4.0))
    5.0
    """
    return math.hypot(a[0] - b[0], a[1] - b[1])


def dist_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance (cheaper when only comparisons matter)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``ab``."""
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def translate(p: Point, dx: float, dy: float) -> Point:
    """Return ``p`` shifted by the displacement vector ``(dx, dy)``."""
    return (p[0] + dx, p[1] + dy)


def max_distance_to_corners(p: Point, corners: Iterable[Point]) -> float:
    """Largest distance from ``p`` to any point of ``corners``.

    Used by tests to bound search regions (e.g. the furthest possible
    object inside a rectangle is at one of its corners).
    """
    best = 0.0
    for c in corners:
        d = dist(p, c)
        if d > best:
            best = d
    return best
