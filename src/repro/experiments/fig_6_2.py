"""Figure 6.2 — scalability: CPU time versus N (6.2a) and versus n (6.2b).

Paper sweeps: N in {10K, 50K, 100K, 150K, 200K} objects and n in
{1K, 2K, 5K, 7K, 10K} queries, everything else at Table 6.1 defaults.
Expected shape: all methods grow roughly linearly in both N and n, with
YPK-CNN and SEA-CNN far more sensitive than CPM.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

#: paper sweep values.
PAPER_N = (10_000, 50_000, 100_000, 150_000, 200_000)
PAPER_QUERIES = (1_000, 2_000, 5_000, 7_000, 10_000)


def run_objects(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    """Figure 6.2a: CPU time versus the object population N."""
    result = ExperimentResult(
        experiment="Figure 6.2a",
        title="CPU time versus number of objects",
        parameter="N",
    )
    grid = scaled_grid(scale)
    for paper_n in PAPER_N:
        n_objects = max(200, round(paper_n * scale))
        if any(p.value == n_objects for p in result.points):
            continue  # scaled sweep collapsed two paper population sizes
        spec = scaled_spec(scale, n_objects=n_objects, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "N", n_objects))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def run_queries(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    """Figure 6.2b: CPU time versus the number of queries n."""
    result = ExperimentResult(
        experiment="Figure 6.2b",
        title="CPU time versus number of queries",
        parameter="n",
    )
    grid = scaled_grid(scale)
    for paper_n in PAPER_QUERIES:
        n_queries = max(2, round(paper_n * scale))
        if any(p.value == n_queries for p in result.points):
            continue  # scaled sweep collapsed two query counts
        spec = scaled_spec(scale, n_queries=n_queries, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "n", n_queries))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def main(argv: list[str] | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    res_a = run_objects(scale=args.scale, seed=args.seed)
    print_result(res_a)
    res_b = run_queries(scale=args.scale, seed=args.seed)
    print_result(res_b)
    return res_a, res_b


if __name__ == "__main__":
    main()
