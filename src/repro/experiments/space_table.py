"""Footnote 6 — space overhead of the three methods at default settings.

The paper reports 2.854 / 3.074 / 3.314 MBytes for YPK-CNN / SEA-CNN / CPM
with N=100K, n=5K, k=16 on a 128x128 grid.  This driver reproduces both the
Section 4.1 *model* at the paper's full size and a *measured* footprint of
live monitors at a chosen scale, in abstract memory units and MBytes.
Expected shape: YPK-CNN < SEA-CNN < CPM, all within the same small factor.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.space import (
    SpaceRow,
    measured_space_units,
    modeled_space_units,
    units_to_mbytes,
)
from repro.api.session import replay_workload
from repro.experiments.common import (
    DEFAULT_SCALE,
    ALGORITHMS,
    build_monitor,
    make_workload,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import format_table

#: paper-reported MBytes (footnote 6), for the EXPERIMENTS.md comparison.
PAPER_MBYTES = {"YPK-CNN": 2.854, "SEA-CNN": 3.074, "CPM": 3.314}


@dataclass(slots=True)
class SpaceExperiment:
    """Modeled (full-size) and measured (scaled) footprints."""

    modeled_full: list[SpaceRow]
    measured_scaled: list[SpaceRow]
    scale: float


def run(scale: float = DEFAULT_SCALE, seed: int = 2005) -> SpaceExperiment:
    # Model at the paper's full default size.
    delta_full = 1.0 / 128.0
    modeled_full = [
        SpaceRow(
            method=name,
            modeled_units=modeled_space_units(name, delta_full, 16, 100_000, 5_000),
            measured_units=float("nan"),
        )
        for name in ALGORITHMS
    ]
    # Measure live monitors after replaying a scaled workload.
    spec = scaled_spec(scale, seed=seed)
    grid = scaled_grid(scale)
    workload = make_workload(spec)
    delta_scaled = 1.0 / grid
    measured = []
    for name in ALGORITHMS:
        monitor = build_monitor(name, grid)
        replay_workload(monitor, workload)
        measured.append(
            SpaceRow(
                method=name,
                modeled_units=modeled_space_units(
                    name, delta_scaled, spec.k, spec.n_objects, spec.n_queries
                ),
                measured_units=measured_space_units(monitor),
            )
        )
    return SpaceExperiment(modeled_full=modeled_full, measured_scaled=measured, scale=scale)


def main(argv: list[str] | None = None) -> SpaceExperiment:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    experiment = run(scale=args.scale, seed=args.seed)

    print("== Footnote 6: modeled space at paper-default size ==")
    rows = [
        [r.method, f"{r.modeled_units:.0f}", f"{r.modeled_mbytes:.3f}",
         f"{PAPER_MBYTES[r.method]:.3f}"]
        for r in experiment.modeled_full
    ]
    print(format_table(["method", "model units", "model MB", "paper MB"], rows))
    print()
    print(f"== Measured space at scale={experiment.scale} ==")
    rows = [
        [r.method, f"{r.modeled_units:.0f}", f"{r.measured_units:.0f}",
         f"{units_to_mbytes(r.measured_units):.4f}"]
        for r in experiment.measured_scaled
    ]
    print(format_table(["method", "model units", "measured units", "measured MB"], rows))
    return experiment


if __name__ == "__main__":
    main()
