"""Shared experiment machinery.

Every figure driver follows the same recipe, factored here:

1. build a :class:`~repro.mobility.workload.WorkloadSpec` from the paper's
   defaults (Table 6.1), scaled down by a ``scale`` factor so the sweeps
   run in seconds on a laptop (``scale=1.0`` restores the paper's sizes);
2. materialize one workload per sweep point (same seed across algorithms);
3. replay it into each algorithm through the monitoring server;
4. collect ``(parameter, algorithm) -> summary`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.metrics import RunReport
from repro.api.session import replay_workload
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.network import RoadNetwork, grid_network
from repro.mobility.workload import Workload, WorkloadSpec
from repro.monitor import ContinuousMonitor
from repro.service.sharding import ShardEngineFactory

#: default downscaling of the paper's experiment sizes (see EXPERIMENTS.md).
DEFAULT_SCALE = 0.05

#: paper defaults from Table 6.1.
PAPER_DEFAULTS = WorkloadSpec(
    n_objects=100_000,
    n_queries=5_000,
    k=16,
    object_speed="medium",
    query_speed="medium",
    object_agility=0.5,
    query_agility=0.3,
    timestamps=100,
    seed=2005,
)

#: paper default grid granularity (cells per axis).
DEFAULT_GRID = 128

ALGORITHMS = ("CPM", "YPK-CNN", "SEA-CNN")


def scaled_spec(scale: float = DEFAULT_SCALE, **overrides) -> WorkloadSpec:
    """Table 6.1 defaults with populations and length scaled by ``scale``.

    ``n_objects`` and ``n_queries`` scale linearly; the simulation length
    scales with ``sqrt(scale)`` (clamped to at least 5 timestamps) so runs
    stay representative without dominating wall-clock time.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = PAPER_DEFAULTS.replace(
        n_objects=max(200, round(PAPER_DEFAULTS.n_objects * scale)),
        n_queries=max(5, round(PAPER_DEFAULTS.n_queries * scale)),
        timestamps=max(5, round(PAPER_DEFAULTS.timestamps * scale**0.5)),
    )
    return spec.replace(**overrides)


def scaled_grid(scale: float, base: int = DEFAULT_GRID) -> int:
    """Grid granularity adjusted to the scaled population.

    The analysis (Section 4.1) ties the best ``delta`` to the object
    density; when the population shrinks by ``scale`` the cell count per
    axis should shrink by ``sqrt(scale)`` to keep objects-per-cell
    constant.  Rounded to the nearest power of two, min 16.
    """
    target = base * scale**0.5
    grid = 16
    # Round to the nearest power of two (ratio test), floor 16.
    while grid * 2 <= target * 2**0.5:
        grid *= 2
    return grid


def make_workload(spec: WorkloadSpec, network: RoadNetwork | None = None) -> Workload:
    """Materialize a Brinkhoff-style workload for ``spec``."""
    if network is None:
        network = grid_network(16, 16, bounds=spec.rect, seed=spec.seed)
    return BrinkhoffGenerator(spec, network).generate()


def build_monitor(
    algorithm: str, cells_per_axis: int, bounds=(0.0, 0.0, 1.0, 1.0)
) -> ContinuousMonitor:
    """Instantiate a monitoring algorithm by name.

    Delegates to :class:`repro.service.sharding.ShardEngineFactory` so the
    experiment drivers and the shard service share one name-to-engine
    mapping.
    """
    return ShardEngineFactory(cells_per_axis, bounds, algorithm)()


@dataclass(slots=True)
class SeriesPoint:
    """One (sweep value, algorithm) measurement."""

    parameter: str
    value: object
    algorithm: str
    report: RunReport

    @property
    def cpu_sec(self) -> float:
        return self.report.total_processing_sec

    @property
    def cell_accesses(self) -> float:
        return self.report.cell_accesses_per_query_per_timestamp


@dataclass(slots=True)
class ExperimentResult:
    """All measurements of one experiment (one paper figure)."""

    experiment: str
    title: str
    parameter: str
    points: list[SeriesPoint] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.algorithm not in seen:
                seen.append(p.algorithm)
        return seen

    def values(self) -> list[object]:
        seen: list[object] = []
        for p in self.points:
            if p.value not in seen:
                seen.append(p.value)
        return seen

    def point(self, value: object, algorithm: str) -> SeriesPoint:
        for p in self.points:
            if p.value == value and p.algorithm == algorithm:
                return p
        raise KeyError(f"no point for ({value!r}, {algorithm!r})")

    def series(self, algorithm: str, metric: str = "cpu_sec") -> list[float]:
        """Metric values for one algorithm in sweep order."""
        return [
            getattr(self.point(value, algorithm), metric) for value in self.values()
        ]


def run_algorithms(
    workload: Workload,
    cells_per_axis: int,
    parameter: str,
    value: object,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> list[SeriesPoint]:
    """Replay one workload into each algorithm; one point per algorithm."""
    points = []
    for algorithm in algorithms:
        monitor = build_monitor(algorithm, cells_per_axis, bounds=workload.spec.bounds)
        report = replay_workload(monitor, workload)
        points.append(
            SeriesPoint(
                parameter=parameter, value=value, algorithm=algorithm, report=report
            )
        )
    return points
