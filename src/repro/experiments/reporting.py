"""ASCII reporting for experiment results.

The paper's figures are line charts; without a plotting dependency we print
the underlying series as aligned tables (one row per sweep value, one
column per algorithm), which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(col.rjust(widths[i]) for i, col in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def render_result(result: ExperimentResult, metric: str = "cpu_sec") -> str:
    """Render one experiment's series for a metric as a table."""
    algorithms = result.algorithms()
    headers = [result.parameter] + [f"{a} ({metric})" for a in algorithms]
    rows = []
    for value in result.values():
        row: list[object] = [value]
        for algorithm in algorithms:
            row.append(getattr(result.point(value, algorithm), metric))
        rows.append(row)
    title = f"== {result.experiment}: {result.title} =="
    body = format_table(headers, rows)
    notes = "\n".join(f"note: {n}" for n in result.notes)
    return "\n".join(s for s in (title, body, notes) if s)


def print_result(result: ExperimentResult, metrics: Sequence[str] = ("cpu_sec",)) -> None:
    """Print one experiment, one table per requested metric."""
    for metric in metrics:
        print(render_result(result, metric))
        print()
