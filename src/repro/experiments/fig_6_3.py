"""Figure 6.3 — effect of k: CPU time (6.3a) and cell accesses (6.3b).

Paper sweep: k in {1, 4, 16, 64, 256}, everything else at defaults.
Expected shape: all methods grow with k; CPM stays far below the baselines
in both CPU time and cell accesses, and for small k CPM performs *less than
one* cell access per query per timestamp (most queries are maintained from
the update stream alone, without touching the grid).
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

#: paper sweep values.
PAPER_K = (1, 4, 16, 64, 256)


def run(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6.3",
        title="CPU time and cell accesses versus k",
        parameter="k",
    )
    grid = scaled_grid(scale)
    for paper_k in PAPER_K:
        # k must stay well below the scaled population to be meaningful.
        spec = scaled_spec(scale, seed=seed)
        k = min(paper_k, max(1, spec.n_objects // 8))
        if any(p.value == k for p in result.points):
            continue
        spec = spec.replace(k=k)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "k", k))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def main(argv: list[str] | None = None) -> ExperimentResult:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    result = run(scale=args.scale, seed=args.seed)
    print_result(result, metrics=("cpu_sec", "cell_accesses"))
    return result


if __name__ == "__main__":
    main()
