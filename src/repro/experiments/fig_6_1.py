"""Figure 6.1 — CPU time versus grid granularity.

Default workload (Table 6.1), grid sizes 32x32 .. 1024x1024, one run per
(granularity, algorithm).  Expected shape: CPM fastest at every
granularity; intermediate granularities (the paper picks 128x128) give the
best CPU/space trade-off for all methods.

At reduced scale the sweep keeps the paper's granularity ratios relative to
the scaled object density (see ``scaled_grid`` in
:mod:`repro.experiments.common`).
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

#: the paper's granularities (cells per axis), scaled at runtime.
PAPER_GRIDS = (32, 64, 128, 256, 512, 1024)


def run(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    """Regenerate the Figure 6.1 series at the given scale."""
    spec = scaled_spec(scale, seed=seed)
    workload = make_workload(spec)
    result = ExperimentResult(
        experiment="Figure 6.1",
        title="CPU time versus grid granularity",
        parameter="cells_per_axis",
    )
    result.notes.append(
        f"workload: N={spec.n_objects}, n={spec.n_queries}, k={spec.k}, "
        f"T={spec.timestamps}, scale={scale}"
    )
    for paper_grid in PAPER_GRIDS:
        grid = scaled_grid(scale, paper_grid)
        if any(p.value == grid for p in result.points):
            continue  # scaled sweep collapsed two paper granularities
        result.points.extend(
            run_algorithms(workload, grid, "cells_per_axis", grid)
        )
    return result


def main(argv: list[str] | None = None) -> ExperimentResult:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    result = run(scale=args.scale, seed=args.seed)
    print_result(result, metrics=("cpu_sec", "cell_accesses"))
    return result


if __name__ == "__main__":
    main()
