"""Ablations of CPM's design choices (DESIGN.md Section 6).

Three CPM variants replay the same workload:

* **full** — the paper's algorithm;
* **no-merge** — `merge_optimization=False`: the Section 3.3 batch
  enhancement is disabled, so any outgoing NN triggers a re-computation
  (the Section 3.2 single-update semantics);
* **no-bookkeeping** — `reuse_bookkeeping=False`: the low-memory fallback;
  affected queries recompute from scratch instead of resuming the visit
  list and residual heap.

Expected shape: full <= no-merge <= no-bookkeeping in both CPU time and
cell accesses; the gaps quantify how much each mechanism contributes.
"""

from __future__ import annotations

import argparse

from repro.core.cpm import CPMMonitor
from repro.api.session import replay_workload
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SeriesPoint,
    make_workload,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

VARIANTS = ("full", "no-merge", "no-bookkeeping")


def build_variant(variant: str, cells_per_axis: int, bounds) -> CPMMonitor:
    """Instantiate a CPM ablation variant by name."""
    if variant == "full":
        monitor = CPMMonitor(cells_per_axis, bounds=bounds)
    elif variant == "no-merge":
        monitor = CPMMonitor(cells_per_axis, bounds=bounds, merge_optimization=False)
    elif variant == "no-bookkeeping":
        monitor = CPMMonitor(cells_per_axis, bounds=bounds, reuse_bookkeeping=False)
    else:
        raise ValueError(f"unknown variant {variant!r}")
    monitor.name = f"CPM[{variant}]"
    return monitor


def run(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation",
        title="CPM design-choice ablations (same workload)",
        parameter="variant",
    )
    spec = scaled_spec(scale, seed=seed)
    grid = scaled_grid(scale)
    workload = make_workload(spec)
    for variant in VARIANTS:
        monitor = build_variant(variant, grid, spec.bounds)
        report = replay_workload(monitor, workload)
        result.points.append(
            SeriesPoint(
                parameter="variant",
                value=variant,
                algorithm="CPM",  # one column; the sweep value is the variant
                report=report,
            )
        )
    result.notes.append(
        f"workload: N={spec.n_objects}, n={spec.n_queries}, k={spec.k}, "
        f"T={spec.timestamps}, grid={grid}^2"
    )
    return result


def main(argv: list[str] | None = None) -> ExperimentResult:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    result = run(scale=args.scale, seed=args.seed)
    print_result(result, metrics=("cpu_sec", "cell_accesses"))
    return result


if __name__ == "__main__":
    main()
