"""Figure 6.4 — effect of object speed (6.4a) and query speed (6.4b).

Paper sweep: speed class in {slow, medium, fast} for objects (6.4a) and
queries (6.4b), everything else at defaults.  Expected shape:

* 6.4a — CPM is practically unaffected by object speed, while both
  YPK-CNN and SEA-CNN degrade with faster objects (their search regions
  are bounded by how far the furthest previous neighbor moved);
* 6.4b — CPM and YPK-CNN are insensitive to query speed (both recompute
  moving queries from scratch), while SEA-CNN's search region — and hence
  its cost — grows with the query displacement.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

SPEEDS = ("slow", "medium", "fast")


def run_object_speed(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6.4a",
        title="CPU time versus object speed",
        parameter="object_speed",
    )
    grid = scaled_grid(scale)
    for speed in SPEEDS:
        spec = scaled_spec(scale, object_speed=speed, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "object_speed", speed))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def run_query_speed(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6.4b",
        title="CPU time versus query speed",
        parameter="query_speed",
    )
    grid = scaled_grid(scale)
    for speed in SPEEDS:
        spec = scaled_spec(scale, query_speed=speed, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "query_speed", speed))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def main(argv: list[str] | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    res_a = run_object_speed(scale=args.scale, seed=args.seed)
    print_result(res_a)
    res_b = run_query_speed(scale=args.scale, seed=args.seed)
    print_result(res_b)
    return res_a, res_b


if __name__ == "__main__":
    main()
