"""Run the full evaluation and emit a markdown report.

``python -m repro.experiments.run_all --scale 0.05 --out report.md``
regenerates every figure of the paper (plus the space table and the
ablations) and writes the series as a single markdown document — the raw
material behind EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from contextlib import redirect_stdout

from repro.experiments import (
    ablations,
    fig_6_1,
    fig_6_2,
    fig_6_3,
    fig_6_4,
    fig_6_5,
    fig_6_6,
    space_table,
)
from repro.experiments.common import DEFAULT_SCALE


def run_all(scale: float = DEFAULT_SCALE, seed: int = 2005) -> str:
    """Run every experiment; returns the combined report text."""
    sections: list[tuple[str, object]] = [
        ("Figure 6.1 — grid granularity", lambda: fig_6_1.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Figure 6.2 — scalability (N, n)", lambda: fig_6_2.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Figure 6.3 — effect of k", lambda: fig_6_3.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Figure 6.4 — speeds", lambda: fig_6_4.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Figure 6.5 — agilities", lambda: fig_6_5.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Figure 6.6 — module isolation", lambda: fig_6_6.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Footnote 6 — space", lambda: space_table.main(["--scale", str(scale), "--seed", str(seed)])),
        ("Ablations", lambda: ablations.main(["--scale", str(scale), "--seed", str(seed)])),
    ]
    out = io.StringIO()
    out.write(f"# CPM evaluation report (scale={scale}, seed={seed})\n\n")
    for title, runner in sections:
        out.write(f"## {title}\n\n```\n")
        t0 = time.perf_counter()
        buf = io.StringIO()
        with redirect_stdout(buf):
            runner()
        out.write(buf.getvalue().rstrip() + "\n")
        out.write(f"```\n\n_elapsed: {time.perf_counter() - t0:.1f}s_\n\n")
    return out.getvalue()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--out", type=str, default=None,
                        help="write the markdown report to this path")
    args = parser.parse_args(argv)
    report = run_all(scale=args.scale, seed=args.seed)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
