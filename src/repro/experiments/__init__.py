"""Experiment drivers regenerating every figure of the evaluation
(Section 6).  Each ``fig_6_x`` module exposes a ``run(scale=...)`` function
returning an :class:`repro.experiments.common.ExperimentResult` and a
``main()`` that prints the series as an ASCII table, so that

``python -m repro.experiments.fig_6_1``

regenerates the corresponding figure's data at a laptop-friendly scale
(raise ``--scale`` towards 1.0 for the paper's full sizes).
"""

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    SeriesPoint,
    build_monitor,
    make_workload,
    run_algorithms,
    scaled_spec,
)
from repro.experiments.reporting import format_table, render_result

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentResult",
    "SeriesPoint",
    "build_monitor",
    "format_table",
    "make_workload",
    "render_result",
    "run_algorithms",
    "scaled_spec",
]
