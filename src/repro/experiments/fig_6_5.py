"""Figure 6.5 — effect of object agility (6.5a) and query agility (6.5b).

Paper sweep: f_obj and f_qry in {10%, 20%, 30%, 40%, 50%}, everything else
at defaults.  Expected shape:

* 6.5a — every method's cost grows with the fraction of moving objects;
  CPM grows gently (index update cost is linear in N * f_obj);
* 6.5b — CPM's cost grows with f_qry (NN computation for a moving query is
  pricier than maintaining a static one); YPK-CNN is nearly flat (it pays
  a full re-evaluation either way); SEA-CNN grows as well.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.reporting import print_result

AGILITIES = (0.1, 0.2, 0.3, 0.4, 0.5)


def run_object_agility(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6.5a",
        title="CPU time versus object agility",
        parameter="f_obj",
    )
    grid = scaled_grid(scale)
    for agility in AGILITIES:
        spec = scaled_spec(scale, object_agility=agility, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "f_obj", agility))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def run_query_agility(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6.5b",
        title="CPU time versus query agility",
        parameter="f_qry",
    )
    grid = scaled_grid(scale)
    for agility in AGILITIES:
        spec = scaled_spec(scale, query_agility=agility, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "f_qry", agility))
    result.notes.append(f"grid={grid}^2, scale={scale}")
    return result


def main(argv: list[str] | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    res_a = run_object_agility(scale=args.scale, seed=args.seed)
    print_result(res_a)
    res_b = run_query_agility(scale=args.scale, seed=args.seed)
    print_result(res_b)
    return res_a, res_b


if __name__ == "__main__":
    main()
