"""Figure 6.6 — module isolation: constantly moving (6.6a) and static
(6.6b) queries versus the object population N.

* 6.6a isolates the **NN computation** modules: every query moves every
  timestamp (f_qry = 100%), so results are recomputed from scratch each
  cycle.  SEA-CNN is omitted, exactly as in the paper ("it does not include
  an explicit mechanism for obtaining the initial NN set").  Expected
  shape: CPM below YPK-CNN, gap widening with N.
* 6.6b isolates **result maintenance**: queries never move (f_qry = 0%).
  Expected shape: YPK-CNN and SEA-CNN similar, CPM far below both.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)
from repro.experiments.fig_6_2 import PAPER_N
from repro.experiments.reporting import print_result


def run_moving(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    """Figure 6.6a: constantly moving queries (NN computation module)."""
    result = ExperimentResult(
        experiment="Figure 6.6a",
        title="CPU time, constantly moving queries, versus N",
        parameter="N",
    )
    grid = scaled_grid(scale)
    for paper_n in PAPER_N:
        n_objects = max(200, round(paper_n * scale))
        if any(p.value == n_objects for p in result.points):
            continue  # scaled sweep collapsed two population sizes
        spec = scaled_spec(scale, n_objects=n_objects, query_agility=1.0, seed=seed)
        workload = make_workload(spec)
        result.points.extend(
            run_algorithms(
                workload, grid, "N", n_objects, algorithms=("CPM", "YPK-CNN")
            )
        )
    result.notes.append(f"f_qry=100%, grid={grid}^2, scale={scale}; SEA-CNN omitted")
    return result


def run_static(scale: float = DEFAULT_SCALE, seed: int = 2005) -> ExperimentResult:
    """Figure 6.6b: static queries (result maintenance module)."""
    result = ExperimentResult(
        experiment="Figure 6.6b",
        title="CPU time, static queries, versus N",
        parameter="N",
    )
    grid = scaled_grid(scale)
    for paper_n in PAPER_N:
        n_objects = max(200, round(paper_n * scale))
        if any(p.value == n_objects for p in result.points):
            continue  # scaled sweep collapsed two population sizes
        spec = scaled_spec(scale, n_objects=n_objects, query_agility=0.0, seed=seed)
        workload = make_workload(spec)
        result.points.extend(run_algorithms(workload, grid, "N", n_objects))
    result.notes.append(f"f_qry=0%, grid={grid}^2, scale={scale}")
    return result


def main(argv: list[str] | None = None) -> tuple[ExperimentResult, ExperimentResult]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=2005)
    args = parser.parse_args(argv)
    res_a = run_moving(scale=args.scale, seed=args.seed)
    print_result(res_a)
    res_b = run_static(scale=args.scale, seed=args.seed)
    print_result(res_b)
    return res_a, res_b


if __name__ == "__main__":
    main()
