"""repro — Conceptual Partitioning (CPM) for continuous NN monitoring.

A full reproduction of Mouratidis, Hadjieleftheriou & Papadias,
"Conceptual Partitioning: An Efficient Method for Continuous Nearest
Neighbor Monitoring" (SIGMOD 2005): the CPM algorithm with its aggregate
and constrained extensions, the YPK-CNN and SEA-CNN baselines, a
Brinkhoff-style moving-object workload generator, a replay/measurement
engine, the Section 4.1 analytical model and drivers regenerating every
figure of the paper's evaluation.

Quickstart::

    from repro import CPMMonitor, ObjectUpdate

    monitor = CPMMonitor(cells_per_axis=64)
    monitor.load_objects([(1, (0.10, 0.20)), (2, (0.70, 0.75))])
    print(monitor.install_query(qid=0, point=(0.5, 0.5), k=1))
    monitor.process([ObjectUpdate(1, (0.10, 0.20), (0.51, 0.52))])
    print(monitor.result(0))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.analysis import model as analysis_model
from repro.api.client import Client
from repro.api.queries import (
    ConstrainedKnnSpec,
    FilteredKnnSpec,
    KnnSpec,
    RangeSpec,
)
from repro.api.server import MonitorSocketServer
from repro.api.session import QueryHandle, Session, replay_workload
from repro.baselines.brute import BruteForceMonitor
from repro.baselines.naive_grid import naive_nn_search, naive_strategy_search
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.core.metrics_ext import MinkowskiNNStrategy
from repro.core.partition import ConceptualPartition
from repro.core.range_monitor import GridRangeMonitor
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    FilteredStrategy,
    PointNNStrategy,
    QueryStrategy,
)
from repro.engine.metrics import CycleMetrics, RunReport
from repro.geometry.aggregates import adist
from repro.geometry.points import dist
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.ingest import (
    GeneratorFeed,
    IngestBuffer,
    IngestDriver,
    JsonlTraceFeed,
    SocketFeed,
    UpdateFeed,
    WorkloadFeed,
)
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.network import RoadNetwork, grid_network, random_geometric_network
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import Workload, WorkloadSpec
from repro.monitor import ContinuousMonitor
from repro.service.deltas import ResultDelta, diff_results
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor, ShardPlan
from repro.service.subscriptions import (
    FanoutQueue,
    SlowConsumerPolicy,
    SubscriptionHub,
)
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    UpdateBatch,
    appear_update,
    disappear_update,
    move_update,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateNNStrategy",
    "BrinkhoffGenerator",
    "BruteForceMonitor",
    "CPMMonitor",
    "Client",
    "ConceptualPartition",
    "ConstrainedKnnSpec",
    "ConstrainedStrategy",
    "ContinuousMonitor",
    "CycleMetrics",
    "FanoutQueue",
    "FilteredKnnSpec",
    "FilteredStrategy",
    "FlatUpdateBatch",
    "GeneratorFeed",
    "Grid",
    "GridRangeMonitor",
    "IngestBuffer",
    "IngestDriver",
    "JsonlTraceFeed",
    "KnnSpec",
    "MinkowskiNNStrategy",
    "MonitorSocketServer",
    "MonitoringService",
    "ObjectUpdate",
    "PointNNStrategy",
    "QueryHandle",
    "QueryStrategy",
    "QueryUpdate",
    "QueryUpdateKind",
    "RangeSpec",
    "Rect",
    "ResultDelta",
    "RoadNetwork",
    "RunReport",
    "SeaCnnMonitor",
    "Session",
    "ShardPlan",
    "SlowConsumerPolicy",
    "ShardedMonitor",
    "SocketFeed",
    "SubscriptionHub",
    "UniformGenerator",
    "UpdateBatch",
    "UpdateFeed",
    "Workload",
    "WorkloadFeed",
    "WorkloadSpec",
    "YpkCnnMonitor",
    "adist",
    "analysis_model",
    "appear_update",
    "diff_results",
    "disappear_update",
    "dist",
    "grid_network",
    "move_update",
    "naive_nn_search",
    "naive_strategy_search",
    "random_geometric_network",
    "replay_workload",
]
