"""d-dimensional CPM monitor (correctness-focused port of Section 3).

Implements the full pipeline — NN computation, book-keeping, NN
re-computation and batched update handling with the in_list/out_count
merge — for point k-NN queries in any dimensionality, over
:class:`repro.ndim.grid.NdGrid` and
:class:`repro.ndim.partition.NdConceptualPartition`.

Per-axis cell sides may differ (non-cubic workspaces); each direction's
key then steps by its own axis ``δ_a`` per level, which preserves the
Lemma 3.1 recurrence direction by direction.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from collections.abc import Iterable, Sequence

from repro.core.bookkeeping import CycleScratch
from repro.core.neighbors import NeighborList
from repro.grid.stats import GridStats
from repro.ndim.grid import NdCell, NdGrid, NdPoint
from repro.ndim.partition import NdConceptualPartition
from repro.updates import ObjectUpdate

_CELL = 0
_SLAB = 1

ResultEntry = tuple[float, int]


class _NdQueryState:
    __slots__ = (
        "best_dist",
        "heap",
        "k",
        "marked_upto",
        "nn",
        "partition",
        "point",
        "qid",
        "visit_cells",
        "visit_keys",
        "_seq",
    )

    def __init__(
        self, qid: int, point: NdPoint, k: int, partition: NdConceptualPartition
    ) -> None:
        self.qid = qid
        self.point = point
        self.k = k
        self.partition = partition
        self.heap: list = []
        self.visit_cells: list[NdCell] = []
        self.visit_keys: list[float] = []
        self.nn = NeighborList(k)
        self.best_dist = math.inf
        self.marked_upto = 0
        self._seq = 0

    def push_cell(self, key: float, cell: NdCell) -> None:
        self._seq += 1
        heapq.heappush(self.heap, (key, self._seq, _CELL, cell))

    def push_slab(self, key: float, direction: int, level: int) -> None:
        self._seq += 1
        heapq.heappush(self.heap, (key, self._seq, _SLAB, (direction, level)))


class NdCPMMonitor:
    """CPM continuous point-NN monitoring in d dimensions."""

    name = "CPM-nd"

    def __init__(
        self,
        cells_per_axis: int = 16,
        *,
        bounds: Sequence[tuple[float, float]] | None = None,
        dimensions: int = 3,
    ) -> None:
        self._grid = NdGrid(cells_per_axis, bounds=bounds, dimensions=dimensions)
        self._positions: dict[int, NdPoint] = {}
        self._queries: dict[int, _NdQueryState] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def grid(self) -> NdGrid:
        return self._grid

    @property
    def dimensions(self) -> int:
        return self._grid.dimensions

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    def reset_stats(self) -> None:
        self._grid.stats.reset()

    @property
    def object_count(self) -> int:
        return len(self._positions)

    def object_position(self, oid: int) -> NdPoint | None:
        return self._positions.get(oid)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def best_dist(self, qid: int) -> float:
        return self._queries[qid].best_dist

    def influence_cells(self, qid: int) -> list[NdCell]:
        state = self._queries[qid]
        return state.visit_cells[: state.marked_upto]

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, NdPoint]]) -> None:
        if self._queries:
            raise RuntimeError(
                "bulk loading after query installation would corrupt results; "
                "send appearance updates instead"
            )
        for oid, point in objects:
            point = tuple(point)
            self._grid.insert(oid, point)
            self._positions[oid] = point

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: NdPoint, k: int = 1) -> list[ResultEntry]:
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        point = tuple(point)
        if len(point) != self.dimensions:
            raise ValueError(
                f"query has {len(point)} coordinates, grid has "
                f"{self.dimensions} dimensions"
            )
        cell = self._grid.cell_of(point)
        partition = NdConceptualPartition.around_cell(cell, self._grid.cells_per_axis)
        state = _NdQueryState(qid, point, k, partition)
        state.push_cell(self._grid.mindist(cell, point), cell)
        for direction in range(partition.direction_count):
            if partition.exists(direction, 0):
                state.push_slab(self._gap0(state, direction), direction, 0)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        self._reconcile_marks(state, processed_upto=len(state.visit_cells))
        self._queries[qid] = state
        return state.nn.entries()

    def remove_query(self, qid: int) -> None:
        state = self._queries.pop(qid)
        for idx in range(state.marked_upto):
            self._grid.remove_mark(state.visit_cells[idx], qid)

    def result(self, qid: int) -> list[ResultEntry]:
        return self._queries[qid].nn.entries()

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------

    def _gap0(self, state: _NdQueryState, direction: int) -> float:
        """Perpendicular gap from the query to the level-0 slab."""
        partition = state.partition
        axis, sign = partition.direction_axis_sign(direction)
        lo_w = self._grid.bounds[axis][0]
        delta = self._grid.deltas[axis]
        if sign > 0:
            edge = lo_w + (partition.core_hi[axis] + 1) * delta
            return max(0.0, edge - state.point[axis])
        edge = lo_w + partition.core_lo[axis] * delta
        return max(0.0, state.point[axis] - edge)

    def _run_search(self, state: _NdQueryState) -> None:
        grid = self._grid
        q = state.point
        nn = state.nn
        heap = state.heap
        partition = state.partition
        while heap:
            if nn.is_full and heap[0][0] >= nn.kth_dist:
                break
            key, _seq, kind, payload = heapq.heappop(heap)
            if kind == _CELL:
                self._process_cell(state, key, payload)
            else:
                direction, level = payload
                for cell in partition.slab_cells(direction, level):
                    state.push_cell(grid.mindist(cell, q), cell)
                if partition.exists(direction, level + 1):
                    axis, _sign = partition.direction_axis_sign(direction)
                    state.push_slab(key + grid.deltas[axis], direction, level + 1)

    def _process_cell(self, state: _NdQueryState, key: float, cell: NdCell) -> None:
        q = state.point
        nn = state.nn
        # Fused scan bounded by the k-th distance as of cell entry: the
        # kernel returns a superset of what the running bound would keep,
        # and nn.add makes the final (dist, oid)-ordered accept decision,
        # so results are identical to the unbounded dict scan.
        for d, oid in self._grid.scan_within(cell, q, nn.kth_dist):
            nn.add(d, oid)
        self._grid.add_mark(cell, state.qid)
        state.visit_cells.append(cell)
        state.visit_keys.append(key)
        state.marked_upto = len(state.visit_cells)

    def _recompute(self, state: _NdQueryState) -> None:
        grid = self._grid
        q = state.point
        nn = state.nn
        nn.clear()
        pos = 0
        total = len(state.visit_cells)
        while pos < total:
            if nn.is_full and state.visit_keys[pos] >= nn.kth_dist:
                break
            cell = state.visit_cells[pos]
            for d, oid in grid.scan_within(cell, q, nn.kth_dist):
                nn.add(d, oid)
            if pos >= state.marked_upto:
                grid.add_mark(cell, state.qid)
                state.marked_upto = pos + 1
            pos += 1
        if pos == total:
            self._run_search(state)
            pos = len(state.visit_cells)
        state.best_dist = nn.kth_dist
        self._reconcile_marks(state, processed_upto=pos)

    def _reconcile_marks(self, state: _NdQueryState, processed_upto: int) -> None:
        target = bisect_right(
            state.visit_keys, state.best_dist + self._grid.boundary_epsilon
        )
        if target > processed_upto:
            target = processed_upto
        current = max(state.marked_upto, processed_upto)
        if target < current:
            for idx in range(target, current):
                self._grid.remove_mark(state.visit_cells[idx], state.qid)
        state.marked_upto = target

    # ------------------------------------------------------------------
    # Update handling (Figure 3.8, d-dimensional)
    # ------------------------------------------------------------------

    def process(self, object_updates: Sequence[ObjectUpdate]) -> set[int]:
        grid = self._grid
        queries = self._queries
        scratch: dict[int, CycleScratch] = {}

        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None:
                old_cell = grid.delete(oid, old)
                for qid in grid.marks(old_cell):
                    state = queries[qid]
                    sc = scratch.get(qid)
                    if oid in state.nn:
                        if sc is None:
                            sc = scratch[qid] = CycleScratch(state.k)
                            sc.before = state.nn.entries()
                        if new is not None:
                            d = math.dist(new, state.point)
                            if d <= state.best_dist:
                                state.nn.update_dist(oid, d)
                                sc.note_reorder()
                                continue
                        state.nn.remove(oid)
                        sc.note_outgoing()
                    elif sc is not None:
                        sc.drop_incomer(oid)
            if new is not None:
                new = tuple(new)
                new_cell = grid.insert(oid, new)
                self._positions[oid] = new
                for qid in grid.marks(new_cell):
                    state = queries[qid]
                    if oid in state.nn:
                        continue
                    d = math.dist(new, state.point)
                    if d <= state.best_dist:
                        sc = scratch.get(qid)
                        if sc is None:
                            sc = scratch[qid] = CycleScratch(state.k)
                            sc.before = state.nn.entries()
                        sc.note_incomer(d, oid)
            else:
                self._positions.pop(oid, None)

        changed: set[int] = set()
        for qid, sc in scratch.items():
            if not sc.touched:
                continue
            state = queries[qid]
            if len(sc.in_list) >= sc.out_count:
                state.nn.replace(state.nn.entries() + sc.in_list.entries())
                state.best_dist = state.nn.kth_dist
                self._reconcile_marks(state, processed_upto=state.marked_upto)
            else:
                self._recompute(state)
            # Exact change detection against the pre-cycle result captured
            # at scratch creation (same semantics as the 2-D engine).
            if state.nn.entries() != sc.before:
                changed.add(qid)
        return changed
