"""The d-dimensional conceptual partition (slab tiling).

Directions are indexed ``0 .. 2d-1``: direction ``2a`` is the positive
side of axis ``a``, direction ``2a + 1`` its negative side.  The level-l
slab of direction ``(a, +)`` is the box of cells with

* offset exactly ``l + 1`` beyond the core along axis ``a``,
* offsets within ``±l`` of the core on axes *before* ``a``,
* offsets within ``±(l + 1)`` on axes *after* ``a``,

clipped to the grid (and the mirror image for the negative side).
Equivalently: a shell cell belongs to the *first* axis on which its
offset magnitude attains the shell radius.  This tiles each shell — hence
the whole grid — exactly once (verified by property tests in up to four
dimensions), and every slab spans the core's projection on all non-normal
axes, so its minimum distance from the query is the perpendicular gap and
grows by exactly ``δ`` per level (Lemma 3.1 in d dimensions).

For ``d = 2`` this produces an axis-priority variant of the paper's
pinwheel (Figure 3.1b): each ring holds the same total cell count and
yields the same key sequence, but corners are assigned by axis order
instead of rotation (axis-0 arms get ``2l+3`` cells, axis-1 arms
``2l+1``, versus the pinwheel's uniform ``2l+2``).
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product

NdCell = tuple[int, ...]


class NdConceptualPartition:
    """Slab partition of a ``cells_per_axis ** d`` grid around a core box.

    Args:
        core_lo, core_hi: inclusive per-axis cell ranges of the core block.
        cells_per_axis: grid cells along every axis.
    """

    __slots__ = ("cells_per_axis", "core_hi", "core_lo", "dimensions")

    def __init__(
        self,
        core_lo: NdCell,
        core_hi: NdCell,
        cells_per_axis: int,
    ) -> None:
        if len(core_lo) != len(core_hi):
            raise ValueError("core corner dimensionality mismatch")
        if not core_lo:
            raise ValueError("at least one dimension required")
        for lo, hi in zip(core_lo, core_hi):
            if not (0 <= lo <= hi < cells_per_axis):
                raise ValueError(
                    f"core ({core_lo}, {core_hi}) does not fit a grid with "
                    f"{cells_per_axis} cells per axis"
                )
        self.core_lo = tuple(core_lo)
        self.core_hi = tuple(core_hi)
        self.cells_per_axis = cells_per_axis
        self.dimensions = len(core_lo)

    @classmethod
    def around_cell(cls, cell: NdCell, cells_per_axis: int) -> "NdConceptualPartition":
        return cls(cell, cell, cells_per_axis)

    @property
    def direction_count(self) -> int:
        return 2 * self.dimensions

    def direction_axis_sign(self, direction: int) -> tuple[int, int]:
        """Decode a direction index into ``(axis, sign)`` with sign ±1."""
        if not 0 <= direction < self.direction_count:
            raise ValueError(f"unknown direction {direction}")
        return (direction // 2, 1 if direction % 2 == 0 else -1)

    # ------------------------------------------------------------------
    # Levels
    # ------------------------------------------------------------------

    def max_level(self, direction: int) -> int:
        """Highest level of a direction inside the grid (−1 when none)."""
        axis, sign = self.direction_axis_sign(direction)
        if sign > 0:
            return self.cells_per_axis - 2 - self.core_hi[axis]
        return self.core_lo[axis] - 1

    def exists(self, direction: int, level: int) -> bool:
        return 0 <= level <= self.max_level(direction)

    # ------------------------------------------------------------------
    # Cell enumeration
    # ------------------------------------------------------------------

    def slab_ranges(
        self, direction: int, level: int
    ) -> list[tuple[int, int]]:
        """Clipped inclusive per-axis cell ranges of the slab."""
        if not self.exists(direction, level):
            raise ValueError(f"slab {direction}/{level} is outside the grid")
        axis, sign = self.direction_axis_sign(direction)
        ranges: list[tuple[int, int]] = []
        for b in range(self.dimensions):
            if b == axis:
                coord = (
                    self.core_hi[axis] + level + 1
                    if sign > 0
                    else self.core_lo[axis] - level - 1
                )
                ranges.append((coord, coord))
            else:
                spread = level if b < axis else level + 1
                lo = max(0, self.core_lo[b] - spread)
                hi = min(self.cells_per_axis - 1, self.core_hi[b] + spread)
                ranges.append((lo, hi))
        return ranges

    def slab_cells(self, direction: int, level: int) -> Iterator[NdCell]:
        """Cells of the slab (clipped to the grid)."""
        ranges = self.slab_ranges(direction, level)
        yield from product(*(range(lo, hi + 1) for lo, hi in ranges))

    def core_cells(self) -> Iterator[NdCell]:
        yield from product(
            *(range(lo, hi + 1) for lo, hi in zip(self.core_lo, self.core_hi))
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def owner_of(self, cell: NdCell) -> tuple[int, int] | None:
        """``(direction, level)`` owning ``cell``; ``None`` for the core."""
        offsets = []
        for b in range(self.dimensions):
            if cell[b] > self.core_hi[b]:
                offsets.append(cell[b] - self.core_hi[b])
            elif cell[b] < self.core_lo[b]:
                offsets.append(cell[b] - self.core_lo[b])  # negative
            else:
                offsets.append(0)
        radius = max(abs(o) for o in offsets)
        if radius == 0:
            return None
        level = radius - 1
        for axis in range(self.dimensions):
            if abs(offsets[axis]) == radius:
                direction = 2 * axis if offsets[axis] > 0 else 2 * axis + 1
                return (direction, level)
        raise AssertionError("unreachable")  # pragma: no cover
