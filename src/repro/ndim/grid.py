"""d-dimensional regular grid index.

The direct generalization of :class:`repro.grid.grid.Grid`: cells are
addressed by integer coordinate tuples, cover half-open boxes of side
``delta`` per dimension, carry query marks, and charge one *cell access*
per object-list scan.

Cell storage is columnar, mirroring the 2-D grid: parallel ``oids`` /
``pts`` lists plus an ``oid -> slot`` side index (append-insert,
delete-by-swap, both expected O(1)).  The fused
:meth:`NdGrid.scan_within` kernel computes every object distance in one
comprehension; :meth:`NdGrid.scan` remains the dict compatibility view
with identical accounting.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from repro.grid.kernels import resolve_backend, within_nd
from repro.grid.stats import GridStats

NdPoint = tuple[float, ...]
NdCell = tuple[int, ...]

_EMPTY_OBJECTS: dict[int, NdPoint] = {}
_EMPTY_MARKS: frozenset[int] = frozenset()


class _NdCellColumns:
    """One d-dimensional cell as ``oids`` / ``pts`` columns + slot index."""

    __slots__ = ("oids", "pts", "slot")

    def __init__(self) -> None:
        self.oids: list[int] = []
        self.pts: list[NdPoint] = []
        self.slot: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.oids)

    def insert(self, oid: int, point: NdPoint) -> None:
        self.slot[oid] = len(self.oids)
        self.oids.append(oid)
        self.pts.append(point)

    def delete(self, oid: int) -> None:
        idx = self.slot.pop(oid)
        last_oid = self.oids.pop()
        last_pt = self.pts.pop()
        if last_oid != oid:
            self.oids[idx] = last_oid
            self.pts[idx] = last_pt
            self.slot[last_oid] = idx

    def as_dict(self) -> dict[int, NdPoint]:
        return dict(zip(self.oids, self.pts))


class NdGrid:
    """Regular grid over a d-dimensional box workspace.

    Args:
        cells_per_axis: number of cells along every dimension.
        bounds: per-dimension ``(lo, hi)`` pairs; defaults to the unit
            hypercube of the given dimensionality.
        dimensions: dimensionality when ``bounds`` is omitted.
    """

    __slots__ = (
        "boundary_epsilon",
        "bounds",
        "cells_per_axis",
        "deltas",
        "dimensions",
        "stats",
        "_cells",
        "_marks",
        "_n_objects",
        "_vec_min",
        "_within_nd",
    )

    def __init__(
        self,
        cells_per_axis: int,
        *,
        bounds: Sequence[tuple[float, float]] | None = None,
        dimensions: int = 3,
        backend: str | None = None,
    ) -> None:
        if cells_per_axis < 1:
            raise ValueError("cells_per_axis must be positive")
        if bounds is None:
            bounds = [(0.0, 1.0)] * dimensions
        bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        if not bounds:
            raise ValueError("at least one dimension required")
        for lo, hi in bounds:
            if hi <= lo:
                raise ValueError(f"degenerate extent ({lo}, {hi})")
        self.bounds = tuple(bounds)
        self.dimensions = len(bounds)
        self.cells_per_axis = cells_per_axis
        self.deltas = tuple((hi - lo) / cells_per_axis for lo, hi in bounds)
        self.boundary_epsilon = 1e-12 * (
            1.0 + sum(abs(lo) + abs(hi) for lo, hi in bounds)
        )
        self.stats = GridStats()
        self._cells: dict[NdCell, _NdCellColumns] = {}
        self._marks: dict[NdCell, set[int]] = {}
        self._n_objects = 0
        # d-dimensional cells keep rows as point tuples regardless of the
        # backend; only the distance+filter kernel is swapped (the numpy
        # one copies into a matrix, so it pays off past the crossover).
        kernel = resolve_backend(backend)
        self._within_nd = kernel.within_nd
        self._vec_min = kernel.vec_min if kernel.within_nd is not within_nd else 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def cell_of(self, point: NdPoint) -> NdCell:
        """Cell containing ``point`` (clamped into the grid)."""
        if len(point) != self.dimensions:
            raise ValueError(
                f"point has {len(point)} coordinates, grid has "
                f"{self.dimensions} dimensions"
            )
        cell = []
        for value, (lo, _hi), delta in zip(point, self.bounds, self.deltas):
            idx = int((value - lo) / delta)
            if idx < 0:
                idx = 0
            elif idx >= self.cells_per_axis:
                idx = self.cells_per_axis - 1
            cell.append(idx)
        return tuple(cell)

    def in_bounds(self, cell: NdCell) -> bool:
        return all(0 <= c < self.cells_per_axis for c in cell)

    def cell_extent(self, cell: NdCell, axis: int) -> tuple[float, float]:
        """``(lo, hi)`` extent of a cell along one axis (last cell reaches
        the workspace edge exactly, mirroring the 2D grid)."""
        lo_w, hi_w = self.bounds[axis]
        delta = self.deltas[axis]
        lo = lo_w + cell[axis] * delta
        hi = lo + delta
        if cell[axis] == self.cells_per_axis - 1 and hi < hi_w:
            hi = hi_w
        return (lo, hi)

    def mindist(self, cell: NdCell, q: NdPoint) -> float:
        """Minimum distance between the cell's box and point ``q``."""
        acc = 0.0
        for axis in range(self.dimensions):
            lo, hi = self.cell_extent(cell, axis)
            value = q[axis]
            if value < lo:
                gap = lo - value
            elif value > hi:
                gap = value - hi
            else:
                continue
            acc += gap * gap
        return math.sqrt(acc)

    def all_cells(self) -> Iterator[NdCell]:
        """Dense enumeration of every cell (test/diagnostic use)."""
        def rec(prefix: tuple[int, ...], axis: int):
            if axis == self.dimensions:
                yield prefix
                return
            for c in range(self.cells_per_axis):
                yield from rec(prefix + (c,), axis + 1)

        yield from rec((), 0)

    @property
    def total_cells(self) -> int:
        return self.cells_per_axis**self.dimensions

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def insert(self, oid: int, point: NdPoint) -> NdCell:
        coord = self.cell_of(point)
        cell = self._cells.get(coord)
        if cell is None:
            cell = _NdCellColumns()
            self._cells[coord] = cell
        if oid in cell.slot:
            raise KeyError(f"object {oid} already present in cell {coord}")
        cell.insert(oid, tuple(point))
        self._n_objects += 1
        self.stats.inserts += 1
        return coord

    def delete(self, oid: int, point: NdPoint) -> NdCell:
        coord = self.cell_of(point)
        cell = self._cells.get(coord)
        if cell is None or oid not in cell.slot:
            raise KeyError(f"object {oid} not found in cell {coord}")
        cell.delete(oid)
        if not cell.oids:
            del self._cells[coord]
        self._n_objects -= 1
        self.stats.deletes += 1
        return coord

    def bulk_load(self, objects: Iterable[tuple[int, NdPoint]]) -> None:
        for oid, point in objects:
            self.insert(oid, point)

    def scan(self, cell: NdCell) -> dict[int, NdPoint]:
        """Scan a cell's object list — charges one cell access.

        Dict compatibility view (a fresh snapshot per call); the hot path
        is the fused :meth:`scan_within` kernel, which charges
        identically.
        """
        columns = self._cells.get(cell)
        self.stats.cell_scans += 1
        if columns is None:
            return _EMPTY_OBJECTS
        self.stats.objects_scanned += len(columns.oids)
        return columns.as_dict()

    def peek(self, cell: NdCell) -> dict[int, NdPoint]:
        """Object list of a cell *without* charging a cell access.

        Tests/diagnostics only — algorithm code must go through
        :meth:`scan` or :meth:`scan_within` (mirrors the 2-D grid).
        """
        columns = self._cells.get(cell)
        if columns is None:
            return _EMPTY_OBJECTS
        return columns.as_dict()

    def scan_within(
        self, cell: NdCell, q: NdPoint, r: float
    ) -> list[tuple[float, int]]:
        """Fused scan-and-filter: ``(dist, oid)`` pairs with ``dist <= r``.

        One charged cell access with the same accounting as :meth:`scan`
        (the whole cell population counts as scanned; the bound prunes
        candidates, not cost).  ``r = inf`` returns every object.
        """
        columns = self._cells.get(cell)
        self.stats.cell_scans += 1
        if columns is None:
            return []
        oids = columns.oids
        self.stats.objects_scanned += len(oids)
        if len(oids) >= self._vec_min:
            return self._within_nd(oids, columns.pts, q, r)
        return within_nd(oids, columns.pts, q, r)

    def __len__(self) -> int:
        return self._n_objects

    # ------------------------------------------------------------------
    # Marks (influence lists)
    # ------------------------------------------------------------------

    def add_mark(self, cell: NdCell, qid: int) -> None:
        marks = self._marks.get(cell)
        if marks is None:
            marks = set()
            self._marks[cell] = marks
        if qid not in marks:
            marks.add(qid)
            self.stats.mark_ops += 1

    def remove_mark(self, cell: NdCell, qid: int) -> None:
        marks = self._marks.get(cell)
        if marks is None:
            return
        if qid in marks:
            marks.discard(qid)
            self.stats.mark_ops += 1
            if not marks:
                del self._marks[cell]

    def marks(self, cell: NdCell) -> frozenset[int] | set[int]:
        return self._marks.get(cell, _EMPTY_MARKS)

    def marked_cells(self, qid: int) -> list[NdCell]:
        return [cell for cell, marks in self._marks.items() if qid in marks]

    @property
    def total_marks(self) -> int:
        return sum(len(m) for m in self._marks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NdGrid(d={self.dimensions}, {self.cells_per_axis}^d cells, "
            f"objects={self._n_objects})"
        )
