"""n-dimensional CPM (footnote 3 of the paper).

"We focus on two-dimensional Euclidean spaces, but the proposed techniques
can be applied to higher dimensionality and other distance metrics."

This subpackage instantiates the *higher dimensionality* half of that
claim.  The conceptual partitioning generalizes from the 2D pinwheel to
``2d`` directions per level — for each axis ``a`` a positive and a
negative *slab*.  The level-``l`` slab of axis ``a`` is the box of cells
whose offset along ``a`` is exactly ``±(l+1)``, spanning offsets ``±l``
on axes before ``a`` and ``±(l+1)`` on axes after it.  Assigning every
shell cell to its *first* axis with maximal offset makes the slabs tile
each shell exactly once, and — because every slab spans the query's
projection on all other axes — its minimum distance is the pure
perpendicular gap, so Lemma 3.1's ``+δ`` recurrence holds verbatim:
``mindist(DIR_{l+1}, q) = mindist(DIR_l, q) + δ``.

Modules:

* :mod:`repro.ndim.grid` — the d-dimensional regular grid;
* :mod:`repro.ndim.partition` — the slab partition;
* :mod:`repro.ndim.cpm` — a correctness-focused d-dimensional CPM monitor
  (search, re-computation, batched update handling with the in_list /
  out_count merge).

The 2D package remains the optimized implementation used by the paper's
experiments; this one trades constant factors for dimensional generality
and is validated against brute force in 3 and 4 dimensions.
"""

from repro.ndim.cpm import NdCPMMonitor
from repro.ndim.grid import NdGrid
from repro.ndim.partition import NdConceptualPartition

__all__ = ["NdCPMMonitor", "NdConceptualPartition", "NdGrid"]
