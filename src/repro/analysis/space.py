"""Memory-unit accounting for all three monitors (footnote 6 reproduction).

The paper reports the space overhead at the default setting (N=100K, n=5K,
k=16, 128x128 grid) as 2.854 / 3.074 / 3.314 MBytes for YPK-CNN / SEA-CNN /
CPM respectively — CPM pays a modest premium for its book-keeping.  We
reproduce both a *modeled* count (Section 4.1 formulae extended to the
baselines) and a *measured* count (walking live monitor structures), in the
paper's abstract memory units ("the minimum unit of memory can store a
(real or integer) number").

Accounting per method:

* every method: ``3N`` units for the grid's object entries and
  ``3 + 2k`` units per query (id + coordinates, k result ids + distances);
* YPK-CNN: nothing else — it keeps no cell book-keeping;
* SEA-CNN: one unit per (cell, query) answer-region mark;
* CPM: one unit per influence mark plus ``3 * (C_SH + 4)`` units per query
  for the visit list and search heap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import cinf_estimate, csh_estimate
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.monitor import ContinuousMonitor

#: bytes per abstract memory unit (a 4-byte number, as in 2005-era builds).
BYTES_PER_UNIT = 4


def units_to_mbytes(units: float, bytes_per_unit: int = BYTES_PER_UNIT) -> float:
    """Convert abstract memory units to megabytes."""
    return units * bytes_per_unit / (1024.0 * 1024.0)


def modeled_space_units(
    method: str,
    delta: float,
    k: int,
    n_objects: int,
    n_queries: int,
) -> float:
    """Section 4.1-style modeled footprint of a method, in memory units."""
    base = 3.0 * n_objects + n_queries * (3.0 + 2.0 * k)
    method = method.upper()
    if method in ("YPK", "YPK-CNN"):
        return base
    if method in ("SEA", "SEA-CNN"):
        return base + n_queries * cinf_estimate(delta, k, n_objects)
    if method == "CPM":
        return (
            base
            + n_queries * cinf_estimate(delta, k, n_objects)
            + n_queries * 3.0 * (csh_estimate(delta, k, n_objects) + 4.0)
        )
    raise ValueError(f"unknown method {method!r}")


def measured_space_units(monitor: ContinuousMonitor) -> float:
    """Memory units actually held by a live monitor."""
    if isinstance(monitor, CPMMonitor):
        units = 3.0 * monitor.object_count
        units += monitor.grid.total_marks
        for qid in monitor.query_ids():
            state = monitor.query_state(qid)
            units += 3.0 + 2.0 * state.k
            units += 3.0 * (state.csh() + state.heap.rect_entry_count())
        return units
    if isinstance(monitor, SeaCnnMonitor):
        units = 3.0 * monitor.object_count
        units += monitor.grid.total_marks
        for qid in monitor.query_ids():
            entries = monitor.result(qid)
            units += 3.0 + 2.0 * len(entries)
        return units
    if isinstance(monitor, YpkCnnMonitor):
        units = 3.0 * monitor.object_count
        for qid in monitor.query_ids():
            entries = monitor.result(qid)
            units += 3.0 + 2.0 * len(entries)
        return units
    raise TypeError(f"unsupported monitor type {type(monitor).__name__}")


@dataclass(frozen=True, slots=True)
class SpaceRow:
    """One method's modeled and measured footprint."""

    method: str
    modeled_units: float
    measured_units: float

    @property
    def modeled_mbytes(self) -> float:
        return units_to_mbytes(self.modeled_units)

    @property
    def measured_mbytes(self) -> float:
        return units_to_mbytes(self.measured_units)


def space_report(
    monitors: list[ContinuousMonitor],
    delta: float,
    k: int,
    n_objects: int,
    n_queries: int,
) -> list[SpaceRow]:
    """Modeled vs measured footprint rows for a set of live monitors."""
    rows = []
    for monitor in monitors:
        rows.append(
            SpaceRow(
                method=monitor.name,
                modeled_units=modeled_space_units(
                    monitor.name, delta, k, n_objects, n_queries
                ),
                measured_units=measured_space_units(monitor),
            )
        )
    return rows
