"""Closed-form performance model (Section 4.1).

All formulae assume N objects and n queries uniformly distributed in a unit
square workspace, grid cell side ``delta``, and k neighbors per query:

* ``best_dist = sqrt(k / (pi * N))`` — radius of the circle expected to
  contain k uniform objects;
* ``C_inf = pi * ceil(best_dist / delta)^2`` — cells in the influence
  region;
* ``O_inf = C_inf * N * delta^2`` — objects in those cells;
* ``C_SH = 4 * ceil(best_dist / delta)^2`` — cells held in the visit list
  plus the search heap (the circumscribed square of the influence circle);
* ``Space_G = 3N + n * C_inf`` memory units for the grid and influence
  lists; ``Space_QT = n * (15 + 2k + 3 * C_SH)`` for the query table;
* ``Time_CPM = 2 * N * f_obj
  + n * f_qry * (C_SH log C_SH + O_inf log k + 2 C_inf)
  + n * (1 - f_qry) * k log k`` abstract operations per cycle.

These estimates drive two things: the choice of grid granularity (the
``delta`` trade-off of Figure 4.1 / Figure 6.1) and the footnote-6 space
comparison.  The tests validate them against simulation on uniform data.
"""

from __future__ import annotations

import math


def best_dist_estimate(k: int, n_objects: int) -> float:
    """Expected k-th NN distance for uniform data in the unit square."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if n_objects < 1:
        raise ValueError("n_objects must be positive")
    return math.sqrt(k / (math.pi * n_objects))


def cinf_estimate(delta: float, k: int, n_objects: int) -> float:
    """Expected number of cells in the influence region (``C_inf``)."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    rings = math.ceil(best_dist_estimate(k, n_objects) / delta)
    return math.pi * rings * rings


def oinf_estimate(delta: float, k: int, n_objects: int) -> float:
    """Expected number of objects in the influence region (``O_inf``).

    Each cell holds ``N * delta^2`` objects on average; as ``delta``
    shrinks, ``O_inf`` approaches its minimum, k.
    """
    return cinf_estimate(delta, k, n_objects) * n_objects * delta * delta


def csh_estimate(delta: float, k: int, n_objects: int) -> float:
    """Expected cells in the visit list plus search heap (``C_SH``)."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    rings = math.ceil(best_dist_estimate(k, n_objects) / delta)
    return 4.0 * rings * rings


def space_grid(delta: float, k: int, n_objects: int, n_queries: int) -> float:
    """``Space_G = 3N + n * C_inf`` memory units."""
    return 3.0 * n_objects + n_queries * cinf_estimate(delta, k, n_objects)


def space_query_table(delta: float, k: int, n_objects: int, n_queries: int) -> float:
    """``Space_QT = n * (15 + 2k + 3 * C_SH)`` memory units.

    Per query: 3 units for id and coordinates, ``2k`` for the result ids
    and distances, ``3 * (C_SH + 4)`` for visit-list and heap entries
    (cell/rectangle coordinates plus mindist each).
    """
    return n_queries * (15.0 + 2.0 * k + 3.0 * csh_estimate(delta, k, n_objects))


def space_cpm(delta: float, k: int, n_objects: int, n_queries: int) -> float:
    """Total CPM memory units: ``Space_G + Space_QT``."""
    return space_grid(delta, k, n_objects, n_queries) + space_query_table(
        delta, k, n_objects, n_queries
    )


def time_cpm(
    delta: float,
    k: int,
    n_objects: int,
    n_queries: int,
    f_obj: float,
    f_qry: float,
) -> float:
    """Abstract operations per processing cycle (``Time_CPM``).

    The three terms are index maintenance (2 hash operations per moving
    object), NN computation for moving queries (heap operations + object
    probes + influence-list maintenance) and result maintenance for static
    queries (re-ordering the ``best_NN`` tree).
    """
    if not 0.0 <= f_obj <= 1.0 or not 0.0 <= f_qry <= 1.0:
        raise ValueError("agilities must lie in [0, 1]")
    csh = csh_estimate(delta, k, n_objects)
    cinf = cinf_estimate(delta, k, n_objects)
    oinf = oinf_estimate(delta, k, n_objects)
    log_k = math.log2(k) if k > 1 else 1.0
    log_csh = math.log2(csh) if csh > 1 else 1.0
    index_time = 2.0 * n_objects * f_obj
    moving_query_time = n_queries * f_qry * (csh * log_csh + oinf * log_k + 2.0 * cinf)
    static_query_time = n_queries * (1.0 - f_qry) * k * log_k
    return index_time + moving_query_time + static_query_time


def optimal_delta(
    k: int,
    n_objects: int,
    n_queries: int,
    f_obj: float,
    f_qry: float,
    candidates: list[float] | None = None,
) -> float:
    """Grid cell side minimizing the modeled ``Time_CPM``.

    Scans a candidate list (by default the paper's granularities 32..1024
    cells per axis) — the model is not convex in closed form because of the
    ceilings.
    """
    if candidates is None:
        candidates = [1.0 / g for g in (32, 64, 128, 256, 512, 1024)]
    return min(
        candidates,
        key=lambda d: time_cpm(d, k, n_objects, n_queries, f_obj, f_qry),
    )
