"""Analytical performance model of Section 4.1 (system S12 of DESIGN.md).

* :mod:`repro.analysis.model` — closed-form estimates of the influence
  region size (``C_inf``, ``O_inf``), the book-keeping size (``C_SH``),
  the memory footprint (``Space_G``, ``Space_QT``, ``Space_CPM``) and the
  per-cycle running time (``Time_CPM``) under the uniform-distribution
  assumption.
* :mod:`repro.analysis.space` — memory-unit accounting for all three
  monitoring methods, reproducing the footnote-6 space comparison.
"""

from repro.analysis.model import (
    best_dist_estimate,
    cinf_estimate,
    csh_estimate,
    oinf_estimate,
    space_cpm,
    space_grid,
    space_query_table,
    time_cpm,
)
from repro.analysis.space import (
    measured_space_units,
    modeled_space_units,
    space_report,
    units_to_mbytes,
)

__all__ = [
    "best_dist_estimate",
    "cinf_estimate",
    "csh_estimate",
    "measured_space_units",
    "modeled_space_units",
    "oinf_estimate",
    "space_cpm",
    "space_grid",
    "space_query_table",
    "space_report",
    "time_cpm",
    "units_to_mbytes",
]
