"""Brinkhoff-style workload generation (Section 6 experimental setup).

Assembles a :class:`repro.mobility.workload.Workload` from a road network:

* ``N`` objects with the Brinkhoff lifecycle (appear on a node, complete
  the shortest path to a random destination, disappear and get replaced so
  the average population stays at ``N``);
* ``n`` queries moving on the same network that "stay in the system
  throughout the simulation";
* agility sampling: each timestamp, ``f_obj * N`` objects and
  ``f_qry * n`` queries issue location updates, the rest stand still;
* the paper's speed classes for both populations.

The whole stream is deterministic in the spec's seed, so every monitoring
algorithm replays an identical input.
"""

from __future__ import annotations

import random

from repro.geometry.points import Point
from repro.mobility.network import RoadNetwork, grid_network
from repro.mobility.objects import MovingAgent, speed_per_timestamp
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind, UpdateBatch

#: query ids start here so they never collide with object ids in reports.
QUERY_ID_BASE = 1_000_000_000


class BrinkhoffGenerator:
    """Network-based moving object and query generator.

    Args:
        spec: workload parameters (Table 6.1 analogue).
        network: road network to move on; a default perturbed-lattice
            network is built from the spec's seed when omitted.
    """

    def __init__(self, spec: WorkloadSpec, network: RoadNetwork | None = None) -> None:
        self.spec = spec
        self.network = network or grid_network(
            16, 16, bounds=spec.rect, seed=spec.seed
        )
        if self.network.bounds != spec.rect:
            raise ValueError("network workspace differs from the spec bounds")

    def generate(self) -> Workload:
        """Materialize the full update stream."""
        spec = self.spec
        rng = random.Random(spec.seed)
        object_speed = speed_per_timestamp(spec.object_speed, spec.rect)
        query_speed = speed_per_timestamp(spec.query_speed, spec.rect)

        objects: dict[int, MovingAgent] = {}
        next_oid = 0
        for _ in range(spec.n_objects):
            objects[next_oid] = MovingAgent(self.network, object_speed, rng)
            next_oid += 1
        queries: dict[int, MovingAgent] = {}
        for idx in range(spec.n_queries):
            queries[QUERY_ID_BASE + idx] = MovingAgent(
                self.network, query_speed, rng, respawn=True
            )

        initial_objects = {oid: agent.position for oid, agent in objects.items()}
        initial_queries = {qid: agent.position for qid, agent in queries.items()}

        batches: list[UpdateBatch] = []
        for t in range(spec.timestamps):
            object_updates: list[ObjectUpdate] = []
            moving_oids = self._sample(rng, list(objects), spec.object_agility)
            for oid in moving_oids:
                agent = objects[oid]
                old: Point = agent.position
                new = agent.advance(rng)
                if new is None:
                    # Trip completed: disappear and spawn a replacement to
                    # keep the average population at N.
                    object_updates.append(ObjectUpdate(oid, old, None))
                    del objects[oid]
                    replacement = MovingAgent(self.network, object_speed, rng)
                    object_updates.append(
                        ObjectUpdate(next_oid, None, replacement.position)
                    )
                    objects[next_oid] = replacement
                    next_oid += 1
                elif new != old:
                    object_updates.append(ObjectUpdate(oid, old, new))

            query_updates: list[QueryUpdate] = []
            moving_qids = self._sample(rng, list(queries), spec.query_agility)
            for qid in moving_qids:
                agent = queries[qid]
                old = agent.position
                new = agent.advance(rng)
                assert new is not None  # respawning agents never disappear
                if new != old:
                    query_updates.append(
                        QueryUpdate(qid, QueryUpdateKind.MOVE, new, spec.k)
                    )
            batches.append(
                UpdateBatch(
                    timestamp=t,
                    object_updates=tuple(object_updates),
                    query_updates=tuple(query_updates),
                )
            )
        return Workload(
            spec=spec,
            initial_objects=initial_objects,
            initial_queries=initial_queries,
            batches=batches,
        )

    @staticmethod
    def _sample(rng: random.Random, ids: list[int], agility: float) -> list[int]:
        """Choose ``round(agility * len(ids))`` distinct movers."""
        if not ids or agility <= 0.0:
            return []
        count = round(agility * len(ids))
        if count >= len(ids):
            return ids
        return rng.sample(ids, count)
