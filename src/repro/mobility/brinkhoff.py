"""Brinkhoff-style workload generation (Section 6 experimental setup).

Assembles a :class:`repro.mobility.workload.Workload` from a road network:

* ``N`` objects with the Brinkhoff lifecycle (appear on a node, complete
  the shortest path to a random destination, disappear and get replaced so
  the average population stays at ``N``);
* ``n`` queries moving on the same network that "stay in the system
  throughout the simulation";
* agility sampling: each timestamp, ``f_obj * N`` objects and
  ``f_qry * n`` queries issue location updates, the rest stand still;
* the paper's speed classes for both populations.

The whole stream is deterministic in the spec's seed, so every monitoring
algorithm replays an identical input.
"""

from __future__ import annotations

import random

from repro.geometry.points import Point
from repro.mobility.network import RoadNetwork, grid_network
from repro.mobility.objects import MovingAgent, speed_per_timestamp
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind, UpdateBatch

#: query ids start here so they never collide with object ids in reports.
QUERY_ID_BASE = 1_000_000_000


def _resolve_network(
    spec: WorkloadSpec, network: RoadNetwork | None
) -> RoadNetwork:
    """The one place the default network is derived from a spec.

    Shared by the materialized generator and the live stream so their
    byte-identity can never be broken by a drifting default.
    """
    if network is None:
        network = grid_network(16, 16, bounds=spec.rect, seed=spec.seed)
    if network.bounds != spec.rect:
        raise ValueError("network workspace differs from the spec bounds")
    return network


class BrinkhoffGenerator:
    """Network-based moving object and query generator.

    Args:
        spec: workload parameters (Table 6.1 analogue).
        network: road network to move on; a default perturbed-lattice
            network is built from the spec's seed when omitted.
    """

    def __init__(self, spec: WorkloadSpec, network: RoadNetwork | None = None) -> None:
        self.spec = spec
        self.network = _resolve_network(spec, network)

    def stream(self) -> "BrinkhoffStream":
        """An incrementally stepped update source over this generator's
        populations (the live-feed counterpart of :meth:`generate`)."""
        return BrinkhoffStream(self.spec, self.network)

    def generate(self) -> Workload:
        """Materialize the full update stream.

        Thin consumer of :class:`BrinkhoffStream`: ``spec.timestamps``
        steps are drawn and packaged, so a live feed stepping the same
        stream object produces the byte-identical sequence of updates.
        """
        spec = self.spec
        stream = self.stream()
        batches: list[UpdateBatch] = []
        for t in range(spec.timestamps):
            object_updates, query_updates = stream.step()
            batches.append(
                UpdateBatch(
                    timestamp=t,
                    object_updates=tuple(object_updates),
                    query_updates=tuple(query_updates),
                )
            )
        return Workload(
            spec=spec,
            initial_objects=stream.initial_objects,
            initial_queries=stream.initial_queries,
            batches=batches,
        )


class BrinkhoffStream:
    """Live Brinkhoff-style populations, stepped one timestamp at a time.

    Unlike :meth:`BrinkhoffGenerator.generate` — which materializes
    ``spec.timestamps`` cycles up front — a stream holds the moving agents
    and produces each cycle's updates on demand, with no horizon:
    :meth:`step` can be called indefinitely, which is what a *live* update
    feed (see :mod:`repro.ingest.feeds`) needs.  The whole trajectory is
    deterministic in the spec's seed, and the materialized generator is a
    thin consumer of this class, so the first ``spec.timestamps`` steps
    are byte-identical to the materialized workload's batches.

    Attributes:
        initial_objects: object id -> starting position (timestamp 0).
        initial_queries: query id -> starting position.
        steps: number of :meth:`step` calls taken so far.
    """

    def __init__(self, spec: WorkloadSpec, network: RoadNetwork | None = None) -> None:
        self.spec = spec
        self.network = _resolve_network(spec, network)
        self._rng = random.Random(spec.seed)
        self._object_speed = speed_per_timestamp(spec.object_speed, spec.rect)
        self._query_speed = speed_per_timestamp(spec.query_speed, spec.rect)
        self._objects: dict[int, MovingAgent] = {}
        self._next_oid = 0
        for _ in range(spec.n_objects):
            self._objects[self._next_oid] = MovingAgent(
                self.network, self._object_speed, self._rng
            )
            self._next_oid += 1
        self._queries: dict[int, MovingAgent] = {}
        for idx in range(spec.n_queries):
            self._queries[QUERY_ID_BASE + idx] = MovingAgent(
                self.network, self._query_speed, self._rng, respawn=True
            )
        self.initial_objects = {
            oid: agent.position for oid, agent in self._objects.items()
        }
        self.initial_queries = {
            qid: agent.position for qid, agent in self._queries.items()
        }
        self.steps = 0

    def step(self) -> tuple[list[ObjectUpdate], list[QueryUpdate]]:
        """Advance every sampled mover by one timestamp; returns the
        cycle's updates (objects with the Brinkhoff lifecycle: completed
        trips disappear and are replaced to keep the population at N)."""
        spec = self.spec
        rng = self._rng
        objects = self._objects
        object_updates: list[ObjectUpdate] = []
        moving_oids = self._sample(rng, list(objects), spec.object_agility)
        for oid in moving_oids:
            agent = objects[oid]
            old: Point = agent.position
            new = agent.advance(rng)
            if new is None:
                # Trip completed: disappear and spawn a replacement to
                # keep the average population at N.
                object_updates.append(ObjectUpdate(oid, old, None))
                del objects[oid]
                replacement = MovingAgent(self.network, self._object_speed, rng)
                object_updates.append(
                    ObjectUpdate(self._next_oid, None, replacement.position)
                )
                objects[self._next_oid] = replacement
                self._next_oid += 1
            elif new != old:
                object_updates.append(ObjectUpdate(oid, old, new))

        queries = self._queries
        query_updates: list[QueryUpdate] = []
        moving_qids = self._sample(rng, list(queries), spec.query_agility)
        for qid in moving_qids:
            agent = queries[qid]
            old = agent.position
            new = agent.advance(rng)
            assert new is not None  # respawning agents never disappear
            if new != old:
                query_updates.append(
                    QueryUpdate(qid, QueryUpdateKind.MOVE, new, spec.k)
                )
        self.steps += 1
        return object_updates, query_updates

    @staticmethod
    def _sample(rng: random.Random, ids: list[int], agility: float) -> list[int]:
        """Choose ``round(agility * len(ids))`` distinct movers."""
        if not ids or agility <= 0.0:
            return []
        count = round(agility * len(ids))
        if count >= len(ids):
            return ids
        return rng.sample(ids, count)
