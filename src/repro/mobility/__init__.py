"""Moving-object workload substrate (systems S9/S10 of DESIGN.md).

The paper's datasets come from the Brinkhoff network-based generator fed
with the Oldenburg road map [B02]: objects appear on a network node, follow
the shortest path to a random destination and then disappear; queries move
on the same network but stay in the system.  We reproduce that stimulus
with a synthetic road network (see DESIGN.md, substitution table):

* :mod:`repro.mobility.network` — road-network construction (perturbed
  grid or random geometric graph, largest connected component, normalized
  to the unit workspace) and shortest-path routing.
* :mod:`repro.mobility.objects` — the per-object path-following motion
  model with the paper's speed classes (slow / medium / fast = 1/250,
  5/250, 25/250 of the sum of workspace extents per timestamp).
* :mod:`repro.mobility.brinkhoff` — the generator assembling object and
  query populations into per-timestamp update batches with the paper's
  agility knobs (f_obj, f_qry).
* :mod:`repro.mobility.uniform` — uniform random-displacement workload
  matching the analysis setting of Section 4.1.
* :mod:`repro.mobility.workload` — the materialized, replayable workload
  (identical streams for every algorithm under comparison).
"""

from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.network import RoadNetwork, grid_network, random_geometric_network
from repro.mobility.objects import SPEED_FACTORS, MovingAgent, speed_per_timestamp
from repro.mobility.skewed import SkewedGenerator, occupancy_skew
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import Workload, WorkloadSpec

__all__ = [
    "BrinkhoffGenerator",
    "MovingAgent",
    "RoadNetwork",
    "SPEED_FACTORS",
    "SkewedGenerator",
    "UniformGenerator",
    "Workload",
    "WorkloadSpec",
    "grid_network",
    "occupancy_skew",
    "random_geometric_network",
    "speed_per_timestamp",
]
