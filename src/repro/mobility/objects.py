"""Path-following motion model (the Brinkhoff object lifecycle).

"An object appears on a network node, completes the shortest path to a
random destination, and then disappears" (Section 6).  Speeds follow the
generator defaults the paper cites: "objects with slow speed cover a
distance that equals 1/250 of the sum of the workspace extents per
timestamp.  Medium and fast speeds correspond to distances that are 5 and
25 times larger."
"""

from __future__ import annotations

import math
import random

from repro.geometry.points import Point, dist
from repro.geometry.rects import Rect
from repro.mobility.network import RoadNetwork

#: distance per timestamp, as multiples of (width + height) / 250.
SPEED_FACTORS: dict[str, float] = {"slow": 1.0, "medium": 5.0, "fast": 25.0}


def speed_per_timestamp(speed: str, bounds: Rect) -> float:
    """Distance covered per timestamp for a named speed class."""
    try:
        factor = SPEED_FACTORS[speed]
    except KeyError:
        known = ", ".join(sorted(SPEED_FACTORS))
        raise ValueError(f"unknown speed {speed!r}; expected one of {known}") from None
    return factor * (bounds.width + bounds.height) / 250.0


class MovingAgent:
    """One agent (object or query) traversing shortest paths on a network.

    Objects disappear at their destination; queries (``respawn=True``)
    immediately start a new trip from the destination node, staying in the
    system for the whole simulation.
    """

    __slots__ = (
        "_node",
        "_offset",
        "_path",
        "_segment",
        "network",
        "position",
        "respawn",
        "speed",
    )

    def __init__(
        self,
        network: RoadNetwork,
        speed: float,
        rng: random.Random,
        *,
        respawn: bool = False,
        start_node: int | None = None,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.network = network
        self.speed = speed
        self.respawn = respawn
        self._node = start_node if start_node is not None else network.random_node(rng)
        self._begin_trip(rng)

    def _begin_trip(self, rng: random.Random) -> None:
        dst = self.network.random_node(rng)
        while dst == self._node:
            dst = self.network.random_node(rng)
        self._path = self.network.shortest_path(self._node, dst)
        self._node = dst  # destination becomes the next trip's source
        self._segment = 0
        self._offset = 0.0
        self.position: Point = self._path[0]

    @property
    def finished(self) -> bool:
        """Whether the agent stands on its destination node."""
        return self._segment >= len(self._path) - 1

    def advance(self, rng: random.Random) -> Point | None:
        """Move one timestamp's worth of distance along the path.

        Returns the new position, or ``None`` when a non-respawning agent
        completed its trip (the caller should emit a disappearance).
        Respawning agents roll over into a fresh trip and keep moving.
        """
        remaining = self.speed
        while remaining > 0.0:
            if self.finished:
                if not self.respawn:
                    return None
                self._begin_trip(rng)
            seg_start = self._path[self._segment]
            seg_end = self._path[self._segment + 1]
            seg_len = dist(seg_start, seg_end)
            if seg_len <= 0.0:
                self._segment += 1
                self._offset = 0.0
                continue
            left_on_segment = seg_len - self._offset
            if remaining < left_on_segment:
                self._offset += remaining
                remaining = 0.0
            else:
                remaining -= left_on_segment
                self._segment += 1
                self._offset = 0.0
                if self.finished and not self.respawn:
                    self.position = self._path[-1]
                    return self.position
        if self.finished:
            # Landed exactly on the destination; a respawning agent starts
            # its next trip on the following timestamp.
            self.position = self._path[-1]
            return self.position
        if self._offset == 0.0:
            self.position = self._path[self._segment]
            return self.position
        t = self._offset / dist(self._path[self._segment], self._path[self._segment + 1])
        sx, sy = self._path[self._segment]
        ex, ey = self._path[self._segment + 1]
        self.position = (sx + (ex - sx) * t, sy + (ey - sy) * t)
        return self.position

    def remaining_trip_length(self) -> float:
        """Distance left to the destination (diagnostics/tests)."""
        if self.finished:
            return 0.0
        total = -self._offset
        for idx in range(self._segment, len(self._path) - 1):
            total += dist(self._path[idx], self._path[idx + 1])
        return max(0.0, total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        x, y = self.position
        return (
            f"MovingAgent(pos=({x:.4f}, {y:.4f}), speed={self.speed:.4g}, "
            f"respawn={self.respawn}, finished={self.finished})"
        )
