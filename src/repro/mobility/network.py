"""Synthetic road networks (the Oldenburg substitute, see DESIGN.md).

The Brinkhoff generator's input is a road map; its output objects move
along network edges.  We build comparable networks synthetically:

* :func:`grid_network` — a perturbed lattice: nodes on a jittered grid,
  edges between lattice neighbors with random dropouts.  Produces the
  Manhattan-like connectivity typical of city road maps.
* :func:`random_geometric_network` — a random geometric graph (networkx),
  keeping the largest connected component.  Produces organic, unevenly
  dense road webs.

Both are normalized so that every node falls inside the requested workspace
rectangle, and both guarantee connectivity (shortest paths exist between
all node pairs).  :class:`RoadNetwork` then offers seeded random nodes and
cached shortest-path routing for the motion model.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

import networkx as nx

from repro.geometry.points import Point, dist
from repro.geometry.rects import Rect


class RoadNetwork:
    """A connected road network embedded in a workspace rectangle.

    Args:
        nodes: node positions; index in the list is the node id.
        edges: pairs of node ids; edge weight is the Euclidean length.
        bounds: workspace rectangle containing every node.
    """

    def __init__(
        self,
        nodes: Sequence[Point],
        edges: Sequence[tuple[int, int]],
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    ) -> None:
        if not isinstance(bounds, Rect):
            bounds = Rect(*bounds)
        if len(nodes) < 2:
            raise ValueError("a road network needs at least two nodes")
        self.bounds = bounds
        self.nodes: list[Point] = [(float(x), float(y)) for x, y in nodes]
        for x, y in self.nodes:
            if not bounds.contains_point(x, y):
                raise ValueError(f"node ({x}, {y}) outside workspace {bounds}")
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(len(self.nodes)))
        for u, v in edges:
            if u == v:
                continue
            self.graph.add_edge(u, v, weight=dist(self.nodes[u], self.nodes[v]))
        if self.graph.number_of_edges() == 0:
            raise ValueError("a road network needs at least one edge")
        if not nx.is_connected(self.graph):
            raise ValueError("road network must be connected")
        self._path_cache: dict[tuple[int, int], list[int]] = {}
        self._cache_cap = 50_000

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def node_position(self, node: int) -> Point:
        return self.nodes[node]

    def random_node(self, rng: random.Random) -> int:
        return rng.randrange(len(self.nodes))

    def random_trip(self, rng: random.Random) -> tuple[int, int]:
        """A random (source, destination) pair with distinct endpoints."""
        src = self.random_node(rng)
        dst = self.random_node(rng)
        while dst == src:
            dst = self.random_node(rng)
        return src, dst

    def shortest_path(self, src: int, dst: int) -> list[Point]:
        """Shortest path as a polyline of node positions (length >= 2).

        Paths are cached per (src, dst); the cache is bounded and cleared
        wholesale when it overflows (simple and allocation-friendly).
        """
        if src == dst:
            raise ValueError("trip endpoints must differ")
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = nx.shortest_path(self.graph, src, dst, weight="weight")
            if len(self._path_cache) >= self._cache_cap:
                self._path_cache.clear()
            self._path_cache[key] = cached
        return [self.nodes[n] for n in cached]

    def path_length(self, polyline: Sequence[Point]) -> float:
        """Total Euclidean length of a polyline."""
        return sum(dist(polyline[i], polyline[i + 1]) for i in range(len(polyline) - 1))


def grid_network(
    rows: int = 16,
    cols: int = 16,
    *,
    jitter: float = 0.3,
    dropout: float = 0.1,
    bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    seed: int = 0,
) -> RoadNetwork:
    """Perturbed-lattice road network (city-like connectivity).

    Args:
        rows, cols: lattice dimensions (``rows * cols`` nodes).
        jitter: node displacement as a fraction of the lattice spacing.
        dropout: probability of removing a lattice edge (removals that
            would disconnect the network are skipped).
        bounds: workspace rectangle.
        seed: RNG seed for jitter and dropouts.
    """
    if rows < 2 or cols < 2:
        raise ValueError("lattice needs at least 2x2 nodes")
    if not 0.0 <= dropout < 1.0:
        raise ValueError("dropout must be in [0, 1)")
    if not isinstance(bounds, Rect):
        bounds = Rect(*bounds)
    rng = random.Random(seed)
    dx = bounds.width / (cols + 1)
    dy = bounds.height / (rows + 1)
    nodes: list[Point] = []
    for r in range(rows):
        for c in range(cols):
            x = bounds.x0 + (c + 1) * dx + rng.uniform(-jitter, jitter) * dx
            y = bounds.y0 + (r + 1) * dy + rng.uniform(-jitter, jitter) * dy
            nodes.append(bounds.clamp(x, y))
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    graph = nx.Graph()
    graph.add_nodes_from(range(len(nodes)))
    graph.add_edges_from(edges)
    # Random dropouts, skipping bridges that would disconnect the network.
    for edge in sorted(graph.edges()):
        if rng.random() < dropout:
            graph.remove_edge(*edge)
            if not nx.is_connected(graph):
                graph.add_edge(*edge)
    return RoadNetwork(nodes, list(graph.edges()), bounds)


def random_geometric_network(
    n_nodes: int = 300,
    *,
    radius: float | None = None,
    bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
    seed: int = 0,
) -> RoadNetwork:
    """Random geometric graph network (organic road web).

    Nodes are uniform in the workspace; nodes within ``radius`` are
    connected; only the largest connected component is kept (so the
    resulting network may have fewer than ``n_nodes`` nodes).
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if not isinstance(bounds, Rect):
        bounds = Rect(*bounds)
    if radius is None:
        # Above the connectivity threshold ~ sqrt(ln n / (pi n)) with slack.
        radius = 1.8 * math.sqrt(math.log(max(n_nodes, 3)) / (math.pi * n_nodes))
    rng = random.Random(seed)
    raw = nx.random_geometric_graph(n_nodes, radius, seed=seed)
    component = max(nx.connected_components(raw), key=len)
    kept = sorted(component)
    if len(kept) < 2:
        raise ValueError("random geometric graph degenerated; increase radius")
    relabel = {old: new for new, old in enumerate(kept)}
    nodes: list[Point] = []
    for old in kept:
        px, py = raw.nodes[old]["pos"]
        nodes.append(
            bounds.clamp(
                bounds.x0 + px * bounds.width, bounds.y0 + py * bounds.height
            )
        )
    edges = [
        (relabel[u], relabel[v])
        for u, v in raw.edges()
        if u in relabel and v in relabel
    ]
    del rng  # positions/topology fully determined by networkx's seed
    return RoadNetwork(nodes, edges, bounds)
