"""Uniform random-displacement workload (the Section 4.1 analysis setting).

The performance analysis of the paper assumes objects and queries uniformly
distributed in the unit workspace, issuing updates "following random
displacement vectors".  This generator realizes exactly that stimulus; the
tests use it to validate the analytical estimates of
:mod:`repro.analysis.model` against simulation, and the property-based
tests use it as a neutral update source.
"""

from __future__ import annotations

import random

from repro.geometry.points import Point
from repro.mobility.objects import speed_per_timestamp
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind, UpdateBatch

from repro.mobility.brinkhoff import QUERY_ID_BASE


class UniformGenerator:
    """Uniformly distributed agents with bounded random displacements.

    Movers jump by a vector drawn uniformly from the square
    ``[-step, step]^2`` (clamped into the workspace), where ``step`` is the
    spec's speed class converted by
    :func:`repro.mobility.objects.speed_per_timestamp`.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    def generate(self) -> Workload:
        spec = self.spec
        rng = random.Random(spec.seed)
        bounds = spec.rect
        object_step = speed_per_timestamp(spec.object_speed, bounds)
        query_step = speed_per_timestamp(spec.query_speed, bounds)

        positions: dict[int, Point] = {
            oid: self._random_point(rng) for oid in range(spec.n_objects)
        }
        query_positions: dict[int, Point] = {
            QUERY_ID_BASE + idx: self._random_point(rng)
            for idx in range(spec.n_queries)
        }
        initial_objects = dict(positions)
        initial_queries = dict(query_positions)

        batches: list[UpdateBatch] = []
        for t in range(spec.timestamps):
            object_updates: list[ObjectUpdate] = []
            for oid in self._movers(rng, list(positions), spec.object_agility):
                old = positions[oid]
                new = self._displace(rng, old, object_step)
                if new != old:
                    positions[oid] = new
                    object_updates.append(ObjectUpdate(oid, old, new))
            query_updates: list[QueryUpdate] = []
            for qid in self._movers(rng, list(query_positions), spec.query_agility):
                old = query_positions[qid]
                new = self._displace(rng, old, query_step)
                if new != old:
                    query_positions[qid] = new
                    query_updates.append(
                        QueryUpdate(qid, QueryUpdateKind.MOVE, new, spec.k)
                    )
            batches.append(
                UpdateBatch(
                    timestamp=t,
                    object_updates=tuple(object_updates),
                    query_updates=tuple(query_updates),
                )
            )
        return Workload(
            spec=spec,
            initial_objects=initial_objects,
            initial_queries=initial_queries,
            batches=batches,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _random_point(self, rng: random.Random) -> Point:
        bounds = self.spec.rect
        return (
            rng.uniform(bounds.x0, bounds.x1),
            rng.uniform(bounds.y0, bounds.y1),
        )

    def _displace(self, rng: random.Random, p: Point, step: float) -> Point:
        bounds = self.spec.rect
        return bounds.clamp(
            p[0] + rng.uniform(-step, step),
            p[1] + rng.uniform(-step, step),
        )

    @staticmethod
    def _movers(rng: random.Random, ids: list[int], agility: float) -> list[int]:
        if not ids or agility <= 0.0:
            return []
        count = round(agility * len(ids))
        if count >= len(ids):
            return ids
        return rng.sample(ids, count)
