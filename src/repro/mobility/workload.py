"""Materialized, replayable workloads.

A :class:`Workload` bundles the initial object/query populations with the
full sequence of per-timestamp :class:`repro.updates.UpdateBatch` objects.
Materializing the stream once and replaying it into every monitor is what
makes the experimental comparison fair: CPM, YPK-CNN and SEA-CNN observe
byte-identical inputs (the paper runs all methods over the same generated
traces for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.updates import FlatUpdateBatch, UpdateBatch

SpeedClass = Literal["slow", "medium", "fast"]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Parameters of a workload, mirroring Table 6.1 of the paper.

    Attributes:
        n_objects: object population ``N`` (paper default 100K).
        n_queries: number of installed queries ``n`` (paper default 5K).
        k: neighbors monitored per query (paper default 16).
        object_speed: speed class of the objects (paper default medium).
        query_speed: speed class of the queries (paper default medium).
        object_agility: fraction ``f_obj`` of objects issuing a location
            update per timestamp (paper default 50%).
        query_agility: fraction ``f_qry`` of queries moving per timestamp
            (paper default 30%).
        timestamps: simulation length (paper default 100).
        seed: RNG seed; equal specs with equal seeds generate identical
            workloads.
        bounds: workspace rectangle (unit square).
    """

    n_objects: int = 1000
    n_queries: int = 10
    k: int = 16
    object_speed: SpeedClass = "medium"
    query_speed: SpeedClass = "medium"
    object_agility: float = 0.5
    query_agility: float = 0.3
    timestamps: int = 100
    seed: int = 7
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ValueError("n_objects must be positive")
        if self.n_queries < 0:
            raise ValueError("n_queries may not be negative")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= self.object_agility <= 1.0:
            raise ValueError("object_agility must be within [0, 1]")
        if not 0.0 <= self.query_agility <= 1.0:
            raise ValueError("query_agility must be within [0, 1]")
        if self.timestamps < 0:
            raise ValueError("timestamps may not be negative")

    @property
    def rect(self) -> Rect:
        return Rect(*self.bounds)

    def replace(self, **overrides) -> "WorkloadSpec":
        """Copy of the spec with some fields overridden (sweep helper)."""
        fields = {
            "n_objects": self.n_objects,
            "n_queries": self.n_queries,
            "k": self.k,
            "object_speed": self.object_speed,
            "query_speed": self.query_speed,
            "object_agility": self.object_agility,
            "query_agility": self.query_agility,
            "timestamps": self.timestamps,
            "seed": self.seed,
            "bounds": self.bounds,
        }
        fields.update(overrides)
        return WorkloadSpec(**fields)


@dataclass(slots=True)
class Workload:
    """A fully materialized update stream.

    Attributes:
        spec: the generating specification.
        initial_objects: object id -> starting position (timestamp 0).
        initial_queries: query id -> starting position.
        batches: one :class:`UpdateBatch` per timestamp, in order.
    """

    spec: WorkloadSpec
    initial_objects: dict[int, Point]
    initial_queries: dict[int, Point]
    batches: list[UpdateBatch] = field(default_factory=list)
    #: memoized columnar re-encoding (see :meth:`flat_batches`).
    _flat: list[FlatUpdateBatch] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def total_object_updates(self) -> int:
        return sum(len(b.object_updates) for b in self.batches)

    @property
    def total_query_updates(self) -> int:
        return sum(len(b.query_updates) for b in self.batches)

    def flat_batches(self) -> list[FlatUpdateBatch]:
        """The stream re-encoded columnar, one
        :class:`repro.updates.FlatUpdateBatch` per timestamp (lossless —
        see ``FlatUpdateBatch.from_batch``); the input of the
        ``process_flat`` fast path and the offline-replay reference the
        ingestion tests compare against.

        Memoized: the replay loop (:meth:`repro.api.session.Session.replay`)
        drives every monitor through the columnar cycle, and converting
        once keeps repeated replays of one workload — the perf suite's
        repeat-and-keep-minimum estimator, A/B backend comparisons —
        from re-paying the row-to-column transpose.  Callers must not
        mutate the returned batches.
        """
        if self._flat is None:
            self._flat = [FlatUpdateBatch.from_batch(b) for b in self.batches]
        return self._flat

    def validate(self) -> None:
        """Replay the stream against a shadow position table and verify that
        every update's ``old`` position matches reality.

        Guards the monitors' contract: ``ObjectUpdate.old`` must be the
        exact previously reported location (the grid deletes by position).
        """
        positions = dict(self.initial_objects)
        for batch in self.batches:
            seen: set[int] = set()
            for upd in batch.object_updates:
                if upd.oid in seen:
                    raise AssertionError(
                        f"object {upd.oid} updated twice at t={batch.timestamp}"
                    )
                seen.add(upd.oid)
                if upd.old is None:
                    if upd.oid in positions:
                        raise AssertionError(
                            f"object {upd.oid} appeared while on-line at "
                            f"t={batch.timestamp}"
                        )
                else:
                    actual = positions.get(upd.oid)
                    if actual != upd.old:
                        raise AssertionError(
                            f"object {upd.oid} old position mismatch at "
                            f"t={batch.timestamp}: {upd.old} != {actual}"
                        )
                if upd.new is None:
                    positions.pop(upd.oid, None)
                else:
                    positions[upd.oid] = upd.new
