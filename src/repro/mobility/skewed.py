"""Skewed (clustered) workload generator.

Section 2 notes that Yu et al. "discuss the application of YPK-CNN with a
hierarchical grid that improves performance for highly skewed data", and
CPM's Section 4.1 analysis explicitly assumes uniformity "to obtain
general observations".  This generator produces the adversarial
counterpart: objects and queries concentrated in Gaussian hotspots, so
that cell occupancy varies by orders of magnitude — the setting where a
single fixed ``δ`` cannot be simultaneously right for dense and sparse
areas.

Objects perform a mean-reverting random walk around their hotspot
(Ornstein-Uhlenbeck-like), keeping the skew stable over the simulation
instead of diffusing to uniformity.
"""

from __future__ import annotations

import random

from repro.geometry.points import Point
from repro.mobility.brinkhoff import QUERY_ID_BASE
from repro.mobility.objects import speed_per_timestamp
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind, UpdateBatch


class SkewedGenerator:
    """Gaussian-hotspot workload with mean-reverting motion.

    Args:
        spec: workload parameters (population, agilities, speeds...).
        hotspots: number of Gaussian clusters.
        spread: cluster standard deviation as a fraction of the workspace
            extent (small = heavy skew).
        reversion: pull strength toward the hotspot per timestamp in
            ``[0, 1]`` (0 = plain random walk).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        hotspots: int = 5,
        spread: float = 0.05,
        reversion: float = 0.2,
    ) -> None:
        if hotspots < 1:
            raise ValueError("at least one hotspot required")
        if spread <= 0:
            raise ValueError("spread must be positive")
        if not 0.0 <= reversion <= 1.0:
            raise ValueError("reversion must lie in [0, 1]")
        self.spec = spec
        self.hotspots = hotspots
        self.spread = spread
        self.reversion = reversion

    def generate(self) -> Workload:
        spec = self.spec
        rng = random.Random(spec.seed)
        bounds = spec.rect
        centers = [
            (
                rng.uniform(bounds.x0 + 0.1 * bounds.width, bounds.x1 - 0.1 * bounds.width),
                rng.uniform(bounds.y0 + 0.1 * bounds.height, bounds.y1 - 0.1 * bounds.height),
            )
            for _ in range(self.hotspots)
        ]
        sigma_x = self.spread * bounds.width
        sigma_y = self.spread * bounds.height
        object_step = speed_per_timestamp(spec.object_speed, bounds)
        query_step = speed_per_timestamp(spec.query_speed, bounds)

        def sample_point() -> Point:
            cx, cy = centers[rng.randrange(self.hotspots)]
            return bounds.clamp(rng.gauss(cx, sigma_x), rng.gauss(cy, sigma_y))

        positions: dict[int, Point] = {}
        homes: dict[int, Point] = {}
        for oid in range(spec.n_objects):
            home = centers[rng.randrange(self.hotspots)]
            homes[oid] = home
            positions[oid] = bounds.clamp(
                rng.gauss(home[0], sigma_x), rng.gauss(home[1], sigma_y)
            )
        query_positions: dict[int, Point] = {
            QUERY_ID_BASE + idx: sample_point() for idx in range(spec.n_queries)
        }
        initial_objects = dict(positions)
        initial_queries = dict(query_positions)

        def step(old: Point, home: Point, magnitude: float) -> Point:
            dx = rng.uniform(-magnitude, magnitude)
            dy = rng.uniform(-magnitude, magnitude)
            pull = self.reversion
            nx = old[0] + dx + pull * (home[0] - old[0])
            ny = old[1] + dy + pull * (home[1] - old[1])
            return bounds.clamp(nx, ny)

        batches: list[UpdateBatch] = []
        for t in range(spec.timestamps):
            object_updates: list[ObjectUpdate] = []
            movers = self._movers(rng, sorted(positions), spec.object_agility)
            for oid in movers:
                old = positions[oid]
                new = step(old, homes[oid], object_step)
                if new != old:
                    positions[oid] = new
                    object_updates.append(ObjectUpdate(oid, old, new))
            query_updates: list[QueryUpdate] = []
            q_movers = self._movers(rng, sorted(query_positions), spec.query_agility)
            for qid in q_movers:
                old = query_positions[qid]
                # Queries wander between hotspots occasionally.
                if rng.random() < 0.05:
                    new = sample_point()
                else:
                    home = min(
                        centers,
                        key=lambda c: (c[0] - old[0]) ** 2 + (c[1] - old[1]) ** 2,
                    )
                    new = step(old, home, query_step)
                if new != old:
                    query_positions[qid] = new
                    query_updates.append(
                        QueryUpdate(qid, QueryUpdateKind.MOVE, new, spec.k)
                    )
            batches.append(
                UpdateBatch(
                    timestamp=t,
                    object_updates=tuple(object_updates),
                    query_updates=tuple(query_updates),
                )
            )
        return Workload(
            spec=spec,
            initial_objects=initial_objects,
            initial_queries=initial_queries,
            batches=batches,
        )

    @staticmethod
    def _movers(rng: random.Random, ids: list[int], agility: float) -> list[int]:
        if not ids or agility <= 0.0:
            return []
        count = round(agility * len(ids))
        if count >= len(ids):
            return ids
        return rng.sample(ids, count)


def occupancy_skew(grid_counts: list[int]) -> float:
    """Coefficient of variation of cell occupancy (0 = perfectly uniform).

    Diagnostic used by tests to confirm the generator actually skews.
    """
    if not grid_counts:
        return 0.0
    n = len(grid_counts)
    mean = sum(grid_counts) / n
    if mean == 0:
        return 0.0
    var = sum((c - mean) ** 2 for c in grid_counts) / n
    return (var**0.5) / mean
