"""Tiered health policy: hard violations stop the driver, soft ones alert.

The ingest driver builds one :class:`HealthSample` per cycle from the
stats it already records and hands it to a :class:`HealthMonitor`.
Rules are small stateful observers (streak counters, sliding windows)
classified into two tiers:

* **hard** — the service is no longer meeting its contract (a sustained
  deadline-overrun streak means cycles are falling behind the stream; a
  dead feed means the pipeline is silently stalled).  The monitor
  raises :class:`HealthError`; the driver lets it propagate, so a
  background run surfaces it as ``IngestReport.failed`` with the typed
  error, exactly like any other pipeline failure.
* **soft** — degraded but operating (drop-rate spikes, buffer
  saturation, reconnect storms, fan-out queue growth).  The monitor
  records an :class:`AlertEvent`, bumps the alert counter in the
  registry, and invokes the ``on_alert`` callback — which the socket
  server uses to fan ``alert`` frames out to watching connections.

Beyond the wire callback, a policy can carry :class:`AlertSink` routes
(:class:`FileAlertSink` for a JSONL audit trail, :class:`CallableAlertSink`
for in-process hooks).  Every emitted alert — soft after de-bounce, hard
immediately before the raise — is delivered to each sink, so the trail
of a fatal violation survives the exception that reports it.

Rules hold mutable state (streaks, windows), so a policy instance
belongs to exactly one driver; :meth:`HealthPolicy.default` builds a
fresh instance each call.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AlertEvent",
    "AlertSink",
    "BufferOccupancy",
    "CallableAlertSink",
    "DeadFeed",
    "DropRateSpike",
    "FileAlertSink",
    "HealthError",
    "HealthMonitor",
    "HealthPolicy",
    "HealthSample",
    "OverrunStreak",
    "QueueDepthGrowth",
    "ReconnectStorm",
]

HARD = "hard"
SOFT = "soft"


@dataclass(frozen=True, slots=True)
class AlertEvent:
    """One rule firing: tier, rule name, human message, trigger value."""

    level: str
    rule: str
    message: str
    value: float
    cycle: int
    timestamp: float

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "rule": self.rule,
            "message": self.message,
            "value": self.value,
            "cycle": self.cycle,
            "timestamp": self.timestamp,
        }


class HealthError(RuntimeError):
    """A hard health violation; carries the :class:`AlertEvent`."""

    def __init__(self, event: AlertEvent):
        super().__init__(f"[{event.rule}] {event.message}")
        self.event = event


@dataclass(slots=True)
class HealthSample:
    """Per-cycle health observation assembled by the ingest driver."""

    cycle: int
    timestamp: float
    trigger: str
    offered: int = 0
    coalesced: int = 0
    dropped: int = 0
    applied: int = 0
    changed: int = 0
    deadline_overrun: bool = False
    ingest_sec: float = 0.0
    process_sec: float = 0.0
    buffer_pending: int = 0
    buffer_capacity: int = 0
    queue_depth: int = 0
    reconnects: int = 0


class OverrunStreak:
    """HARD: ``limit`` consecutive cycles overran their deadline.

    One overrun is load noise; a sustained streak means the cycle
    budget is structurally too small for the stream and results are
    falling progressively behind real time.
    """

    level = HARD

    def __init__(self, limit: int = 5):
        self.name = "overrun_streak"
        self.limit = limit
        self.streak = 0

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        if sample.deadline_overrun:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak >= self.limit:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"{self.streak} consecutive cycles overran the deadline"
                ),
                value=float(self.streak),
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class DeadFeed:
    """HARD: ``max_idle_cycles`` consecutive cycles applied nothing.

    Only deadline-triggered empty cycles count — an empty *mark* cycle
    is a legitimate quiet timestamp in the stream, but a run of empty
    deadline ticks means the feed has stopped producing entirely.
    """

    level = HARD

    def __init__(self, max_idle_cycles: int = 10):
        self.name = "dead_feed"
        self.max_idle_cycles = max_idle_cycles
        self.idle = 0

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        if sample.applied == 0 and sample.trigger == "deadline":
            self.idle += 1
        else:
            self.idle = 0
        if self.idle >= self.max_idle_cycles:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"feed produced no events for {self.idle} consecutive "
                    "deadline cycles"
                ),
                value=float(self.idle),
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class DropRateSpike:
    """SOFT: the buffer dropped more than ``max_rate`` of offered events."""

    level = SOFT

    def __init__(self, max_rate: float = 0.1, min_offered: int = 20):
        self.name = "drop_rate_spike"
        self.max_rate = max_rate
        self.min_offered = min_offered

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        if sample.offered < self.min_offered:
            return None
        rate = sample.dropped / sample.offered
        if rate > self.max_rate:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"buffer dropped {rate:.1%} of offered events "
                    f"({sample.dropped}/{sample.offered})"
                ),
                value=rate,
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class BufferOccupancy:
    """SOFT: post-drain buffer occupancy above ``max_fraction``.

    The driver samples occupancy *after* draining a batch, so a high
    reading means the feed outruns even a full drain — back-pressure
    (BLOCK) or loss (DROP_OLDEST) is imminent.
    """

    level = SOFT

    def __init__(self, max_fraction: float = 0.8):
        self.name = "buffer_occupancy"
        self.max_fraction = max_fraction

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        if sample.buffer_capacity <= 0:
            return None
        fraction = sample.buffer_pending / sample.buffer_capacity
        if fraction > self.max_fraction:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"ingest buffer {fraction:.0%} full after drain "
                    f"({sample.buffer_pending}/{sample.buffer_capacity})"
                ),
                value=fraction,
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class QueueDepthGrowth:
    """SOFT: outbound fan-out depth exceeds ``limit`` entries."""

    level = SOFT

    def __init__(self, limit: int = 256):
        self.name = "queue_depth_growth"
        self.limit = limit

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        if sample.queue_depth > self.limit:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"outbound fan-out depth {sample.queue_depth} exceeds "
                    f"{self.limit}"
                ),
                value=float(sample.queue_depth),
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class ReconnectStorm:
    """SOFT: more than ``limit`` reconnects within ``window`` cycles."""

    level = SOFT

    def __init__(self, limit: int = 3, window: int = 50):
        self.name = "reconnect_storm"
        self.limit = limit
        self.window = window
        self._events: deque[tuple[int, int]] = deque()
        self._last_total = 0

    def observe(self, sample: HealthSample) -> AlertEvent | None:
        new = sample.reconnects - self._last_total
        self._last_total = sample.reconnects
        if new > 0:
            self._events.append((sample.cycle, new))
        while self._events and self._events[0][0] <= sample.cycle - self.window:
            self._events.popleft()
        recent = sum(count for _, count in self._events)
        if recent > self.limit:
            return AlertEvent(
                level=self.level,
                rule=self.name,
                message=(
                    f"{recent} reconnects within the last "
                    f"{self.window} cycles"
                ),
                value=float(recent),
                cycle=sample.cycle,
                timestamp=sample.timestamp,
            )
        return None


class AlertSink:
    """Receives every emitted :class:`AlertEvent` (soft and hard).

    Sinks are routing, not policy: they see alerts *after* the monitor's
    de-bounce, and delivery failures are swallowed — a broken audit
    trail must never take down the pipeline it audits.
    """

    def emit(self, event: AlertEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; default is a no-op."""


class FileAlertSink(AlertSink):
    """Appends one JSON object per alert to a JSONL file.

    The file is opened lazily on the first alert (a healthy run leaves
    no empty artifact) and every line is flushed immediately, so the
    record of a hard violation is durable before :class:`HealthError`
    propagates.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None

    def emit(self, event: AlertEvent) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallableAlertSink(AlertSink):
    """Routes alerts to an in-process callable (pager shim, test probe)."""

    def __init__(self, fn: Callable[[AlertEvent], None]):
        self.fn = fn

    def emit(self, event: AlertEvent) -> None:
        self.fn(event)


@dataclass(slots=True)
class HealthPolicy:
    """An ordered set of rules; hard rules are checked first.

    ``sinks`` are :class:`AlertSink` routes that receive every emitted
    alert — they belong to the policy (not the monitor) so the component
    that decides *what* is alarming also decides *where* alarms go.
    """

    rules: Sequence = field(default_factory=tuple)
    sinks: Sequence[AlertSink] = field(default_factory=tuple)

    @classmethod
    def default(cls, sinks: Sequence[AlertSink] = ()) -> HealthPolicy:
        """Fresh instances of every rule at its default threshold."""
        return cls(
            rules=(
                OverrunStreak(),
                DeadFeed(),
                DropRateSpike(),
                BufferOccupancy(),
                QueueDepthGrowth(),
                ReconnectStorm(),
            ),
            sinks=tuple(sinks),
        )


class HealthMonitor:
    """Evaluates a policy per sample; raises on hard, records on soft.

    Soft alerts are de-bounced per rule: a rule that stays in violation
    re-fires only every ``realert_every`` cycles, so a saturated buffer
    produces a heartbeat of alerts rather than one per tick.
    """

    def __init__(
        self,
        policy: HealthPolicy,
        *,
        registry: MetricsRegistry | None = None,
        on_alert: Callable[[AlertEvent], None] | None = None,
        realert_every: int = 10,
        max_alerts: int = 1000,
    ):
        self.policy = policy
        self.on_alert = on_alert
        self.realert_every = realert_every
        self.max_alerts = max_alerts
        self.alerts: list[AlertEvent] = []
        self._last_fired: dict[str, int] = {}
        if registry is not None:
            self._soft_counter = registry.counter(
                "repro_health_alerts_total",
                "Soft health alerts emitted.",
                level=SOFT,
            )
            self._hard_counter = registry.counter(
                "repro_health_alerts_total",
                "Hard health violations raised.",
                level=HARD,
            )
        else:
            self._soft_counter = None
            self._hard_counter = None

    def observe(self, sample: HealthSample) -> list[AlertEvent]:
        """Run every rule; returns the soft alerts emitted this cycle.

        Raises :class:`HealthError` on the first hard violation (after
        bumping the hard counter, so the registry still records it).
        """
        emitted: list[AlertEvent] = []
        for rule in self.policy.rules:
            event = rule.observe(sample)
            if event is None:
                continue
            if event.level == HARD:
                if self._hard_counter is not None:
                    self._hard_counter.inc()
                # Route before raising so the audit trail records the
                # violation that kills the run.
                self._route(event)
                raise HealthError(event)
            last = self._last_fired.get(event.rule)
            if last is not None and sample.cycle - last < self.realert_every:
                continue
            self._last_fired[event.rule] = sample.cycle
            if len(self.alerts) < self.max_alerts:
                self.alerts.append(event)
            if self._soft_counter is not None:
                self._soft_counter.inc()
            if self.on_alert is not None:
                try:
                    self.on_alert(event)
                except Exception:
                    # Alert delivery must never take down the pipeline.
                    pass
            self._route(event)
            emitted.append(event)
        return emitted

    def _route(self, event: AlertEvent) -> None:
        for sink in self.policy.sinks:
            try:
                sink.emit(event)
            except Exception:
                # Sink failures must never take down the pipeline.
                pass
