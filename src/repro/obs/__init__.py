"""Production telemetry: metrics, tick tracing, health policy, scrape.

The observability tier of the monitoring service, zero-dependency by
construction (the library itself is stdlib-only):

* :mod:`repro.obs.metrics` — counter/gauge/histogram primitives behind a
  :class:`MetricsRegistry`, cheap enough for the hot path (plain
  attribute bumps; aggregation happens at snapshot time, never at
  observation time) with Prometheus text rendering for scrapes;
* :mod:`repro.obs.trace` — per-tick span timing over the pipeline
  phases (drain → assemble → process → publish);
* :mod:`repro.obs.health` — declarative tiered thresholds over per-tick
  samples: hard violations raise a typed :class:`HealthError` (the
  ingest driver stops), soft anomalies emit :class:`AlertEvent` s;
* :mod:`repro.obs.scrape` — a plain-text (Prometheus exposition
  format) scrape endpoint on its own listener thread.

Every runtime tier accepts an optional registry — the ingest driver,
:class:`repro.service.service.MonitoringService`,
:class:`repro.api.server.MonitorSocketServer`,
:class:`repro.api.client.Client` and
:class:`repro.service.supervisor.SupervisedShardExecutor` — and with no
registry attached the instrumentation code is never reached, so the
deterministic counters (and the hot-path timing) of an uninstrumented
run are untouched.
"""

from repro.obs.health import (
    AlertEvent,
    AlertSink,
    BufferOccupancy,
    CallableAlertSink,
    DeadFeed,
    DropRateSpike,
    FileAlertSink,
    HealthError,
    HealthMonitor,
    HealthPolicy,
    OverrunStreak,
    QueueDepthGrowth,
    ReconnectStorm,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.scrape import ScrapeServer, parse_prometheus, scrape_text
from repro.obs.trace import TICK_PHASES, SpanRecorder

__all__ = [
    "AlertEvent",
    "AlertSink",
    "BufferOccupancy",
    "CallableAlertSink",
    "Counter",
    "DeadFeed",
    "DropRateSpike",
    "FileAlertSink",
    "Gauge",
    "HealthError",
    "HealthMonitor",
    "HealthPolicy",
    "Histogram",
    "MetricsRegistry",
    "OverrunStreak",
    "QueueDepthGrowth",
    "ReconnectStorm",
    "ScrapeServer",
    "SpanRecorder",
    "TICK_PHASES",
    "default_registry",
    "parse_prometheus",
    "scrape_text",
]
