"""Counter/gauge/histogram primitives behind a process-wide registry.

Design constraints, in order:

1. **Hot-path cheapness.**  A bump is one attribute add on a plain
   object — no locks, no dict lookups, no allocation.  Instruments are
   created once (under the registry lock) and held by the instrumented
   component; CPython's GIL makes ``self.value += x`` safe enough for
   monitoring counters (a lost increment under free-threading would
   skew a rate by one sample, never corrupt state).
2. **Snapshot-on-read.**  All aggregation cost lives in
   :meth:`MetricsRegistry.snapshot` / :meth:`render_prometheus`, which
   only scrapes and the wire metrics pump pay.
3. **Zero dependencies.**  Prometheus text exposition format is
   produced by hand — it is line-oriented and trivial.

Series names follow Prometheus conventions: ``repro_`` prefix, base
units (seconds), ``_total`` suffix on counters, labels rendered as
``name{key="value"}``.  :meth:`MetricsRegistry.snapshot` returns a flat
``{series: value}`` dict using exactly those rendered names so wire
``metrics`` frames, scrape output and in-process reads all agree on the
key space (that equality is what the e2e test asserts).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from collections.abc import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "render_labels",
]

#: histogram bucket upper bounds for per-tick phase timings (seconds).
#: Spans the observed range from sub-millisecond smoke ticks to
#: multi-second full-scale cycles.
DEFAULT_TIME_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


def render_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` in sorted key order; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonically increasing count.  Bump with :meth:`inc`."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help_text: str, labels: dict[str, str]):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value.  :meth:`set` / :meth:`inc` / :meth:`dec`."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help_text: str, labels: dict[str, str]):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts + sum + count).

    ``observe`` costs one bisect over a short tuple plus three adds —
    cheap enough to wrap every tick phase.
    """

    __slots__ = ("name", "help", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: dict[str, str],
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.bounds)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1


class _CallableGauge:
    """A gauge whose value is computed at snapshot time.

    Used where the source of truth already exists as live state (queue
    depths, connection counts) — evaluating lazily avoids a write on
    every mutation of that state.
    """

    __slots__ = ("name", "help", "labels", "fn")

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: dict[str, str],
        fn: Callable[[], int | float],
    ):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.fn = fn

    @property
    def value(self) -> int | float:
        try:
            return self.fn()
        except Exception:
            # A dying component (closed server, reaped worker) must not
            # poison an unrelated scrape.
            return 0


class _WindowRing:
    """Ring buffer of ``(timestamp, counter-snapshot)`` samples.

    Backs :meth:`MetricsRegistry.windowed`.  Each sample is a flat dict
    of *counter* series only — windowed views are rate views, and rates
    over gauges or histogram internals are not meaningful here.  The
    ring is bounded both by sample count and by the configured horizon,
    so an over-eager sampler cannot grow it without bound.
    """

    __slots__ = ("horizons", "clock", "max_samples", "samples")

    def __init__(
        self,
        horizons: tuple[float, ...],
        clock: Callable[[], float],
        max_samples: int,
    ):
        self.horizons = tuple(sorted(set(float(h) for h in horizons)))
        if not self.horizons or min(self.horizons) <= 0:
            raise ValueError("window horizons must be positive seconds")
        self.clock = clock
        self.max_samples = max_samples
        self.samples: deque[tuple[float, dict[str, int | float]]] = deque(
            maxlen=max_samples
        )

    def append(self, now: float, values: dict[str, int | float]) -> None:
        self.samples.append((now, values))
        horizon = max(self.horizons)
        while len(self.samples) > 1 and self.samples[1][0] <= now - horizon:
            # Keep one sample at-or-before the horizon edge so a full
            # window always has a baseline to diff against.
            self.samples.popleft()

    def baseline(self, cutoff: float) -> dict[str, int | float] | None:
        """Newest sample taken at or before ``cutoff``; oldest if none."""
        chosen = None
        for stamp, values in self.samples:
            if stamp <= cutoff:
                chosen = values
            else:
                break
        if chosen is None and self.samples:
            chosen = self.samples[0][1]
        return chosen


class MetricsRegistry:
    """Process-wide get-or-create registry of instruments.

    Creation is serialized under a lock and idempotent — asking for the
    same ``(name, labels)`` pair returns the existing instrument, so
    components can declare their instruments without coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> instrument, insertion-ordered (dict semantics); the
        # snapshot sorts anyway, so order only affects HELP grouping.
        self._instruments: dict[str, Counter | Gauge | Histogram | _CallableGauge] = {}
        self._windows: _WindowRing | None = None

    def _get_or_create(self, cls, name, help_text, labels, **kwargs):
        key = name + render_labels(labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {key!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help_text, labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], int | float],
        help_text: str = "",
        **labels: str,
    ) -> None:
        """Register (or replace) a lazily-evaluated gauge.

        Unlike the stateful instruments this *replaces* an existing
        callable under the same key: a restarted server re-registers its
        depth probes and the stale closure over the dead server must not
        win.
        """
        key = name + render_labels(labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None and not isinstance(existing, _CallableGauge):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, not a callable gauge"
                )
            self._instruments[key] = _CallableGauge(name, help_text, labels, fn)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def unregister(self, name: str, **labels: str) -> None:
        """Drop one series (used by stopping servers for their probes)."""
        key = name + render_labels(labels)
        with self._lock:
            self._instruments.pop(key, None)

    # ------------------------------------------------------------------
    # Windowed rates
    # ------------------------------------------------------------------

    def enable_windows(
        self,
        horizons: Iterable[float] = (60.0,),
        *,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 512,
    ) -> None:
        """Turn on ring-buffered windowed views over counter series.

        ``horizons`` are trailing-window lengths in seconds; each one
        becomes a ``<counter>_rate<NN>s`` gauge series in the Prometheus
        render.  Samples are taken explicitly via
        :meth:`record_window_sample` — the scrape path does this on
        every render, so under a scraper the ring fills itself — and
        the injectable ``clock`` keeps tests deterministic.
        """
        self._windows = _WindowRing(tuple(horizons), clock, max_samples)

    def record_window_sample(self, now: float | None = None) -> None:
        """Append one ``(now, counter-values)`` sample to the ring.

        No-op until :meth:`enable_windows` is called, so instrumented
        components may call this unconditionally.
        """
        windows = self._windows
        if windows is None:
            return
        if now is None:
            now = windows.clock()
        with self._lock:
            values = {
                key: instrument.value
                for key, instrument in self._instruments.items()
                if isinstance(instrument, Counter)
            }
        windows.append(now, values)

    def windowed(
        self, series: str, seconds: float, now: float | None = None
    ) -> int | float:
        """Increase of a counter ``series`` over the trailing window.

        ``series`` uses the same rendered key space as :meth:`snapshot`
        (``name{label="value"}``).  Returns the live value minus the
        newest ring sample at or before ``now - seconds`` (best-effort:
        the oldest sample when the ring is younger than the window, and
        the full live value when the ring is empty or the series was
        born mid-window), so dashboards read per-window drop/alert
        counts without client-side diffing.
        """
        windows = self._windows
        if windows is None:
            raise RuntimeError(
                "windowed() requires enable_windows() on this registry"
            )
        if now is None:
            now = windows.clock()
        with self._lock:
            instrument = self._instruments.get(series)
            if instrument is None or not isinstance(instrument, Counter):
                raise KeyError(f"no counter series {series!r}")
            live = instrument.value
        baseline = windows.baseline(now - seconds)
        if baseline is None:
            return live
        return live - baseline.get(series, 0)

    def snapshot(self) -> dict[str, int | float]:
        """Flat ``{rendered-series-name: value}``, sorted by name.

        Histograms expand to ``<name>_bucket{le=...}`` (cumulative),
        ``<name>_sum`` and ``<name>_count`` series.  Values keep their
        python type (int stays int) so a wire round-trip re-encodes
        byte-identically.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        flat: dict[str, int | float] = {}
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                label_items = dict(instrument.labels)
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument.bucket_counts
                ):
                    cumulative += count
                    bucket_labels = dict(label_items, le=_format_bound(bound))
                    flat[
                        instrument.name + "_bucket" + render_labels(bucket_labels)
                    ] = cumulative
                inf_labels = dict(label_items, le="+Inf")
                flat[
                    instrument.name + "_bucket" + render_labels(inf_labels)
                ] = instrument.count
                suffix = render_labels(label_items)
                flat[instrument.name + "_sum" + suffix] = instrument.sum
                flat[instrument.name + "_count" + suffix] = instrument.count
            else:
                flat[
                    instrument.name + render_labels(instrument.labels)
                ] = instrument.value
        return dict(sorted(flat.items()))

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            instruments = list(self._instruments.values())
        # Group series by metric name so HELP/TYPE headers appear once.
        by_name: dict[str, list] = {}
        for instrument in instruments:
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            first = group[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            lines.append(f"# TYPE {name} {_prom_type(first)}")
            series: dict[str, int | float] = {}
            for instrument in group:
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        instrument.bounds, instrument.bucket_counts
                    ):
                        cumulative += count
                        labels = dict(instrument.labels, le=_format_bound(bound))
                        series[name + "_bucket" + render_labels(labels)] = cumulative
                    labels = dict(instrument.labels, le="+Inf")
                    series[name + "_bucket" + render_labels(labels)] = (
                        instrument.count
                    )
                    suffix = render_labels(dict(instrument.labels))
                    series[name + "_sum" + suffix] = instrument.sum
                    series[name + "_count" + suffix] = instrument.count
                else:
                    series[name + render_labels(instrument.labels)] = (
                        instrument.value
                    )
            for key in sorted(series):
                lines.append(f"{key} {_format_value(series[key])}")
        lines.extend(self._render_windows())
        return "\n".join(lines) + "\n"

    def _render_windows(self) -> list[str]:
        """Windowed-rate lines for the Prometheus render.

        Each enabled horizon ``NN`` adds a ``<counter>_rate<NN>s`` gauge
        per counter series whose value is the counter's increase over
        the trailing ``NN`` seconds.  Rendering also records a sample,
        so a scraper's own cadence keeps the ring fresh.
        """
        windows = self._windows
        if windows is None:
            return []
        now = windows.clock()
        self.record_window_sample(now)
        with self._lock:
            counters = [
                instrument
                for instrument in self._instruments.values()
                if isinstance(instrument, Counter)
            ]
        lines: list[str] = []
        for horizon in windows.horizons:
            suffix = f"_rate{_format_bound(horizon)}s"
            baseline = windows.baseline(now - horizon) or {}
            by_name: dict[str, list[Counter]] = {}
            for counter in counters:
                by_name.setdefault(counter.name, []).append(counter)
            for name in sorted(by_name):
                rate_name = name + suffix
                lines.append(
                    f"# HELP {rate_name} Increase of {name} over the "
                    f"trailing {_format_bound(horizon)}s window."
                )
                lines.append(f"# TYPE {rate_name} gauge")
                series: dict[str, int | float] = {}
                for counter in by_name[name]:
                    key = name + render_labels(counter.labels)
                    series[rate_name + render_labels(counter.labels)] = (
                        counter.value - baseline.get(key, 0)
                    )
                for key in sorted(series):
                    lines.append(f"{key} {_format_value(series[key])}")
        return lines


def _prom_type(instrument) -> str:
    if isinstance(instrument, Counter):
        return "counter"
    if isinstance(instrument, Histogram):
        return "histogram"
    return "gauge"


def _format_bound(bound: float) -> str:
    """Bucket bound label: drop a trailing ``.0`` (``1.0`` → ``1``)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(value)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry (one per interpreter)."""
    return _DEFAULT
