"""Counter/gauge/histogram primitives behind a process-wide registry.

Design constraints, in order:

1. **Hot-path cheapness.**  A bump is one attribute add on a plain
   object — no locks, no dict lookups, no allocation.  Instruments are
   created once (under the registry lock) and held by the instrumented
   component; CPython's GIL makes ``self.value += x`` safe enough for
   monitoring counters (a lost increment under free-threading would
   skew a rate by one sample, never corrupt state).
2. **Snapshot-on-read.**  All aggregation cost lives in
   :meth:`MetricsRegistry.snapshot` / :meth:`render_prometheus`, which
   only scrapes and the wire metrics pump pay.
3. **Zero dependencies.**  Prometheus text exposition format is
   produced by hand — it is line-oriented and trivial.

Series names follow Prometheus conventions: ``repro_`` prefix, base
units (seconds), ``_total`` suffix on counters, labels rendered as
``name{key="value"}``.  :meth:`MetricsRegistry.snapshot` returns a flat
``{series: value}`` dict using exactly those rendered names so wire
``metrics`` frames, scrape output and in-process reads all agree on the
key space (that equality is what the e2e test asserts).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "render_labels",
]

#: histogram bucket upper bounds for per-tick phase timings (seconds).
#: Spans the observed range from sub-millisecond smoke ticks to
#: multi-second full-scale cycles.
DEFAULT_TIME_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


def render_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` in sorted key order; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonically increasing count.  Bump with :meth:`inc`."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help_text: str, labels: dict[str, str]):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value.  :meth:`set` / :meth:`inc` / :meth:`dec`."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help_text: str, labels: dict[str, str]):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts + sum + count).

    ``observe`` costs one bisect over a short tuple plus three adds —
    cheap enough to wrap every tick phase.
    """

    __slots__ = ("name", "help", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: dict[str, str],
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.bounds)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1


class _CallableGauge:
    """A gauge whose value is computed at snapshot time.

    Used where the source of truth already exists as live state (queue
    depths, connection counts) — evaluating lazily avoids a write on
    every mutation of that state.
    """

    __slots__ = ("name", "help", "labels", "fn")

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: dict[str, str],
        fn: Callable[[], int | float],
    ):
        self.name = name
        self.help = help_text
        self.labels = labels
        self.fn = fn

    @property
    def value(self) -> int | float:
        try:
            return self.fn()
        except Exception:
            # A dying component (closed server, reaped worker) must not
            # poison an unrelated scrape.
            return 0


class MetricsRegistry:
    """Process-wide get-or-create registry of instruments.

    Creation is serialized under a lock and idempotent — asking for the
    same ``(name, labels)`` pair returns the existing instrument, so
    components can declare their instruments without coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> instrument, insertion-ordered (dict semantics); the
        # snapshot sorts anyway, so order only affects HELP grouping.
        self._instruments: dict[str, Counter | Gauge | Histogram | _CallableGauge] = {}

    def _get_or_create(self, cls, name, help_text, labels, **kwargs):
        key = name + render_labels(labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {key!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = cls(name, help_text, labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], int | float],
        help_text: str = "",
        **labels: str,
    ) -> None:
        """Register (or replace) a lazily-evaluated gauge.

        Unlike the stateful instruments this *replaces* an existing
        callable under the same key: a restarted server re-registers its
        depth probes and the stale closure over the dead server must not
        win.
        """
        key = name + render_labels(labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None and not isinstance(existing, _CallableGauge):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, not a callable gauge"
                )
            self._instruments[key] = _CallableGauge(name, help_text, labels, fn)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def unregister(self, name: str, **labels: str) -> None:
        """Drop one series (used by stopping servers for their probes)."""
        key = name + render_labels(labels)
        with self._lock:
            self._instruments.pop(key, None)

    def snapshot(self) -> dict[str, int | float]:
        """Flat ``{rendered-series-name: value}``, sorted by name.

        Histograms expand to ``<name>_bucket{le=...}`` (cumulative),
        ``<name>_sum`` and ``<name>_count`` series.  Values keep their
        python type (int stays int) so a wire round-trip re-encodes
        byte-identically.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        flat: dict[str, int | float] = {}
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                label_items = dict(instrument.labels)
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument.bucket_counts
                ):
                    cumulative += count
                    bucket_labels = dict(label_items, le=_format_bound(bound))
                    flat[
                        instrument.name + "_bucket" + render_labels(bucket_labels)
                    ] = cumulative
                inf_labels = dict(label_items, le="+Inf")
                flat[
                    instrument.name + "_bucket" + render_labels(inf_labels)
                ] = instrument.count
                suffix = render_labels(label_items)
                flat[instrument.name + "_sum" + suffix] = instrument.sum
                flat[instrument.name + "_count" + suffix] = instrument.count
            else:
                flat[
                    instrument.name + render_labels(instrument.labels)
                ] = instrument.value
        return dict(sorted(flat.items()))

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            instruments = list(self._instruments.values())
        # Group series by metric name so HELP/TYPE headers appear once.
        by_name: dict[str, list] = {}
        for instrument in instruments:
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            first = group[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            lines.append(f"# TYPE {name} {_prom_type(first)}")
            series: dict[str, int | float] = {}
            for instrument in group:
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        instrument.bounds, instrument.bucket_counts
                    ):
                        cumulative += count
                        labels = dict(instrument.labels, le=_format_bound(bound))
                        series[name + "_bucket" + render_labels(labels)] = cumulative
                    labels = dict(instrument.labels, le="+Inf")
                    series[name + "_bucket" + render_labels(labels)] = (
                        instrument.count
                    )
                    suffix = render_labels(dict(instrument.labels))
                    series[name + "_sum" + suffix] = instrument.sum
                    series[name + "_count" + suffix] = instrument.count
                else:
                    series[name + render_labels(instrument.labels)] = (
                        instrument.value
                    )
            for key in sorted(series):
                lines.append(f"{key} {_format_value(series[key])}")
        return "\n".join(lines) + "\n"


def _prom_type(instrument) -> str:
    if isinstance(instrument, Counter):
        return "counter"
    if isinstance(instrument, Histogram):
        return "histogram"
    return "gauge"


def _format_bound(bound: float) -> str:
    """Bucket bound label: drop a trailing ``.0`` (``1.0`` → ``1``)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(value)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry (one per interpreter)."""
    return _DEFAULT
