"""Per-tick span timing over the ingest/tick pipeline phases.

The driver's cycle decomposes into ``drain`` (buffer → raw events),
``assemble`` (batcher → FlatUpdateBatch), ``process`` (engine tick —
the result diff rides inside this phase: ``tick_report`` times the
diff/capture as part of ``process_sec``) and ``publish`` (hub fan-out).
:class:`SpanRecorder` feeds each phase duration into a labelled
histogram and keeps the latest value per phase for dashboards.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

__all__ = ["SpanRecorder", "TICK_PHASES"]

#: canonical pipeline phase names, in execution order.
TICK_PHASES = ("drain", "assemble", "process", "publish")


class SpanRecorder:
    """Records phase durations into ``<prefix>{phase=...}`` histograms."""

    __slots__ = ("_histograms", "last")

    def __init__(
        self,
        registry: MetricsRegistry,
        prefix: str = "repro_tick_phase_seconds",
    ):
        self._histograms = {
            phase: registry.histogram(
                prefix,
                "Per-tick pipeline phase duration.",
                phase=phase,
            )
            for phase in TICK_PHASES
        }
        #: latest duration per phase — a dashboard-friendly point read.
        self.last: dict[str, float] = {}

    def record(self, phase: str, seconds: float) -> None:
        histogram = self._histograms.get(phase)
        if histogram is not None:
            histogram.observe(seconds)
        self.last[phase] = seconds

    @contextmanager
    def span(self, phase: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(phase, time.perf_counter() - t0)
