"""Plain-text scrape endpoint serving Prometheus exposition format.

A minimal HTTP/1.0 responder on its own listener thread: every
connection gets one ``200 OK`` with the registry's current rendering
and is closed.  That is the entire contract a Prometheus scraper (or
``curl``) needs; there is no routing, no keep-alive, no TLS.

:func:`scrape_text` is the matching client and
:func:`parse_prometheus` turns an exposition body back into the flat
``{series: value}`` dict of :meth:`MetricsRegistry.snapshot` — the e2e
test and the dashboard example use the pair to assert a remote scrape
matches the in-process registry.
"""

from __future__ import annotations

import socket
import threading

from repro.obs.metrics import MetricsRegistry

__all__ = ["ScrapeServer", "parse_prometheus", "scrape_text"]


class ScrapeServer:
    """Serves ``registry.render_prometheus()`` to every connection."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self._requested = (host, port)
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._stopping = False
        self.host: str | None = None
        self.port: int | None = None
        self.scrapes = 0

    def start(self) -> tuple[str, int]:
        if self._sock is not None:
            raise RuntimeError("scrape server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(self._requested)
        sock.listen(8)
        self._sock = sock
        self.host, self.port = sock.getsockname()
        self._stopping = False
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-scrape", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping = True
        sock = self._sock
        self._sock = None
        if sock is not None:
            # shutdown() before close(): close() alone does not wake a
            # thread blocked in accept() on Linux — it would sit on the
            # dead fd and hijack whichever listener reuses the number.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform specific
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> ScrapeServer:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        sock = self._sock
        assert sock is not None
        while not self._stopping:
            try:
                conn, _ = sock.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                self._serve(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    def _serve(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        # Read until the blank line ending the request head (or EOF);
        # the request itself is ignored — every path scrapes.
        data = b""
        while b"\r\n\r\n" not in data and b"\n\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                break
            data = data + chunk
            if len(data) > 65536:
                break
        body = self.registry.render_prometheus().encode("utf-8")
        head = (
            b"HTTP/1.0 200 OK\r\n"
            b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        conn.sendall(head + body)
        self.scrapes += 1


def scrape_text(host: str, port: int, timeout: float = 5.0) -> str:
    """Fetch one scrape; returns the exposition body as text."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("utf-8")
    head, _, body = response.partition("\r\n\r\n")
    if not head.startswith("HTTP/1.0 200"):
        raise RuntimeError(f"scrape failed: {head.splitlines()[0] if head else ''}")
    return body


def parse_prometheus(body: str) -> dict[str, int | float]:
    """Exposition text → flat ``{series: value}`` (comments skipped).

    Values parse as int when the text has no decimal point, matching
    the type-preserving convention of ``MetricsRegistry.snapshot``.
    """
    flat: dict[str, int | float] = {}
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        if not series:
            continue
        value: int | float
        try:
            value = int(raw)
        except ValueError:
            value = float(raw)
        flat[series] = value
    return flat
