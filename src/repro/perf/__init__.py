"""``repro.perf`` — the reproducible performance-measurement subsystem.

The paper's headline claim (Section 6) is a *CPU-time* claim: CPM beats
YPK-CNN and SEA-CNN by constant factors in the grid hot path.  Such claims
are only credible — and only *stay* true — with a machine-checked
measurement pipeline.  This package provides it:

* :mod:`repro.perf.suite` — the canonical suite of scaled workloads
  (network-based scalability sweeps, k and granularity sweeps, uniform and
  skewed stress cases) replayed across CPM / YPK-CNN / SEA-CNN;
* :mod:`repro.perf.runner` — replays the suite and collects wall-clock,
  cell accesses per query per timestamp and peak RSS per case;
* :mod:`repro.perf.schema` — the schema-versioned ``BENCH_*.json`` format;
* :mod:`repro.perf.compare` — diffs two BENCH files against configurable
  regression thresholds (non-zero exit on regression), the perf gate CI
  runs on every PR;
* ``python -m repro.perf`` — the command-line entry point.

Every PR in the ROADMAP trajectory records its bench as ``BENCH_PR<N>.json``
so the performance history of the repository is itself reproducible.
"""

from repro.perf.schema import SCHEMA_VERSION, BenchCase, BenchReport, SchemaError

__all__ = ["SCHEMA_VERSION", "BenchCase", "BenchReport", "SchemaError"]
