"""The schema-versioned ``BENCH_*.json`` interchange format.

A bench file is a flat, diff-friendly JSON document::

    {
      "schema_version": 1,
      "scale": 0.02,
      "suite": "full",
      "repeats": 3,
      "environment": {"python": "3.11.7", "platform": "Linux-..."},
      "annotations": {"pr": "1", "note": "seed baseline"},
      "cases": [
        {
          "case_id": "scalability_n/N=2000/CPM",
          "workload": "network",
          "algorithm": "CPM",
          "params": {"n_objects": 2000, "n_queries": 100, "k": 16,
                     "grid": 16, "timestamps": 14, "seed": 2005},
          "metrics": {"wall_sec": 0.151, "process_sec": 0.143,
                      "install_sec": 0.008, "cell_scans": 4985,
                      "cell_accesses_per_query_per_ts": 3.56,
                      "objects_scanned": 81230, "results_changed": 1393,
                      "peak_rss_kb": 38912}
        },
        ...
      ]
    }

``schema_version`` gates evolution: readers refuse files written by an
incompatible writer instead of silently misinterpreting them.  All loading
errors raise :class:`SchemaError` so the CLI can map them to a distinct
exit code (2, versus 1 for a genuine perf regression).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path

#: current writer version; bump on any incompatible layout change.
SCHEMA_VERSION = 1

#: metric keys every case must carry (extra keys are allowed and preserved).
REQUIRED_METRICS = (
    "wall_sec",
    "process_sec",
    "cell_scans",
    "cell_accesses_per_query_per_ts",
)

#: the reduced requirement for wall-clock-only cases (process-backed shard
#: executors record no deterministic counters; see repro.perf.runner).
WALLCLOCK_REQUIRED_METRICS = ("wall_sec", "process_sec")


class SchemaError(ValueError):
    """A bench document violates the BENCH_*.json schema."""


@dataclass(slots=True)
class BenchCase:
    """One (workload case, algorithm) measurement."""

    case_id: str
    workload: str
    algorithm: str
    params: dict
    metrics: dict

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "params": dict(self.params),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "BenchCase":
        if not isinstance(raw, dict):
            raise SchemaError(f"case must be an object, got {type(raw).__name__}")
        for key in ("case_id", "workload", "algorithm", "params", "metrics"):
            if key not in raw:
                raise SchemaError(f"case is missing required key {key!r}: {raw!r}")
        metrics = raw["metrics"]
        if not isinstance(metrics, dict):
            raise SchemaError(f"case {raw['case_id']!r}: metrics must be an object")
        params = raw["params"]
        if isinstance(params, dict) and params.get("executor") in (
            "process",
            "supervised",
        ):
            required = WALLCLOCK_REQUIRED_METRICS
        else:
            required = REQUIRED_METRICS
        for key in required:
            if key not in metrics:
                raise SchemaError(
                    f"case {raw['case_id']!r} is missing required metric {key!r}"
                )
            if not isinstance(metrics[key], (int, float)) or isinstance(
                metrics[key], bool
            ):
                raise SchemaError(
                    f"case {raw['case_id']!r}: metric {key!r} must be a number"
                )
        return cls(
            case_id=str(raw["case_id"]),
            workload=str(raw["workload"]),
            algorithm=str(raw["algorithm"]),
            params=dict(raw["params"]),
            metrics=dict(metrics),
        )


@dataclass(slots=True)
class BenchReport:
    """A full bench document (one run of the suite)."""

    scale: float
    suite: str = "full"
    repeats: int = 1
    schema_version: int = SCHEMA_VERSION
    environment: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    cases: list[BenchCase] = field(default_factory=list)

    def case(self, case_id: str) -> BenchCase:
        for case in self.cases:
            if case.case_id == case_id:
                return case
        raise KeyError(f"no case {case_id!r} in this report")

    def case_ids(self) -> list[str]:
        return [case.case_id for case in self.cases]

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "scale": self.scale,
            "suite": self.suite,
            "repeats": self.repeats,
            "environment": dict(self.environment),
            "annotations": dict(self.annotations),
            "cases": [case.to_dict() for case in self.cases],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "BenchReport":
        if not isinstance(raw, dict):
            raise SchemaError("bench document must be a JSON object")
        version = raw.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema_version {version!r} "
                f"(this reader supports {SCHEMA_VERSION})"
            )
        for key in ("scale", "cases"):
            if key not in raw:
                raise SchemaError(f"bench document is missing required key {key!r}")
        cases_raw = raw["cases"]
        if not isinstance(cases_raw, list):
            raise SchemaError("'cases' must be an array")
        cases = [BenchCase.from_dict(c) for c in cases_raw]
        seen: set[str] = set()
        for case in cases:
            if case.case_id in seen:
                raise SchemaError(f"duplicate case_id {case.case_id!r}")
            seen.add(case.case_id)
        return cls(
            scale=float(raw["scale"]),
            suite=str(raw.get("suite", "full")),
            repeats=int(raw.get("repeats", 1)),
            schema_version=int(version),
            environment=dict(raw.get("environment", {})),
            annotations=dict(raw.get("annotations", {})),
            cases=cases,
        )


def environment_info() -> dict:
    """Host facts recorded alongside every run (provenance, not matching)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def dump_report(report: BenchReport, path: str | Path) -> None:
    """Write a report as stable, diff-friendly JSON."""
    text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    Path(path).write_text(text + "\n", encoding="utf-8")


def load_report(path: str | Path) -> BenchReport:
    """Read and validate a bench file (:class:`SchemaError` on any problem)."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SchemaError(f"bench file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise SchemaError(f"bench file {path} is not valid JSON: {exc}") from None
    return BenchReport.from_dict(raw)
