"""The canonical perf workload suite.

One suite run replays a fixed set of workload cases into every monitoring
algorithm.  The cases mirror the paper's evaluation axes at a configurable
``scale`` (1.0 = the paper's Table 6.1 sizes):

* ``scalability_n`` — the Figure 6.2a object-population sweep over the
  network-based (Brinkhoff-style) generator;
* ``scalability_q`` — the Figure 6.2b query-count sweep;
* ``granularity``   — the Figure 6.1 grid-granularity sensitivity (half /
  default / double cells per axis);
* ``k_sweep``       — the Figure 6.3 result-cardinality sweep;
* ``uniform``       — the Section 4.1 analysis setting (uniform random
  displacement);
* ``skewed``        — the adversarial Gaussian-hotspot workload;
* ``shard_scaling`` — the service-layer sharding sweep: the Figure 6.2
  defaults workload replayed into a ``repro.service`` sharded CPM monitor
  at S ∈ {1, 2, 4, 8} shards (serial executor, so the metric isolates
  partitioning/service overhead; S=1 measures the pure adapter cost);
* ``shard_scaling_wallclock`` — the same sweep on the
  ``ProcessShardExecutor`` (one worker process per shard): records
  *wall-clock-only* metrics — real multi-core speedup — and omits the
  deterministic counters (they would duplicate the serial scenario's)
  and peak RSS (unmeasurable across workers from the parent).  Full
  suite only (worker startup is too heavy for the CI smoke subset);
* ``partition_scaling`` — the shard sweep on the *partitioned* service
  tier (``repro.service.partition``): each shard owns a column block
  plus a halo instead of replicating the object table.  Serial
  executor, so every deterministic counter is recorded — and because
  the partitioned tier is counter-exact against the single engine, the
  gate pins them to the engine's own values, not S-fold copies.  The
  partition traffic counters (fan-out rows, halo sync rows, pulls,
  migrations) are deterministic for a fixed workload and gate exactly
  like cell scans;
* ``partition_scaling_wallclock`` — the partitioned sweep on the
  ``ProcessShardExecutor``: real multi-core speedup *with* per-shard
  object ownership, the configuration where partitioning is supposed to
  beat replicated sharding.  Wall-clock metrics plus the deterministic
  partition traffic counters.  Full suite only;
* ``high_density`` — a coarse-grid/high-occupancy stress shape: the
  uniform workload over a grid sized so mean cell occupancy sits well
  above ``VEC_MIN_OCCUPANCY`` (64), the regime where the numpy kernel
  backend's vectorized cell scans engage.  The case runs once per
  *available* kernel backend (``high_density/list`` is the scalar
  reference, ``high_density/numpy`` the vector A/B arm when numpy is
  importable) — counters are byte-identical across backends by the
  backend-equivalence contract, so only the wall-clock ratio carries
  information;
* ``fault_recovery`` — the same wall-clock sweep on the
  ``SupervisedShardExecutor`` with **no faults injected**: prices the
  supervision layer itself (command logging + recv deadlines) against
  ``shard_scaling_wallclock``, whose raw executor it wraps.  The fault
  paths themselves are correctness-tested by the chaos suite
  (``tests/test_fault_tolerance.py``), not timed here;
* ``streaming_ingest`` — the defaults workload pushed through the full
  ``repro.ingest`` pipeline (feed → buffer → batcher →
  ``MonitoringService.tick_flat``) instead of the direct replay loop.
  The driver honors the feed's cycle marks, so the cycle structure — and
  therefore every deterministic counter — is byte-comparable with the
  plain replay; the extra ``ingest_sec`` metric (advisory, not gated)
  prices the ingestion tier itself;
* ``subscription_routing`` — the defaults workload replayed through a
  ``MonitoringService`` with per-query subscriptions on a quarter of the
  queries plus one firehose: the delta-streaming path of the client API
  (``repro.api``).  The grid counters stay byte-comparable with the
  plain replay (delta capture never touches the grid) and the extra
  ``deltas_delivered`` metric is itself deterministic, so the gate pins
  the routing exactly;
* ``subscription_scale`` — the pub/sub stress shape: **every** query
  carries multiple per-query subscriptions (``SuiteCase.subscribers``
  per query — tens of thousands of live subscriptions at full scale),
  pricing the hub's topic routing under subscriber fan-out.  The
  ``deltas_delivered`` counter stays deterministic (fixed workload ×
  fixed subscription multiplicity), so CI gates it like any counter.

Workload materialization is deterministic (fixed seed per case), so two
runs of the same suite at the same scale replay byte-identical update
streams — which is what makes the deterministic counters (cell scans)
byte-comparable across code versions.

The ``smoke`` suite is the subset cheap enough for per-PR CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import make_workload, scaled_grid, scaled_spec
from repro.grid.kernels import VEC_MIN_OCCUPANCY, available_backends
from repro.mobility.skewed import SkewedGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import Workload, WorkloadSpec

ALGORITHMS = ("CPM", "YPK-CNN", "SEA-CNN")

#: paper sweep values (Figures 6.2a, 6.2b and 6.3).
PAPER_N = (10_000, 50_000, 100_000, 150_000, 200_000)
PAPER_QUERIES = (1_000, 2_000, 5_000, 7_000, 10_000)
K_SWEEP = (4, 16, 64)

#: default RNG seed of the suite (the paper's publication year).
SUITE_SEED = 2005

#: shard counts of the service-layer scaling scenario (Figure 6.2 defaults).
SHARD_SCALING = (1, 2, 4, 8)

#: the cheap subset of the shard sweep exercised by the smoke suite.
SHARD_SCALING_SMOKE = (1, 4)

#: per-query subscription multiplicity of the ``subscription_scale``
#: case: 8 × 5 000 queries = 40 000 live subscriptions at full scale.
SUBSCRIBERS_PER_QUERY = 8


@dataclass(slots=True, frozen=True)
class SuiteCase:
    """One workload case (replayed once per algorithm).

    ``shards > 0`` marks a service-layer case: the workload is replayed
    into a :class:`repro.service.sharding.ShardedMonitor` with that many
    shards (CPM engines) instead of a bare algorithm.  ``executor``
    selects the shard executor: ``"serial"`` (deterministic, in-process),
    ``"process"`` (one worker per shard, wall-clock-only metrics) or
    ``"supervised"`` (the fault-tolerant process executor, fault-free —
    prices the supervision overhead).
    ``ingest`` routes the replay through the ``repro.ingest`` pipeline
    (mark-honoring, columnar fast path) instead of the direct loop.
    ``subscribed`` replays through a delta-streaming service;
    ``subscribers > 0`` additionally attaches that many per-query topic
    subscriptions to *every* query (the ``subscription_scale`` shape).
    """

    key: str
    workload: str  # "network" | "uniform" | "skewed"
    spec: WorkloadSpec
    grid: int
    shards: int = 0
    executor: str = "serial"
    ingest: bool = False
    subscribed: bool = False
    subscribers: int = 0
    #: replay into a :class:`repro.service.partition.PartitionedMonitor`
    #: (owned column blocks + halo sync) instead of the replicated
    #: ``ShardedMonitor``.  Only meaningful with ``shards > 0``.
    partitioned: bool = False
    #: explicit kernel backend for the engine grid (``high_density``
    #: A/B arms); ``None`` keeps the auto default.
    backend: str | None = None

    def materialize(self) -> Workload:
        if self.workload == "network":
            return make_workload(self.spec)
        if self.workload == "uniform":
            return UniformGenerator(self.spec).generate()
        if self.workload == "skewed":
            return SkewedGenerator(self.spec).generate()
        raise ValueError(f"unknown workload kind {self.workload!r}")


def _dedup(cases: list[SuiteCase]) -> list[SuiteCase]:
    """Drop cases whose scaled parameters collapsed onto an earlier case."""
    seen: set[tuple] = set()
    out: list[SuiteCase] = []
    for case in cases:
        signature = (
            case.workload,
            case.spec,
            case.grid,
            case.shards,
            case.executor,
            case.ingest,
            case.subscribed,
            case.subscribers,
            case.partitioned,
            case.backend,
        )
        if signature in seen:
            continue
        seen.add(signature)
        out.append(case)
    return out


def build_suite(
    scale: float, suite: str = "full", seed: int = SUITE_SEED
) -> list[SuiteCase]:
    """The case list of one suite run (workloads not yet materialized)."""
    if suite not in ("full", "smoke"):
        raise ValueError(f"unknown suite {suite!r} (expected 'full' or 'smoke')")
    grid = scaled_grid(scale)
    default = scaled_spec(scale, seed=seed)
    cases: list[SuiteCase] = []

    # Scalability: CPU versus N (the bench_fig_6_2 workload family).
    for paper_n in PAPER_N:
        n_objects = max(200, round(paper_n * scale))
        cases.append(
            SuiteCase(
                key=f"scalability_n/N={n_objects}",
                workload="network",
                spec=default.replace(n_objects=n_objects),
                grid=grid,
            )
        )
    if suite == "full":
        # Scalability: CPU versus n.
        for paper_q in PAPER_QUERIES:
            n_queries = max(2, round(paper_q * scale))
            cases.append(
                SuiteCase(
                    key=f"scalability_q/n={n_queries}",
                    workload="network",
                    spec=default.replace(n_queries=n_queries),
                    grid=grid,
                )
            )
        # Grid granularity sensitivity around the scaled default.
        for factor, label in ((0.5, "half"), (1.0, "default"), (2.0, "double")):
            cells = max(4, round(grid * factor))
            cases.append(
                SuiteCase(
                    key=f"granularity/{label}",
                    workload="network",
                    spec=default,
                    grid=cells,
                )
            )
        # Result cardinality.
        for k in K_SWEEP:
            cases.append(
                SuiteCase(
                    key=f"k_sweep/k={k}",
                    workload="network",
                    spec=default.replace(k=k),
                    grid=grid,
                )
            )
    # Distribution stress cases run in both suites: they exercise the
    # update-handling hot path under very different cell occupancies.
    cases.append(
        SuiteCase(key="uniform/default", workload="uniform", spec=default, grid=grid)
    )
    cases.append(
        SuiteCase(key="skewed/default", workload="skewed", spec=default, grid=grid)
    )
    # Streaming ingestion over the defaults workload: both suites run it
    # (the ingestion tier is hot-path code, so the smoke gate must cover
    # its deterministic counters per PR).
    cases.append(
        SuiteCase(
            key="streaming_ingest/default",
            workload="network",
            spec=default,
            grid=grid,
            ingest=True,
        )
    )
    # Per-query subscription routing (the repro.api delta-streaming path):
    # the defaults workload replayed through a service with per-query
    # topics and a firehose attached, so the smoke gate covers both the
    # streamed path's deterministic counters and the delivered-delta
    # count per PR.  (The plain cases above gate the no-subscriber cheap
    # path: they replay through the same service tier with an empty hub.)
    cases.append(
        SuiteCase(
            key="subscription_routing/default",
            workload="network",
            spec=default,
            grid=grid,
            subscribed=True,
        )
    )
    # Subscription scale: every query watched by SUBSCRIBERS_PER_QUERY
    # topic subscriptions — tens of thousands of concurrent subscriptions
    # at full scale — pricing hub routing under real pub/sub fan-out.
    cases.append(
        SuiteCase(
            key="subscription_scale/default",
            workload="network",
            spec=default,
            grid=grid,
            subscribed=True,
            subscribers=SUBSCRIBERS_PER_QUERY,
        )
    )
    # Coarse-grid/high-occupancy stress: size the grid so mean cell
    # occupancy clears the vectorized-scan threshold with headroom, then
    # run one arm per available kernel backend.  Counters are
    # byte-identical across arms (backend equivalence); the wall-clock
    # ratio is the A/B signal for the vector kernels.
    dense_grid = max(2, int((default.n_objects / (2 * VEC_MIN_OCCUPANCY)) ** 0.5))
    for backend in available_backends():
        if backend == "array":
            # Same scalar scan loops as "list" (only the column storage
            # differs); the A/B arms are scalar-reference vs vector.
            continue
        cases.append(
            SuiteCase(
                key=f"high_density/{backend}",
                workload="uniform",
                spec=default,
                grid=dense_grid,
                backend=backend,
            )
        )
    # Service-layer shard scaling over the defaults workload.  The shard
    # count is clamped to the grid's column count (tiny smoke grids).
    shard_counts = SHARD_SCALING if suite == "full" else SHARD_SCALING_SMOKE
    for n_shards in shard_counts:
        if n_shards > grid:
            continue
        cases.append(
            SuiteCase(
                key=f"shard_scaling/S={n_shards}",
                workload="network",
                spec=default,
                grid=grid,
                shards=n_shards,
            )
        )
    # Partitioned shard scaling (owned column blocks + halo sync): the
    # serial sweep records every deterministic counter — counter-exact
    # against the single engine — plus the partition traffic counters.
    for n_shards in shard_counts:
        if n_shards > grid:
            continue
        cases.append(
            SuiteCase(
                key=f"partition_scaling/S={n_shards}",
                workload="network",
                spec=default,
                grid=grid,
                shards=n_shards,
                partitioned=True,
            )
        )
    if suite == "full":
        # Real multi-core speedup on the process-backed executor
        # (ROADMAP: "parallel shard executor in the perf gate").
        for n_shards in SHARD_SCALING:
            if n_shards > grid:
                continue
            cases.append(
                SuiteCase(
                    key=f"shard_scaling_wallclock/S={n_shards}",
                    workload="network",
                    spec=default,
                    grid=grid,
                    shards=n_shards,
                    executor="process",
                )
            )
        # The partitioned sweep on real worker processes: per-shard
        # object ownership AND multi-core parallelism — the
        # configuration where partitioning must beat replication.
        for n_shards in SHARD_SCALING:
            if n_shards > grid:
                continue
            cases.append(
                SuiteCase(
                    key=f"partition_scaling_wallclock/S={n_shards}",
                    workload="network",
                    spec=default,
                    grid=grid,
                    shards=n_shards,
                    executor="process",
                    partitioned=True,
                )
            )
        # Supervision overhead: the identical sweep wrapped in the
        # fault-tolerant executor, zero faults firing — the wall-clock
        # delta against shard_scaling_wallclock IS the price of fault
        # tolerance (command log + recv deadline per command).
        for n_shards in SHARD_SCALING:
            if n_shards > grid:
                continue
            cases.append(
                SuiteCase(
                    key=f"fault_recovery/S={n_shards}",
                    workload="network",
                    spec=default,
                    grid=grid,
                    shards=n_shards,
                    executor="supervised",
                )
            )
    return _dedup(cases)
