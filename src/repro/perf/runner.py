"""Suite runner: replay the canonical workloads and record the metrics.

For every suite case the runner materializes the workload once (all
algorithms observe byte-identical update streams, as in the paper's
methodology) and replays it into a fresh monitor per algorithm:

* ``wall_sec``     — full-replay wall-clock (installation + all cycles),
  minimum over ``repeats`` replays (the standard noise-robust estimator);
* ``process_sec`` / ``install_sec`` — the engine's phase decomposition;
* ``cell_scans`` and ``cell_accesses_per_query_per_ts`` — the Figure 6.3b
  counters, *deterministic* for a given workload and therefore byte-exact
  regression signals;
* ``objects_scanned`` / ``results_changed`` — secondary counters;
* ``peak_rss_kb``  — the process high-water mark (``ru_maxrss``) sampled
  after the case; monotonic across a run, so only *increases* versus a
  baseline are meaningful.
"""

from __future__ import annotations

import gc
import time
from collections.abc import Callable

from repro.api.session import Session, replay_workload
from repro.core.cpm import CPMMonitor
from repro.experiments.common import build_monitor
from repro.grid.kernels import available_backends
from repro.ingest.driver import IngestDriver
from repro.ingest.feeds import WorkloadFeed
from repro.mobility.workload import Workload
from repro.monitor import ContinuousMonitor
from repro.obs.metrics import MetricsRegistry
from repro.perf.schema import BenchCase, BenchReport, environment_info
from repro.perf.suite import ALGORITHMS, SuiteCase, build_suite
from repro.service.executor import ProcessShardExecutor
from repro.service.partition import PartitionedMonitor
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor
from repro.service.supervisor import SupervisedShardExecutor

#: metrics recorded for wall-clock-only cases (process-backed executors):
#: the timing metrics the gate treats as advisory.  Deterministic
#: counters are omitted (they would duplicate the serial scenario's),
#: and so is peak RSS — ``getrusage`` can only report the parent or the
#: single largest reaped child, which misstates a multi-worker
#: footprint as shard counts grow.
WALLCLOCK_METRICS = ("wall_sec", "process_sec", "install_sec")

try:  # pragma: no cover - platform probe
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where the platform cannot report it).

    Parent process only — which is why wall-clock-only cases (whose
    state lives in worker processes) do not record this metric at all.
    """
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0
    # Linux reports KiB; macOS reports bytes.
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return raw // 1024
    return raw


def _case_monitor(
    case: SuiteCase, algorithm: str, bounds: tuple[float, float, float, float]
) -> ContinuousMonitor:
    """The monitor under test: bare algorithm, sharded or partitioned
    service, or a CPM engine pinned to an explicit kernel backend."""
    if case.shards:
        if case.executor == "process":
            executor = ProcessShardExecutor()
        elif case.executor == "supervised":
            executor = SupervisedShardExecutor()
        else:
            executor = None
        if case.partitioned:
            # The partitioned tier is CPM-specific (run_suite only
            # sweeps CPM over service-layer cases).
            return PartitionedMonitor(
                case.shards,
                case.grid,
                bounds=bounds,
                executor=executor,
            )
        return ShardedMonitor(
            case.shards,
            case.grid,
            bounds=bounds,
            algorithm=algorithm,
            executor=executor,
        )
    if case.backend is not None:
        # Explicit-backend A/B arms (high_density) pin the CPM engine's
        # kernel backend instead of the auto default.
        return CPMMonitor(
            cells_per_axis=case.grid, bounds=bounds, backend=case.backend
        )
    return build_monitor(algorithm, case.grid, bounds=bounds)


def _run_ingest_case(
    case: SuiteCase,
    workload: Workload,
    algorithm: str,
    repeats: int,
    registry: MetricsRegistry | None = None,
) -> BenchCase:
    """Replay one case through the full ingestion pipeline.

    The driver honors the workload feed's cycle marks, so every
    deterministic counter is byte-identical to the direct replay of the
    same workload; ``wall_sec``/``process_sec`` price the columnar
    ``tick_flat`` path and the extra ``ingest_sec`` metric prices the
    feed→buffer→batcher tier itself (advisory — no gate threshold).
    With a ``registry`` the service and driver run fully instrumented —
    the telemetry-overhead configuration CI prices against the plain
    run (the counters must stay byte-identical either way).
    """
    spec = workload.spec
    best = None
    for _ in range(max(1, repeats)):
        monitor = build_monitor(algorithm, case.grid, bounds=spec.bounds)
        service = MonitoringService(monitor, metrics=registry)
        driver = IngestDriver(
            WorkloadFeed(workload), service, metrics=registry
        )
        gc.collect()
        t0 = time.perf_counter()
        driver.prime(k=spec.k)
        install_sec = time.perf_counter() - t0
        monitor.reset_stats()
        t0 = time.perf_counter()
        report = driver.run()
        wall = install_sec + time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, install_sec, report, monitor.stats.snapshot())
    assert best is not None
    wall, install_sec, report, stats = best
    n_cycles = max(1, report.n_cycles)
    metrics = {
        "wall_sec": round(wall, 6),
        "process_sec": round(report.total_process_sec, 6),
        "install_sec": round(install_sec, 6),
        "ingest_sec": round(report.total_ingest_sec, 6),
        "cell_scans": stats.cell_scans,
        "cell_accesses_per_query_per_ts": round(
            stats.cell_scans / (spec.n_queries * n_cycles), 6
        )
        if spec.n_queries
        else 0.0,
        "objects_scanned": stats.objects_scanned,
        "results_changed": report.total_changed,
        "peak_rss_kb": peak_rss_kb(),
    }
    return BenchCase(
        case_id=f"{case.key}/{algorithm}",
        workload=case.workload,
        algorithm=algorithm,
        params={
            "n_objects": spec.n_objects,
            "n_queries": spec.n_queries,
            "k": spec.k,
            "grid": case.grid,
            "timestamps": spec.timestamps,
            "seed": spec.seed,
            "shards": case.shards,
            "executor": case.executor,
            "ingest": True,
        },
        metrics=metrics,
    )


def _run_subscribed_case(
    case: SuiteCase,
    workload: Workload,
    algorithm: str,
    repeats: int,
    registry: MetricsRegistry | None = None,
) -> BenchCase:
    """Replay one case through the delta-streaming service path.

    The default shape (``subscription_routing``): a quarter of the
    queries (at least one) get per-query topic subscriptions and one
    firehose listens to everything — a small ``repro.api`` deployment.
    With ``case.subscribers > 0`` (``subscription_scale``): every query
    gets that many topic subscriptions and no firehose — tens of
    thousands of concurrent subscriptions at full scale.  Either way the
    grid counters are byte-identical to the plain replay (delta capture
    reads result lists, never the grid), and the delivered-delta count
    is deterministic for a fixed workload, so both gate exactly;
    ``process_sec``/``wall_sec`` price the capture + diff + fan-out
    overhead (advisory, CI runners are noisy).
    """
    spec = workload.spec
    qids = sorted(workload.initial_queries)
    if case.subscribers > 0:
        watched = [qid for qid in qids for _ in range(case.subscribers)]
        use_firehose = False
    else:
        watched = qids[: max(1, len(qids) // 4)]
        use_firehose = True
    best = None
    for _ in range(max(1, repeats)):
        monitor = build_monitor(algorithm, case.grid, bounds=spec.bounds)
        service = MonitoringService(monitor, metrics=registry)
        per_query = [
            service.hub.subscribe_query(qid, lambda ts, delta: None)
            for qid in watched
        ]
        firehose = (
            service.subscribe(lambda ts, delta: None) if use_firehose else None
        )
        session = Session(service)
        gc.collect()
        t0 = time.perf_counter()
        candidate = session.replay(workload)
        wall = time.perf_counter() - t0
        delivered = sum(s.delivered for s in per_query)
        if firehose is not None:
            delivered += firehose.delivered
        if best is None or wall < best[0]:
            best = (wall, candidate, delivered)
    assert best is not None
    wall, report, delivered = best
    metrics = {
        "wall_sec": round(wall, 6),
        "process_sec": round(report.total_processing_sec, 6),
        "install_sec": round(report.install_sec, 6),
        "cell_scans": report.total_cell_scans,
        "cell_accesses_per_query_per_ts": round(
            report.cell_accesses_per_query_per_timestamp, 6
        ),
        "objects_scanned": report.total_objects_scanned,
        "results_changed": report.total_results_changed,
        "deltas_delivered": delivered,
        "peak_rss_kb": peak_rss_kb(),
    }
    return BenchCase(
        case_id=f"{case.key}/{algorithm}",
        workload=case.workload,
        algorithm=algorithm,
        params={
            "n_objects": spec.n_objects,
            "n_queries": spec.n_queries,
            "k": spec.k,
            "grid": case.grid,
            "timestamps": spec.timestamps,
            "seed": spec.seed,
            "shards": case.shards,
            "executor": case.executor,
            "subscribed": True,
            "subscribers": case.subscribers,
            "watched_queries": len(watched),
        },
        metrics=metrics,
    )


def run_case(
    case: SuiteCase,
    workload: Workload,
    algorithm: str,
    repeats: int = 1,
    registry: MetricsRegistry | None = None,
) -> BenchCase:
    """Replay one (case, algorithm) pair; returns its measurement row.

    Wall-clock-only cases (process-backed executors: ``"process"`` and
    ``"supervised"``) record just
    the :data:`WALLCLOCK_METRICS` — worker scheduling makes their value
    the *real* multi-core time, while the deterministic counters belong
    to the serial scenario.  Ingest cases (``case.ingest``) replay
    through the :mod:`repro.ingest` pipeline instead of the direct loop.
    ``registry`` instruments the service-tier cases (ingest and
    subscribed); the bare-engine replays have no service around them and
    run unchanged either way.
    """
    if case.ingest:
        return _run_ingest_case(case, workload, algorithm, repeats, registry)
    if case.subscribed:
        return _run_subscribed_case(case, workload, algorithm, repeats, registry)
    best_wall = float("inf")
    report = None
    partition = None
    for _ in range(max(1, repeats)):
        monitor = _case_monitor(case, algorithm, workload.spec.bounds)
        gc.collect()
        try:
            t0 = time.perf_counter()
            candidate = replay_workload(monitor, workload)
            wall = time.perf_counter() - t0
        finally:
            close = getattr(monitor, "close", None)
            if close is not None:
                close()
        if wall < best_wall:
            best_wall = wall
            report = candidate
            if case.partitioned:
                partition = dict(monitor.partition_stats())
    assert report is not None
    spec = workload.spec
    metrics = {
        "wall_sec": round(best_wall, 6),
        "process_sec": round(report.total_processing_sec, 6),
        "install_sec": round(report.install_sec, 6),
        "cell_scans": report.total_cell_scans,
        "cell_accesses_per_query_per_ts": round(
            report.cell_accesses_per_query_per_timestamp, 6
        ),
        "objects_scanned": report.total_objects_scanned,
        "results_changed": report.total_results_changed,
        "peak_rss_kb": peak_rss_kb(),
    }
    if case.executor in ("process", "supervised"):
        metrics = {key: metrics[key] for key in WALLCLOCK_METRICS}
    if partition is not None:
        # Partition traffic counters are deterministic for a fixed
        # workload (the halo/pull protocol is), so they gate exactly —
        # including on the wall-clock-only process-executor sweep.
        for key in (
            "fanout_rows",
            "sync_rows",
            "pulls",
            "pull_objects",
            "prefetch_cells",
            "evictions",
            "migrations",
        ):
            metrics[f"partition_{key}"] = partition[key]
    params = {
        "n_objects": spec.n_objects,
        "n_queries": spec.n_queries,
        "k": spec.k,
        "grid": case.grid,
        "timestamps": spec.timestamps,
        "seed": spec.seed,
        "shards": case.shards,
        "executor": case.executor,
    }
    if case.partitioned:
        params["partitioned"] = True
    if case.backend is not None:
        params["backend"] = case.backend
    return BenchCase(
        case_id=f"{case.key}/{algorithm}",
        workload=case.workload,
        algorithm=algorithm,
        params=params,
        metrics=metrics,
    )


def run_suite(
    scale: float,
    *,
    suite: str = "full",
    repeats: int = 1,
    algorithms: tuple[str, ...] = ALGORITHMS,
    annotations: dict[str, str] | None = None,
    progress: Callable[[str], None] | None = None,
    registry: MetricsRegistry | None = None,
) -> BenchReport:
    """Run the whole suite; returns the filled bench report.

    ``registry`` turns on full service/ingest instrumentation for the
    cases that have a service tier; counters accumulate across cases, so
    the registry afterwards is the run's scrape snapshot.
    """
    report = BenchReport(
        scale=scale,
        suite=suite,
        repeats=repeats,
        environment=environment_info(),
        annotations=dict(annotations or {}),
    )
    report.annotations.setdefault("kernel_backends", ",".join(available_backends()))
    for case in build_suite(scale, suite=suite):
        workload = case.materialize()
        # Shard-scaling, ingest, and explicit-backend cases measure the
        # service/ingestion layers or kernel backends around one engine;
        # sweeping every baseline there would triple the suite for no
        # extra signal.  They still honour the caller's algorithm filter.
        if case.shards or case.ingest or case.subscribed or case.backend:
            case_algorithms = ("CPM",) if "CPM" in algorithms else ()
        else:
            case_algorithms = algorithms
        for algorithm in case_algorithms:
            row = run_case(
                case, workload, algorithm, repeats=repeats, registry=registry
            )
            report.cases.append(row)
            if progress is not None:
                scans = row.metrics.get("cell_scans")
                progress(
                    f"{row.case_id}: wall={row.metrics['wall_sec']:.3f}s "
                    f"scans={'n/a' if scans is None else scans}"
                )
    return report
