"""Micro-benchmark of the cell-scan loop shapes in isolation.

``python -m repro.perf micro`` times the per-object cost of one cell
scan-and-filter under the two storage layouts the library has used:

* **dict** — the pre-PR3 shape: a charged ``Grid.scan``-style *method
  call* returning the cell's ``dict[int, Point]``, then the item loop
  with a position-tuple unpack and two subscripts per object;
* **columnar** — the shape the engines inline today (see
  ``CPMMonitor._run_search``): direct store indexing with the accounting
  bumped in place (no function frame at all), then ``zip`` over the
  parallel ``oids`` / ``xs`` / ``ys`` columns of
  :class:`repro.grid.kernels.CellColumns`, coordinates arriving as plain
  floats with no tuple indirection.

Both shapes are timed as *inline statements* (``timeit``-style compiled
loops) because that is how the hot paths execute them; they charge the
same counters, scan identical populations and produce identical
``(dist, oid)`` candidate lists.  At low cell occupancy the dict era's
per-scan call frame dominates — which is exactly what the columnar
rewrite removed.  The numbers are wall-clock and therefore *advisory* —
CI runs this step as informational only; the deterministic accounting of
real scans is covered by the perf-gate counters instead.
"""

from __future__ import annotations

import random
import timeit
from math import hypot

from repro.grid.kernels import CellColumns

#: cell populations timed by default: a sparse cell, the paper's typical
#: occupancy band, and a dense hotspot cell.
DEFAULT_SIZES = (4, 32, 256)

#: query point / filter radius (roughly half the objects pass).
_QX, _QY, _RADIUS = 0.5, 0.5, 0.35

_DICT_STMT = """
cell = scan(cid)
out = []
for oid, pt in cell.items():
    d = hypot(pt[0] - qx, pt[1] - qy)
    if d <= r:
        out.append((d, oid))
"""

_COLUMNAR_STMT = """
cell = cells[cid]
stats.cell_scans += 1
out = []
if cell is not None and (coids := cell.oids):
    stats.objects_scanned += len(coids)
    for oid, x, y in zip(coids, cell.xs, cell.ys):
        d = hypot(x - qx, y - qy)
        if d <= r:
            out.append((d, oid))
"""

_FUSED_STMT = """
cell = cells[cid]
stats.cell_scans += 1
out = []
if cell is not None and (coids := cell.oids):
    stats.objects_scanned += len(coids)
    out = [
        (d, oid)
        for oid, x, y in zip(coids, cell.xs, cell.ys)
        if (d := hypot(x - qx, y - qy)) <= r
    ]
"""


class _Stats:
    """Counter pair with the same attribute-bump shape as GridStats."""

    __slots__ = ("cell_scans", "objects_scanned")

    def __init__(self) -> None:
        self.cell_scans = 0
        self.objects_scanned = 0


class _DictEraGrid:
    """The pre-PR3 store + charged accessor, faithfully shaped.

    ``scan_id`` replicates the old ``Grid.scan_id`` operation for
    operation: store index, stats attribute chase, truthiness branch,
    per-scan counter bumps, live-dict return.
    """

    __slots__ = ("_cells", "stats")

    def __init__(self, cells: list, stats: _Stats) -> None:
        self._cells = cells
        self.stats = stats

    def scan_id(self, cid: int) -> dict:
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell:
            stats.objects_scanned += len(cell)
            return cell
        return {}


def _populate(n_objects: int, seed: int) -> tuple[dict, CellColumns]:
    rng = random.Random(seed)
    cell_dict: dict[int, tuple[float, float]] = {}
    columns = CellColumns()
    for oid in range(n_objects):
        x, y = rng.random(), rng.random()
        cell_dict[oid] = (x, y)
        columns.insert(oid, x, y)
    return cell_dict, columns


def _time_per_object(
    stmt: str, namespace: dict, n_objects: int, repeats: int
) -> float:
    """Best-of-``repeats`` nanoseconds per scanned object."""
    timer = timeit.Timer(stmt, globals=namespace)
    # Size the inner iteration count so one sample is a few milliseconds.
    iterations = max(64, 100_000 // max(1, n_objects))
    best = min(timer.repeat(repeat=max(1, repeats), number=iterations))
    return best / (iterations * n_objects) * 1e9


def run_micro(
    sizes: tuple[int, ...] = DEFAULT_SIZES, repeats: int = 5, seed: int = 2005
) -> list[dict]:
    """Time both scan shapes; returns one row per cell population."""
    rows: list[dict] = []
    for n_objects in sizes:
        cell_dict, columns = _populate(n_objects, seed)
        stats = _Stats()
        namespace = {
            "cid": 0,
            "cells": [columns],
            # Pre-bound accessor, as the old engine hoisted grid.scan.
            "scan": _DictEraGrid([cell_dict], stats).scan_id,
            "stats": stats,
            "qx": _QX,
            "qy": _QY,
            "r": _RADIUS,
            "hypot": hypot,
        }
        # Sanity: identical candidates from both shapes.
        check: dict = dict(namespace)
        exec(_DICT_STMT, check)  # noqa: S102 - fixed local statement
        expected = check["out"]
        exec(_COLUMNAR_STMT, check)  # noqa: S102
        assert sorted(check["out"]) == sorted(expected)
        exec(_FUSED_STMT, check)  # noqa: S102
        assert sorted(check["out"]) == sorted(expected)
        dict_ns = _time_per_object(_DICT_STMT, namespace, n_objects, repeats)
        col_ns = _time_per_object(_COLUMNAR_STMT, namespace, n_objects, repeats)
        fused_ns = _time_per_object(_FUSED_STMT, namespace, n_objects, repeats)
        rows.append(
            {
                "n_objects": n_objects,
                "dict_ns_per_object": round(dict_ns, 2),
                "columnar_ns_per_object": round(col_ns, 2),
                "fused_ns_per_object": round(fused_ns, 2),
                "speedup": round(dict_ns / col_ns, 3) if col_ns else float("inf"),
                "fused_speedup": round(dict_ns / fused_ns, 3)
                if fused_ns
                else float("inf"),
            }
        )
    return rows


def render_micro(rows: list[dict]) -> str:
    lines = [
        f"{'objects/cell':>12} {'dict ns/obj':>12} {'columnar ns/obj':>16} "
        f"{'fused ns/obj':>13} {'col':>6} {'fused':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row['n_objects']:>12} {row['dict_ns_per_object']:>12.1f} "
            f"{row['columnar_ns_per_object']:>16.1f} "
            f"{row['fused_ns_per_object']:>13.1f} "
            f"{row['speedup']:>5.2f}x {row['fused_speedup']:>5.2f}x"
        )
    return "\n".join(lines)
