"""Micro-benchmark of the hot loop shapes in isolation.

``python -m repro.perf micro`` times two families of loop shapes.

**Cell scans** — the per-object cost of one cell scan-and-filter under
the two storage layouts the library has used:

* **dict** — the pre-PR3 shape: a charged ``Grid.scan``-style *method
  call* returning the cell's ``dict[int, Point]``, then the item loop
  with a position-tuple unpack and two subscripts per object;
* **columnar** — the shape the engines inline today (see
  ``CPMMonitor._run_search``): direct store indexing with the accounting
  bumped in place (no function frame at all), then ``zip`` over the
  parallel ``oids`` / ``xs`` / ``ys`` columns of
  :class:`repro.grid.kernels.CellColumns`, coordinates arriving as plain
  floats with no tuple indirection.

**Batch applies** — the per-update cost of walking one cycle's update
batch under the two batch encodings (the ingestion tier's reason to
exist, see :mod:`repro.ingest`):

* **dataclass** — the ``Sequence[ObjectUpdate]`` shape: per update three
  frozen-dataclass attribute reads, ``None`` checks on the boundary
  cases, and position-tuple subscripts for the new coordinates;
* **flat** — the :class:`repro.updates.FlatUpdateBatch` shape the CPM
  ``process_flat`` loop iterates: one four-column ``zip`` unpack (the
  width is deliberate — see ``process_flat``), coordinates arriving as
  plain floats.

Both apply shapes feed the identical minimal sink, so the delta isolates
the per-update *encoding read* cost — the piece the columnar batch
exists to shrink.  (The downstream grid mutations are identical between
the paths by construction and would only dilute the signal here.)

**Backend scans** — the fused within-kernel timed once per installed
numeric backend (``list`` / ``array`` / ``numpy``, see
:mod:`repro.grid.kernels`) over a ladder of cell occupancies.  The
scalar backends run the exact comprehension the engines inline; numpy
runs its vectorized prefilter kernel.  The reported *crossover* — the
smallest occupancy where the numpy kernel beats the best scalar shape —
is what :data:`repro.grid.kernels.VEC_MIN_OCCUPANCY` encodes (override
per machine with ``REPRO_KERNEL_VEC_MIN``).

All shapes are timed as *inline statements* (``timeit``-style compiled
loops) because that is how the hot paths execute them; within a family
they charge the same counters, walk identical inputs and produce
identical outputs.  At low cell occupancy the dict era's per-scan call
frame dominates — which is exactly what the columnar rewrite removed.
The numbers are wall-clock and therefore *advisory* — CI runs this step
as informational only; the deterministic accounting of real scans is
covered by the perf-gate counters instead.
"""

from __future__ import annotations

import random
import timeit
from math import hypot

from repro.grid.kernels import CellColumns, available_backends, resolve_backend
from repro.updates import FlatUpdateBatch, ObjectUpdate

#: cell populations timed by default: a sparse cell, the paper's typical
#: occupancy band, and a dense hotspot cell.
DEFAULT_SIZES = (4, 32, 256)

#: batch sizes timed by default: a typical agility-sampled cycle and two
#: ingest-flush scales.  The flat encoding's edge grows with the batch —
#: a big dataclass batch walks thousands of scattered 3-pointer objects
#: (cache-miss bound), the columnar batch walks five dense arrays.
DEFAULT_BATCH_SIZES = (1024, 8192, 65536)

#: occupancy ladder for the per-backend kernel scan — dense enough around
#: the expected numpy crossover (tens of objects) to pin it down.
DEFAULT_BACKEND_SIZES = (4, 8, 16, 32, 64, 128, 256, 1024)

#: query point / filter radius (roughly half the objects pass).
_QX, _QY, _RADIUS = 0.5, 0.5, 0.35

_DICT_STMT = """
cell = scan(cid)
out = []
for oid, pt in cell.items():
    d = hypot(pt[0] - qx, pt[1] - qy)
    if d <= r:
        out.append((d, oid))
"""

_COLUMNAR_STMT = """
cell = cells[cid]
stats.cell_scans += 1
out = []
if cell is not None and (coids := cell.oids):
    stats.objects_scanned += len(coids)
    for oid, x, y in zip(coids, cell.xs, cell.ys):
        d = hypot(x - qx, y - qy)
        if d <= r:
            out.append((d, oid))
"""

_FUSED_STMT = """
cell = cells[cid]
stats.cell_scans += 1
out = []
if cell is not None and (coids := cell.oids):
    stats.objects_scanned += len(coids)
    out = [
        (d, oid)
        for oid, x, y in zip(coids, cell.xs, cell.ys)
        if (d := hypot(x - qx, y - qy)) <= r
    ]
"""


class _Stats:
    """Counter pair with the same attribute-bump shape as GridStats."""

    __slots__ = ("cell_scans", "objects_scanned")

    def __init__(self) -> None:
        self.cell_scans = 0
        self.objects_scanned = 0


class _DictEraGrid:
    """The pre-PR3 store + charged accessor, faithfully shaped.

    ``scan_id`` replicates the old ``Grid.scan_id`` operation for
    operation: store index, stats attribute chase, truthiness branch,
    per-scan counter bumps, live-dict return.
    """

    __slots__ = ("_cells", "stats")

    def __init__(self, cells: list, stats: _Stats) -> None:
        self._cells = cells
        self.stats = stats

    def scan_id(self, cid: int) -> dict:
        cell = self._cells[cid]
        stats = self.stats
        stats.cell_scans += 1
        if cell:
            stats.objects_scanned += len(cell)
            return cell
        return {}


def _populate(n_objects: int, seed: int) -> tuple[dict, CellColumns]:
    rng = random.Random(seed)
    cell_dict: dict[int, tuple[float, float]] = {}
    columns = CellColumns()
    for oid in range(n_objects):
        x, y = rng.random(), rng.random()
        cell_dict[oid] = (x, y)
        columns.insert(oid, x, y)
    return cell_dict, columns


def _time_per_object(
    stmt: str, namespace: dict, n_objects: int, repeats: int
) -> float:
    """Best-of-``repeats`` nanoseconds per scanned object."""
    timer = timeit.Timer(stmt, globals=namespace)
    # Size the inner iteration count so one sample is a few milliseconds.
    iterations = max(64, 100_000 // max(1, n_objects))
    best = min(timer.repeat(repeat=max(1, repeats), number=iterations))
    return best / (iterations * n_objects) * 1e9


def run_micro(
    sizes: tuple[int, ...] = DEFAULT_SIZES, repeats: int = 5, seed: int = 2005
) -> list[dict]:
    """Time both scan shapes; returns one row per cell population."""
    rows: list[dict] = []
    for n_objects in sizes:
        cell_dict, columns = _populate(n_objects, seed)
        stats = _Stats()
        namespace = {
            "cid": 0,
            "cells": [columns],
            # Pre-bound accessor, as the old engine hoisted grid.scan.
            "scan": _DictEraGrid([cell_dict], stats).scan_id,
            "stats": stats,
            "qx": _QX,
            "qy": _QY,
            "r": _RADIUS,
            "hypot": hypot,
        }
        # Sanity: identical candidates from both shapes.
        check: dict = dict(namespace)
        exec(_DICT_STMT, check)  # noqa: S102 - fixed local statement
        expected = check["out"]
        exec(_COLUMNAR_STMT, check)  # noqa: S102
        assert sorted(check["out"]) == sorted(expected)
        exec(_FUSED_STMT, check)  # noqa: S102
        assert sorted(check["out"]) == sorted(expected)
        dict_ns = _time_per_object(_DICT_STMT, namespace, n_objects, repeats)
        col_ns = _time_per_object(_COLUMNAR_STMT, namespace, n_objects, repeats)
        fused_ns = _time_per_object(_FUSED_STMT, namespace, n_objects, repeats)
        rows.append(
            {
                "n_objects": n_objects,
                "dict_ns_per_object": round(dict_ns, 2),
                "columnar_ns_per_object": round(col_ns, 2),
                "fused_ns_per_object": round(fused_ns, 2),
                "speedup": round(dict_ns / col_ns, 3) if col_ns else float("inf"),
                "fused_speedup": round(dict_ns / fused_ns, 3)
                if fused_ns
                else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Per-backend kernel scan (the VEC_MIN_OCCUPANCY crossover, measured)
# ----------------------------------------------------------------------

#: the exact fused comprehension the engines inline for scalar backends
#: (works unchanged over list- and array('d')-backed columns).
_SCALAR_WITHIN_STMT = """
out = [
    (d, oid)
    for oid, x, y in zip(cell.oids, cell.xs, cell.ys)
    if (d := hypot(x - qx, y - qy)) <= r
]
"""

_VEC_WITHIN_STMT = """
out = vec(cell, qx, qy, r)
"""


def _populate_backend_cell(backend, n_objects: int, seed: int):
    rng = random.Random(seed)
    cell = backend.cell_factory()
    for oid in range(n_objects):
        cell.insert(oid, rng.random(), rng.random())
    return cell


def run_micro_backends(
    sizes: tuple[int, ...] = DEFAULT_BACKEND_SIZES,
    repeats: int = 5,
    seed: int = 2005,
) -> dict:
    """Time the within-kernel per installed backend over an occupancy
    ladder; returns ``{"rows": [...], "crossover": int | None}``.

    ``crossover`` is the smallest occupancy where the numpy kernel beats
    every scalar backend (``None`` when numpy is absent or never wins) —
    the measured value of ``VEC_MIN_OCCUPANCY``.
    """
    backends = available_backends()
    rows: list[dict] = []
    for n_objects in sizes:
        row: dict = {"n_objects": n_objects}
        expected: list | None = None
        for name in backends:
            backend = resolve_backend(name)
            cell = _populate_backend_cell(backend, n_objects, seed)
            namespace = {
                "cell": cell,
                "qx": _QX,
                "qy": _QY,
                "r": _RADIUS,
                "hypot": hypot,
                "vec": backend.vec_within,
            }
            stmt = (
                _VEC_WITHIN_STMT
                if backend.vec_within is not None
                else _SCALAR_WITHIN_STMT
            )
            # Sanity: every backend returns the identical candidate list.
            check: dict = dict(namespace)
            exec(stmt, check)  # noqa: S102 - fixed local statement
            if expected is None:
                expected = check["out"]
            else:
                assert check["out"] == expected
            row[f"{name}_ns_per_object"] = round(
                _time_per_object(stmt, namespace, n_objects, repeats), 2
            )
        rows.append(row)
    crossover: int | None = None
    if "numpy" in backends:
        scalar_names = [n for n in backends if n != "numpy"]
        for row in rows:
            vec_ns = row["numpy_ns_per_object"]
            if all(vec_ns <= row[f"{n}_ns_per_object"] for n in scalar_names):
                crossover = row["n_objects"]
                break
    return {"rows": rows, "crossover": crossover}


def render_micro_backends(result: dict) -> str:
    rows = result["rows"]
    names = [k[: -len("_ns_per_object")] for k in rows[0] if k != "n_objects"]
    header = f"{'objects/cell':>12}" + "".join(
        f" {name + ' ns/obj':>15}" for name in names
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['n_objects']:>12}"
            + "".join(f" {row[f'{n}_ns_per_object']:>15.1f}" for n in names)
        )
    crossover = result["crossover"]
    if "numpy" not in names:
        lines.append("numpy backend not installed; no crossover to report")
    elif crossover is None:
        lines.append("numpy never beat the scalar backends at these sizes")
    else:
        lines.append(
            f"numpy crossover at ~{crossover} objects/cell "
            "(VEC_MIN_OCCUPANCY; override with REPRO_KERNEL_VEC_MIN)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Batch-apply shapes (the FlatUpdateBatch rationale, measured)
# ----------------------------------------------------------------------

_DATACLASS_STMT = """
acc = 0.0
n_off = 0
for upd in updates:
    old = upd.old
    new = upd.new
    if old is not None and new is not None:
        acc += new[0] + new[1] + upd.oid
    elif old is not None:
        n_off += 1
    else:
        acc += new[0] + new[1] + upd.oid
"""

_FLAT_STMT = """
acc = 0.0
n_off = 0
for oid, nx, ny, dis in zip(oids, new_xs, new_ys, disappear):
    if dis:
        n_off += 1
    else:
        acc += nx + ny + oid
"""


def _populate_batch(n_updates: int, seed: int) -> tuple[list, FlatUpdateBatch]:
    """One cycle's updates in both encodings (~90% moves, 5% appearances,
    5% disappearances — the Brinkhoff lifecycle mix)."""
    rng = random.Random(seed)
    updates: list[ObjectUpdate] = []
    for oid in range(n_updates):
        x0, y0 = rng.random(), rng.random()
        x1, y1 = rng.random(), rng.random()
        roll = rng.random()
        if roll < 0.05:
            updates.append(ObjectUpdate(oid, None, (x1, y1)))
        elif roll < 0.10:
            updates.append(ObjectUpdate(oid, (x0, y0), None))
        else:
            updates.append(ObjectUpdate(oid, (x0, y0), (x1, y1)))
    return updates, FlatUpdateBatch.from_updates(updates)


def run_micro_batch(
    sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES, repeats: int = 5, seed: int = 2005
) -> list[dict]:
    """Time both batch-apply shapes; returns one row per batch size.

    Both shapes walk the same mixed update stream (moves plus the rare
    boundary cases) into the same sink, so the delta is the encoding
    cost: dataclass attribute reads + tuple subscripts versus one flat
    ``zip`` unpack.
    """
    rows: list[dict] = []
    for n_updates in sizes:
        updates, flat = _populate_batch(n_updates, seed)
        namespace = {
            "updates": updates,
            "oids": flat.oids,
            "new_xs": flat.new_xs,
            "new_ys": flat.new_ys,
            "disappear": flat.disappear,
        }
        # Sanity: both shapes accumulate the same values.
        check: dict = dict(namespace)
        exec(_DATACLASS_STMT, check)  # noqa: S102 - fixed local statement
        expected = (check["acc"], check["n_off"])
        exec(_FLAT_STMT, check)  # noqa: S102
        assert (check["acc"], check["n_off"]) == expected
        dataclass_ns = _time_per_object(
            _DATACLASS_STMT, namespace, n_updates, repeats
        )
        flat_ns = _time_per_object(_FLAT_STMT, namespace, n_updates, repeats)
        rows.append(
            {
                "n_updates": n_updates,
                "dataclass_ns_per_update": round(dataclass_ns, 2),
                "flat_ns_per_update": round(flat_ns, 2),
                "speedup": round(dataclass_ns / flat_ns, 3)
                if flat_ns
                else float("inf"),
            }
        )
    return rows


def render_micro_batch(rows: list[dict]) -> str:
    lines = [
        f"{'updates/batch':>13} {'dataclass ns/upd':>17} "
        f"{'flat ns/upd':>12} {'flat':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row['n_updates']:>13} {row['dataclass_ns_per_update']:>17.1f} "
            f"{row['flat_ns_per_update']:>12.1f} "
            f"{row['speedup']:>5.2f}x"
        )
    return "\n".join(lines)


def render_micro(rows: list[dict]) -> str:
    lines = [
        f"{'objects/cell':>12} {'dict ns/obj':>12} {'columnar ns/obj':>16} "
        f"{'fused ns/obj':>13} {'col':>6} {'fused':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row['n_objects']:>12} {row['dict_ns_per_object']:>12.1f} "
            f"{row['columnar_ns_per_object']:>16.1f} "
            f"{row['fused_ns_per_object']:>13.1f} "
            f"{row['speedup']:>5.2f}x {row['fused_speedup']:>5.2f}x"
        )
    return "\n".join(lines)
