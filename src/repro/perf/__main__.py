"""Command-line entry point: ``python -m repro.perf``.

Run the suite (the default subcommand)::

    PYTHONPATH=src python -m repro.perf --scale 0.02 --out BENCH_PR1.json
    PYTHONPATH=src python -m repro.perf --suite smoke --scale 0.01 --out bench.json

The default ``--scale`` honours the ``REPRO_BENCH_SCALE`` environment
variable (as the pytest-benchmark suite does), falling back to 0.02.

Price the telemetry overhead (instrumented service tier) and keep the
run's Prometheus scrape snapshot as an artifact::

    PYTHONPATH=src python -m repro.perf --suite smoke --telemetry \
        --scrape-out scrape.txt --out bench-telemetry.json

Gate a change against a baseline::

    PYTHONPATH=src python -m repro.perf compare old.json new.json
    PYTHONPATH=src python -m repro.perf compare old.json new.json --warn-only \
        --threshold wall_sec=0.5

Time the hot loop shapes in isolation (advisory; per-object ns of the
dict scan loop versus the fused columnar kernel, plus the per-update ns
of the dataclass batch walk versus the flat-array walk)::

    PYTHONPATH=src python -m repro.perf micro
    PYTHONPATH=src python -m repro.perf micro --sizes 8,64 --batch-sizes 4096 --json

CI enforces the deterministic counters while treating wall-clock as
advisory (``--warn-noisy`` = ``--warn-metric`` for each of wall_sec,
process_sec and peak_rss_kb)::

    PYTHONPATH=src python -m repro.perf compare old.json new.json --warn-noisy

Exit codes: 0 = ok, 1 = perf regression, 2 = unusable input (schema or
scale mismatch, bad threshold spec).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.perf.compare import NOISY_METRICS, compare_reports, render_comparison
from repro.perf.micro import (
    DEFAULT_BACKEND_SIZES,
    DEFAULT_BATCH_SIZES,
    DEFAULT_SIZES,
    render_micro,
    render_micro_backends,
    render_micro_batch,
    run_micro,
    run_micro_backends,
    run_micro_batch,
)
from repro.obs.metrics import MetricsRegistry
from repro.perf.runner import run_suite
from repro.perf.schema import SchemaError, dump_report, load_report


def _default_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


def _parse_annotations(pairs: list[str]) -> dict[str, str]:
    annotations: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            # Usage errors exit 2, like _parse_thresholds: exit 1 is
            # reserved for a genuine perf regression.
            print(
                f"error: --annotate expects key=value, got {pair!r}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        annotations[key] = value
    return annotations


def _parse_thresholds(pairs: list[str]) -> dict[str, float]:
    thresholds: dict[str, float] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        try:
            if not sep or not key:
                raise ValueError
            thresholds[key] = float(value)
        except ValueError:
            print(
                f"error: --threshold expects metric=fraction, got {pair!r}",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    return thresholds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Replay the canonical workload suite or gate two bench files.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run the suite (the default subcommand)")
    for target in (parser, run):
        target.add_argument(
            "--scale",
            type=float,
            default=None,
            help="workload scale (default: $REPRO_BENCH_SCALE or 0.02)",
        )
        target.add_argument(
            "--suite",
            choices=("full", "smoke"),
            default="full",
            help="case selection (smoke = the cheap per-PR CI subset)",
        )
        target.add_argument(
            "--repeats",
            type=int,
            default=1,
            help="replays per case; the minimum wall-clock is kept",
        )
        target.add_argument("--out", default=None, help="write the bench JSON here")
        target.add_argument(
            "--annotate",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="attach provenance annotations (repeatable)",
        )
        target.add_argument(
            "--quiet", action="store_true", help="suppress per-case progress lines"
        )
        target.add_argument(
            "--telemetry",
            action="store_true",
            help="run the service-tier cases fully instrumented (the "
            "telemetry-overhead configuration; counters must match the "
            "plain run byte for byte)",
        )
        target.add_argument(
            "--scrape-out",
            default=None,
            metavar="PATH",
            help="write the run's accumulated metrics registry as "
            "Prometheus text here (implies --telemetry)",
        )

    cmp_parser = sub.add_parser("compare", help="diff two bench files")
    cmp_parser.add_argument("old", help="baseline bench JSON")
    cmp_parser.add_argument("new", help="candidate bench JSON")
    cmp_parser.add_argument(
        "--threshold",
        action="append",
        default=[],
        metavar="METRIC=FRACTION",
        help="override a regression threshold, e.g. wall_sec=0.5 (repeatable)",
    )
    cmp_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI bring-up mode)",
    )
    cmp_parser.add_argument(
        "--warn-metric",
        action="append",
        default=[],
        metavar="METRIC",
        help="demote one metric to advisory: its regressions are reported "
        "but do not fail the gate (repeatable)",
    )
    cmp_parser.add_argument(
        "--warn-noisy",
        action="store_true",
        help=f"demote the noisy metrics ({', '.join(NOISY_METRICS)}) to "
        "advisory, keeping the deterministic counters enforcing",
    )
    cmp_parser.add_argument(
        "--verbose", action="store_true", help="list every compared metric"
    )

    micro = sub.add_parser(
        "micro",
        help="time the scan/batch-apply kernels in isolation (advisory "
        "wall-clock)",
    )
    micro.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated cell populations to time (scan shapes)",
    )
    micro.add_argument(
        "--batch-sizes",
        default=",".join(str(s) for s in DEFAULT_BATCH_SIZES),
        help="comma-separated update-batch sizes to time (apply shapes)",
    )
    micro.add_argument(
        "--backend-sizes",
        default=",".join(str(s) for s in DEFAULT_BACKEND_SIZES),
        help="comma-separated cell populations for the per-backend kernel "
        "scan (numpy crossover)",
    )
    micro.add_argument(
        "--repeats", type=int, default=5, help="samples per layout (best kept)"
    )
    micro.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scale = args.scale if args.scale is not None else _default_scale()
    if scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    annotations = _parse_annotations(args.annotate)
    registry = None
    if args.telemetry or args.scrape_out:
        registry = MetricsRegistry()
        annotations.setdefault("telemetry", "on")
    report = run_suite(
        scale,
        suite=args.suite,
        repeats=max(1, args.repeats),
        annotations=annotations,
        progress=progress,
        registry=registry,
    )
    total_wall = sum(c.metrics["wall_sec"] for c in report.cases)
    print(
        f"suite={report.suite} scale={report.scale} cases={len(report.cases)} "
        f"total_wall={total_wall:.2f}s"
    )
    if args.out:
        dump_report(report, args.out)
        print(f"wrote {args.out}")
    if args.scrape_out:
        with open(args.scrape_out, "w", encoding="utf-8") as fh:
            fh.write(registry.render_prometheus())
        print(f"wrote {args.scrape_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    warn_metrics = set(args.warn_metric)
    if args.warn_noisy:
        warn_metrics.update(NOISY_METRICS)
    try:
        old = load_report(args.old)
        new = load_report(args.new)
        comparison = compare_reports(
            old, new, _parse_thresholds(args.threshold), warn_metrics=warn_metrics
        )
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(comparison, verbose=args.verbose))
    if comparison.ok:
        print("perf gate: OK")
        return 0
    if args.warn_only:
        print("perf gate: REGRESSED (warn-only mode, not failing the build)")
        return 0
    print("perf gate: REGRESSED")
    return 1


def _parse_sizes(raw: str, flag: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(s) for s in raw.split(",") if s)
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError
    except ValueError:
        print(
            f"error: {flag} expects positive integers, got {raw!r}",
            file=sys.stderr,
        )
        raise SystemExit(2) from None
    return sizes


def _cmd_micro(args: argparse.Namespace) -> int:
    sizes = _parse_sizes(args.sizes, "--sizes")
    batch_sizes = _parse_sizes(args.batch_sizes, "--batch-sizes")
    backend_sizes = _parse_sizes(args.backend_sizes, "--backend-sizes")
    repeats = max(1, args.repeats)
    scan_rows = run_micro(sizes, repeats=repeats)
    batch_rows = run_micro_batch(batch_sizes, repeats=repeats)
    backend_result = run_micro_backends(backend_sizes, repeats=repeats)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "scan": scan_rows,
                    "batch": batch_rows,
                    "backends": backend_result,
                },
                indent=1,
            )
        )
    else:
        print("cell-scan shapes (dict era vs columnar):")
        print(render_micro(scan_rows))
        print()
        print("batch-apply shapes (ObjectUpdate dataclass vs FlatUpdateBatch):")
        print(render_micro_batch(batch_rows))
        print()
        print("within-kernel per numeric backend (scalar loop vs numpy):")
        print(render_micro_backends(backend_result))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "micro":
        return _cmd_micro(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly with the
        # conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    sys.exit(code)
