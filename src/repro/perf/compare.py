"""The perf gate: diff two bench files against regression thresholds.

``repro.perf compare old.json new.json`` matches cases by ``case_id`` and
flags every metric whose *increase* exceeds its threshold (all suite
metrics are costs — lower is better).  Deterministic counters (cell scans)
carry tight thresholds; wall-clock carries a loose one because CI machines
are noisy.

Metrics can additionally be demoted to *advisory* (``--warn-metric`` /
``warn_metrics``): their regressions are reported as warnings but do not
fail the gate.  CI runs with the wall-clock metrics advisory and the
deterministic counters enforcing — the counters are byte-exact for a fixed
workload, so any growth there is a real algorithmic regression regardless
of runner noise.  The exit code is the contract:

* ``0`` — no enforced regression (or ``--warn-only``);
* ``1`` — at least one enforced metric regressed past its threshold, or a
  baseline case disappeared from the new run;
* ``2`` — the files could not be compared at all (schema mismatch,
  different scale or suite).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.perf.schema import BenchReport, SchemaError

#: default relative-increase thresholds per metric (0.05 = +5% fails).
DEFAULT_THRESHOLDS: dict[str, float] = {
    # Wall-clock is noisy on shared runners; only gross regressions fail.
    "wall_sec": 0.30,
    "process_sec": 0.30,
    # Cell scans are deterministic for a fixed workload: any growth beyond
    # rounding is a real algorithmic regression.
    "cell_scans": 0.02,
    "cell_accesses_per_query_per_ts": 0.02,
    # Delivered deltas (subscription_routing cases) are deterministic too:
    # growth means the per-query routing leaks traffic it should not.
    "deltas_delivered": 0.02,
    # Partition traffic (partition_scaling cases) is deterministic for a
    # fixed workload: growth means the halo/pull protocol ships rows or
    # round-trips it previously avoided.
    "partition_fanout_rows": 0.02,
    "partition_sync_rows": 0.02,
    "partition_pulls": 0.02,
    "partition_pull_objects": 0.02,
    "partition_migrations": 0.02,
    # Peak RSS is a coarse high-water mark.
    "peak_rss_kb": 0.30,
}

#: metrics below this baseline magnitude are skipped (relative deltas on
#: near-zero baselines are meaningless noise).
_MIN_BASELINE = {"wall_sec": 1e-3, "process_sec": 1e-3}

#: the wall-clock/RSS metrics CI demotes to advisory (runner noise); the
#: remaining suite metrics are deterministic counters and stay enforced.
NOISY_METRICS = ("wall_sec", "process_sec", "peak_rss_kb")


@dataclass(slots=True)
class Delta:
    """One compared metric of one case."""

    case_id: str
    metric: str
    old: float
    new: float
    threshold: float
    #: advisory deltas report but never fail the gate.
    advisory: bool = False

    @property
    def ratio(self) -> float:
        if self.old == 0:
            return float("inf") if self.new > 0 else 1.0
        return self.new / self.old

    @property
    def regressed(self) -> bool:
        floor = _MIN_BASELINE.get(self.metric, 0.0)
        if self.old < floor and self.new < floor:
            return False
        return self.ratio > 1.0 + self.threshold


@dataclass(slots=True)
class Comparison:
    """Full result of one bench-file diff."""

    deltas: list[Delta]
    missing_cases: list[str]
    new_cases: list[str]

    @property
    def regressions(self) -> list[Delta]:
        """Enforced regressions (they fail the gate)."""
        return [d for d in self.deltas if d.regressed and not d.advisory]

    @property
    def warnings(self) -> list[Delta]:
        """Advisory regressions (reported, never failing)."""
        return [d for d in self.deltas if d.regressed and d.advisory]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_cases


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    thresholds: dict[str, float] | None = None,
    warn_metrics: Iterable[str] = (),
) -> Comparison:
    """Diff ``new`` against the ``old`` baseline.

    Raises :class:`SchemaError` when the two files measure different
    things (scale or suite mismatch) — comparing them would be a category
    error, not a regression.
    """
    if old.scale != new.scale:
        raise SchemaError(
            f"scale mismatch: baseline ran at {old.scale}, new run at {new.scale}"
        )
    if old.suite != new.suite:
        raise SchemaError(
            f"suite mismatch: baseline ran {old.suite!r}, new run {new.suite!r}"
        )
    limits = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        limits.update(thresholds)
    advisory = frozenset(warn_metrics)

    new_by_id = {case.case_id: case for case in new.cases}
    deltas: list[Delta] = []
    missing: list[str] = []
    for old_case in old.cases:
        new_case = new_by_id.pop(old_case.case_id, None)
        if new_case is None:
            missing.append(old_case.case_id)
            continue
        for metric, threshold in limits.items():
            if metric not in old_case.metrics or metric not in new_case.metrics:
                continue
            deltas.append(
                Delta(
                    case_id=old_case.case_id,
                    metric=metric,
                    old=float(old_case.metrics[metric]),
                    new=float(new_case.metrics[metric]),
                    threshold=threshold,
                    advisory=metric in advisory,
                )
            )
    return Comparison(
        deltas=deltas, missing_cases=missing, new_cases=sorted(new_by_id)
    )


def render_comparison(comparison: Comparison, *, verbose: bool = False) -> str:
    """Human-readable diff summary (regressions always listed)."""
    lines: list[str] = []
    regressions = comparison.regressions
    warnings = comparison.warnings
    improvements = [
        d for d in comparison.deltas if not d.regressed and d.ratio < 1.0 - d.threshold
    ]
    lines.append(
        f"compared {len(comparison.deltas)} metric pairs: "
        f"{len(regressions)} regression(s), {len(warnings)} warning(s), "
        f"{len(improvements)} improvement(s) beyond threshold"
    )
    for delta in regressions:
        lines.append(
            f"  REGRESSION {delta.case_id} {delta.metric}: "
            f"{delta.old:g} -> {delta.new:g} "
            f"({(delta.ratio - 1.0) * 100.0:+.1f}%, limit +{delta.threshold * 100:.0f}%)"
        )
    for delta in warnings:
        lines.append(
            f"  WARNING {delta.case_id} {delta.metric}: "
            f"{delta.old:g} -> {delta.new:g} "
            f"({(delta.ratio - 1.0) * 100.0:+.1f}%, limit +{delta.threshold * 100:.0f}%, "
            "advisory)"
        )
    for case_id in comparison.missing_cases:
        lines.append(f"  MISSING baseline case disappeared: {case_id}")
    for case_id in comparison.new_cases:
        lines.append(f"  NEW case without baseline: {case_id}")
    shown = improvements if not verbose else comparison.deltas
    for delta in shown:
        if delta.regressed:
            continue
        lines.append(
            f"  {'improved' if delta.ratio < 1.0 else 'ok':>8} "
            f"{delta.case_id} {delta.metric}: {delta.old:g} -> {delta.new:g} "
            f"({(delta.ratio - 1.0) * 100.0:+.1f}%)"
        )
    return "\n".join(lines)
