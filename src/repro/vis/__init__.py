"""ASCII visualization of grids, partitions and influence regions.

No plotting dependency is available offline, so the library renders its
spatial structures as text — good enough to eyeball the conceptual
partitioning of Figure 3.1b, a query's influence region, or the object
density of a grid, directly in a terminal or a doctest.
"""

from repro.vis.ascii import (
    render_grid_occupancy,
    render_influence_region,
    render_partition,
)

__all__ = [
    "render_grid_occupancy",
    "render_influence_region",
    "render_partition",
]
