"""ASCII renderers for the library's spatial structures.

All renderers draw the grid with row 0 at the *bottom* (the paper counts
cells from the low-left corner), one character per cell.
"""

from __future__ import annotations

from repro.core.cpm import CPMMonitor
from repro.core.partition import DIRECTION_NAMES, DIRECTIONS, ConceptualPartition
from repro.grid.grid import Grid

#: density ramp for occupancy rendering.
_RAMP = " .:-=+*#%@"


def _frame(rows: list[str], cols: int) -> str:
    """Wrap cell rows (top row first) in a box frame."""
    top = "+" + "-" * cols + "+"
    body = [f"|{row}|" for row in rows]
    return "\n".join([top, *body, top])


def render_partition(partition: ConceptualPartition, max_level: int | None = None) -> str:
    """Draw the conceptual partitioning (Figure 3.1b).

    Core cells show ``q``; every other cell shows its owning direction
    letter, lowercase for even levels and uppercase for odd levels so the
    level bands are visible.

    >>> p = ConceptualPartition.around_cell((2, 2), 5, 5)
    >>> print(render_partition(p))  # doctest: +NORMALIZE_WHITESPACE
    +-----+
    |LUUUU|
    |LluuR|
    |LlqrR|
    |LddrR|
    |DDDDR|
    +-----+
    """
    rows: list[str] = []
    for j in reversed(range(partition.rows)):
        row = []
        for i in range(partition.cols):
            owner = partition.owner_of((i, j))
            if owner is None:
                row.append("q")
            else:
                direction, level = owner
                if max_level is not None and level > max_level:
                    row.append(" ")
                    continue
                letter = DIRECTION_NAMES[direction]
                row.append(letter.lower() if level % 2 == 0 else letter.upper())
        rows.append("".join(row))
    return _frame(rows, partition.cols)


def render_influence_region(monitor: CPMMonitor, qid: int) -> str:
    """Draw a query's influence region over its grid.

    ``Q`` marks the query cell, ``#`` the other influence-region cells,
    ``.`` visited-but-unmarked cells, spaces the rest.
    """
    grid = monitor.grid
    state = monitor.query_state(qid)
    marked = set(state.visit_cells[: state.marked_upto])
    visited = set(state.visit_cells)
    ref = state.strategy.reference_point()
    q_cell = grid.cell_of(ref[0], ref[1])
    rows: list[str] = []
    for j in reversed(range(grid.rows)):
        row = []
        for i in range(grid.cols):
            cell = (i, j)
            if cell == q_cell:
                row.append("Q")
            elif cell in marked:
                row.append("#")
            elif cell in visited:
                row.append(".")
            else:
                row.append(" ")
        rows.append("".join(row))
    return _frame(rows, grid.cols)


def render_grid_occupancy(grid: Grid) -> str:
    """Draw object density per cell with a 10-step character ramp."""
    peak = 1
    for j in range(grid.rows):
        for i in range(grid.cols):
            n = grid.cell_size(i, j)
            if n > peak:
                peak = n
    rows: list[str] = []
    for j in reversed(range(grid.rows)):
        row = []
        for i in range(grid.cols):
            n = grid.cell_size(i, j)
            if n == 0:
                row.append(" ")
            else:
                idx = min(len(_RAMP) - 1, 1 + (n * (len(_RAMP) - 2)) // peak)
                row.append(_RAMP[idx])
        rows.append("".join(row))
    return _frame(rows, grid.cols)


def partition_legend() -> str:
    """One-line legend for :func:`render_partition` output."""
    names = ", ".join(
        f"{DIRECTION_NAMES[d].lower()}/{DIRECTION_NAMES[d].upper()}"
        for d in DIRECTIONS
    )
    return f"q = query cell; {names} alternate by level (even/odd)"
