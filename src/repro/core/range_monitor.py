"""Continuous range monitoring via the CPM influence-list machinery.

Section 2 surveys a generation of systems (Q-index, MQM, Mobieyes, SINA)
built solely for *range* monitoring; Section 5 argues CPM's machinery is a
"general methodology that can be applied to several types of spatial
queries".  This module is the range-query instantiation: a continuous
range query's influence region is simply the fixed set of cells
intersecting its rectangle, so

* installation marks those cells and scans them once;
* update handling is pure influence-list filtering — an update touches a
  query only when its old or new cell is marked, and membership changes
  are decided from the update tuple alone (no grid access, ever);
* termination unmarks the cells.

This is strictly incremental (SINA's "positive/negative updates") with
CPM's book-keeping style, and it reuses the same :class:`repro.grid.Grid`
substrate, including cell-access accounting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.cell import CellCoord
from repro.grid.grid import Grid
from repro.grid.kernels import KernelBackend
from repro.grid.stats import GridStats
from repro.updates import ObjectUpdate


class _RangeQuery:
    __slots__ = ("cells", "members", "rect")

    def __init__(self, rect: Rect, cells: list[CellCoord]) -> None:
        self.rect = rect
        self.cells = cells
        self.members: set[int] = set()


class GridRangeMonitor:
    """Continuous range-query monitor over the shared grid substrate.

    Results are sets of object ids inside each query rectangle, kept
    exact under arbitrary object movement, appearance and disappearance.
    """

    name = "CPM-Range"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds, backend=backend)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds, backend=backend)
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, _RangeQuery] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    def reset_stats(self) -> None:
        self._grid.stats.reset()

    @property
    def object_count(self) -> int:
        return len(self._positions)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def influence_cells(self, qid: int) -> list[CellCoord]:
        """The (static) influence region: cells intersecting the range."""
        return list(self._queries[qid].cells)

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        if self._queries:
            raise RuntimeError(
                "bulk loading after query installation would corrupt results; "
                "send appearance updates instead"
            )
        for oid, (x, y) in objects:
            self._grid.insert(oid, x, y)
            self._positions[oid] = (x, y)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def install_range_query(self, qid: int, rect: Rect) -> set[int]:
        """Register a continuous range query; returns its initial result."""
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        cells = [
            coord
            for coord in self._grid.cells_in_rect(rect.x0, rect.y0, rect.x1, rect.y1)
        ]
        query = _RangeQuery(rect, cells)
        grid = self._grid
        rows = grid.rows
        contains = rect.contains_point
        for coord in cells:
            grid.add_mark(coord, qid)
            oids, xs, ys = grid.scan_all_flat(coord[0] * rows + coord[1])
            query.members.update(
                oid for oid, x, y in zip(oids, xs, ys) if contains(x, y)
            )
        self._queries[qid] = query
        return set(query.members)

    def remove_query(self, qid: int) -> None:
        query = self._queries.pop(qid)
        for coord in query.cells:
            self._grid.remove_mark(coord, qid)

    def result(self, qid: int) -> set[int]:
        """Current members of the range (a copy)."""
        return set(self._queries[qid].members)

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def process(self, object_updates: Sequence[ObjectUpdate]) -> set[int]:
        """Apply one cycle of object updates; returns changed query ids.

        Never scans a cell: membership transitions are decided entirely
        from the update tuples and the influence marks — the best case of
        the CPM methodology (range results need no re-computation).
        """
        grid = self._grid
        queries = self._queries
        changed: set[int] = set()
        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None:
                old_cell = grid.delete(oid, old[0], old[1])
                for qid in grid.marks(old_cell):
                    query = queries[qid]
                    if oid in query.members and (
                        new is None or not query.rect.contains_point(new[0], new[1])
                    ):
                        query.members.discard(oid)
                        changed.add(qid)
            if new is not None:
                new_cell = grid.insert(oid, new[0], new[1])
                self._positions[oid] = new
                for qid in grid.marks(new_cell):
                    query = queries[qid]
                    if oid not in query.members and query.rect.contains_point(
                        new[0], new[1]
                    ):
                        query.members.add(oid)
                        changed.add(qid)
            else:
                self._positions.pop(oid, None)
        return changed
