"""The paper's primary contribution: Conceptual Partitioning Monitoring.

Modules:

* :mod:`repro.core.partition` — the conceptual space partitioning of
  Figure 3.1b: direction rectangles ``U/D/L/R`` at increasing levels tiling
  the grid around the query's cell (or, for aggregate queries, around the
  cell block covered by the MBR of the query points).
* :mod:`repro.core.heap` — the search heap ``H`` holding mixed cell and
  rectangle entries keyed by ``mindist``.
* :mod:`repro.core.neighbors` — the ``best_NN`` list (k best ``(dist, oid)``
  pairs with total ``(dist, oid)`` ordering).
* :mod:`repro.core.strategies` — per-query geometry: point NN, aggregate NN
  (sum/min/max, Section 5) and constrained NN (Figure 5.3).
* :mod:`repro.core.bookkeeping` — per-query state: visit list, leftover
  heap, result, ``best_dist`` and the marked-prefix influence-list
  invariant.
* :mod:`repro.core.cpm` — the CPM monitor itself: NN computation
  (Figure 3.4), NN re-computation (Figure 3.6), batched update handling
  (Figure 3.8) and the monitoring loop (Figure 3.9).
"""

from repro.core.cpm import CPMMonitor
from repro.core.metrics_ext import MinkowskiNNStrategy
from repro.core.neighbors import NeighborList
from repro.core.range_monitor import GridRangeMonitor
from repro.core.partition import (
    DIRECTION_NAMES,
    DIRECTIONS,
    DOWN,
    LEFT,
    RIGHT,
    UP,
    ConceptualPartition,
)
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    PointNNStrategy,
    QueryStrategy,
)

__all__ = [
    "CPMMonitor",
    "ConceptualPartition",
    "GridRangeMonitor",
    "MinkowskiNNStrategy",
    "DIRECTIONS",
    "DIRECTION_NAMES",
    "DOWN",
    "LEFT",
    "NeighborList",
    "PointNNStrategy",
    "AggregateNNStrategy",
    "ConstrainedStrategy",
    "QueryStrategy",
    "RIGHT",
    "UP",
]
