"""The ``best_NN`` list: the k best neighbors found so far.

The paper implements ``best_NN`` as a red-black tree so that probing an
object against the result costs ``log k`` (Section 4.1).  In Python a sorted
list with ``bisect`` gives the same asymptotics with far smaller constants
for the paper's k range (1..256).

Ordering is total on ``(distance, object id)`` so that distance ties resolve
deterministically — every monitor in this library uses the same order, which
lets the equivalence tests compare results exactly.
"""

from __future__ import annotations

import math
from bisect import insort

ResultEntry = tuple[float, int]

_INF = math.inf


class NeighborList:
    """Capacity-bounded sorted list of ``(dist, oid)`` pairs.

    Holds at most ``k`` entries; :meth:`add` keeps the k best seen.  During
    CPM update handling entries are also removed (outgoing NNs) and re-keyed
    (NNs that moved within ``best_dist``), temporarily leaving the list
    under-full until the merge/re-computation step refills it.
    """

    __slots__ = ("k", "_dists", "_entries")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._entries: list[ResultEntry] = []
        self._dists: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: int) -> bool:
        return oid in self._dists

    def __iter__(self):
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.k

    @property
    def kth_dist(self) -> float:
        """Distance of the k-th neighbor — the ``best_dist`` of Table 3.1.

        ``inf`` while fewer than k neighbors are known, so that search
        pruning (``mindist >= best_dist``) naturally keeps going.
        """
        if len(self._entries) < self.k:
            return _INF
        return self._entries[self.k - 1][0]

    def dist_of(self, oid: int) -> float:
        """Current stored distance of a member (KeyError when absent)."""
        return self._dists[oid]

    def entries(self) -> list[ResultEntry]:
        """Copy of the entries in ascending ``(dist, oid)`` order."""
        return list(self._entries)

    def worst(self) -> ResultEntry:
        """The current k-th (last) entry (IndexError when empty)."""
        return self._entries[-1]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add(self, dist: float, oid: int) -> bool:
        """Offer a candidate; keep it if it is among the k best so far.

        Returns ``True`` when the candidate entered the list.  The candidate
        must not already be a member (update handling re-keys members with
        :meth:`update_dist` instead).
        """
        if oid in self._dists:
            raise KeyError(f"object {oid} already in the neighbor list")
        entry = (dist, oid)
        if len(self._entries) < self.k:
            insort(self._entries, entry)
            self._dists[oid] = dist
            return True
        if entry < self._entries[-1]:
            evicted = self._entries.pop()
            del self._dists[evicted[1]]
            insort(self._entries, entry)
            self._dists[oid] = dist
            return True
        return False

    def update_dist(self, oid: int, new_dist: float) -> None:
        """Re-key a member after it moved ("update the order in best_NN").

        An unchanged distance (the object slid along an iso-distance
        circle) skips the remove/insort pair outright.
        """
        old = self._dists[oid]
        if old == new_dist:
            return
        self._entries.remove((old, oid))
        insort(self._entries, (new_dist, oid))
        self._dists[oid] = new_dist

    def remove(self, oid: int) -> float:
        """Evict a member (an outgoing NN); returns its stored distance."""
        old = self._dists.pop(oid)
        self._entries.remove((old, oid))
        return old

    def discard(self, oid: int) -> bool:
        """Remove ``oid`` if present; returns whether it was a member."""
        if oid not in self._dists:
            return False
        self.remove(oid)
        return True

    def replace(self, entries: list[ResultEntry]) -> None:
        """Reset the list to the k best of ``entries`` (deduplicated ids)."""
        best: dict[int, float] = {}
        for dist, oid in entries:
            cur = best.get(oid)
            if cur is None or dist < cur:
                best[oid] = dist
        ordered = sorted((dist, oid) for oid, dist in best.items())
        self._entries = ordered[: self.k]
        self._dists = {oid: dist for dist, oid in self._entries}

    def clear(self) -> None:
        self._entries.clear()
        self._dists.clear()

    def reconfigure(self, k: int) -> None:
        """Clear and change capacity (scratch-buffer recycling)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = ", ".join(f"{oid}@{dist:.4g}" for dist, oid in self._entries[:4])
        extra = "..." if len(self._entries) > 4 else ""
        return f"NeighborList(k={self.k}, [{shown}{extra}])"
