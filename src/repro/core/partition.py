"""Conceptual partitioning of the grid around a query (Figure 3.1b).

The cells around the query cell ``c_q`` are organized into direction
rectangles.  "Each rectangle *rect* is defined by a direction and a level
number.  The direction could be U, D, L, or R (for up, down, left and right)
depending on the relative position of *rect* with respect to q.  The level
number indicates the number of rectangles between *rect* and ``c_q``."

We realize the partition as a *pinwheel*: the level-``l`` rectangle of each
direction is a one-cell-thick arm of the square ring at Chebyshev distance
``l + 1`` from the core block, each arm claiming exactly one ring corner so
the four arms tile the ring without overlap:

* ``U_l``: row ``j_hi + l + 1``, columns ``[i_lo - l,     i_hi + l + 1]``
* ``R_l``: column ``i_hi + l + 1``, rows ``[j_lo - l - 1, j_hi + l]``
* ``D_l``: row ``j_lo - l - 1``, columns ``[i_lo - l - 1, i_hi + l]``
* ``L_l``: column ``i_lo - l - 1``, rows ``[j_lo - l,     j_hi + l + 1]``

where ``[i_lo..i_hi] x [j_lo..j_hi]`` is the *core block*: the single query
cell for plain NN queries, or the cells covered by the MBR ``M`` of the
query points for aggregate queries (Section 5, Figure 5.1a).

Because every arm spans the core's projection on its axis, the minimum
distance from the query to ``DIR_l`` is a pure perpendicular distance, which
yields Lemma 3.1 exactly: ``mindist(DIR_{l+1}, q) = mindist(DIR_l, q) + δ``
(and Corollaries 5.1/5.2 for aggregate distances).

Rectangles are clipped to the grid; a direction is exhausted once its strip
coordinate leaves the grid, after which no higher level in that direction
exists.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.grid.cell import CellCoord

UP, RIGHT, DOWN, LEFT = range(4)
DIRECTIONS: tuple[int, int, int, int] = (UP, RIGHT, DOWN, LEFT)
DIRECTION_NAMES: tuple[str, str, str, str] = ("U", "R", "D", "L")


class ConceptualPartition:
    """Pinwheel tiling of a ``cols x rows`` grid around a core cell block.

    Args:
        i_lo, i_hi: inclusive column range of the core block.
        j_lo, j_hi: inclusive row range of the core block.
        cols, rows: grid dimensions.
    """

    __slots__ = ("cols", "i_hi", "i_lo", "j_hi", "j_lo", "rows")

    def __init__(
        self, i_lo: int, i_hi: int, j_lo: int, j_hi: int, cols: int, rows: int
    ) -> None:
        if not (0 <= i_lo <= i_hi < cols and 0 <= j_lo <= j_hi < rows):
            raise ValueError(
                f"core block ({i_lo}..{i_hi}, {j_lo}..{j_hi}) does not fit a "
                f"{cols}x{rows} grid"
            )
        self.i_lo = i_lo
        self.i_hi = i_hi
        self.j_lo = j_lo
        self.j_hi = j_hi
        self.cols = cols
        self.rows = rows

    @classmethod
    def around_cell(cls, cell: CellCoord, cols: int, rows: int) -> "ConceptualPartition":
        """Partition around a single query cell (the plain-NN case)."""
        i, j = cell
        return cls(i, i, j, j, cols, rows)

    # ------------------------------------------------------------------
    # Levels
    # ------------------------------------------------------------------

    def max_level(self, direction: int) -> int:
        """Highest valid level of ``direction`` (−1 when none exists)."""
        if direction == UP:
            return self.rows - 2 - self.j_hi
        if direction == RIGHT:
            return self.cols - 2 - self.i_hi
        if direction == DOWN:
            return self.j_lo - 1
        if direction == LEFT:
            return self.i_lo - 1
        raise ValueError(f"unknown direction {direction}")

    def exists(self, direction: int, level: int) -> bool:
        """Whether rectangle ``DIR_level`` has at least one grid cell."""
        return 0 <= level <= self.max_level(direction)

    # ------------------------------------------------------------------
    # Cell enumeration
    # ------------------------------------------------------------------

    def strip_cell_range(
        self, direction: int, level: int
    ) -> tuple[int, int, int, int]:
        """Clipped inclusive cell range ``(i0, i1, j0, j1)`` of ``DIR_level``.

        Raises ``ValueError`` when the rectangle does not exist.
        """
        if not self.exists(direction, level):
            raise ValueError(
                f"rectangle {DIRECTION_NAMES[direction]}_{level} is outside the grid"
            )
        if direction == UP:
            j = self.j_hi + level + 1
            return (max(0, self.i_lo - level), min(self.cols - 1, self.i_hi + level + 1), j, j)
        if direction == RIGHT:
            i = self.i_hi + level + 1
            return (i, i, max(0, self.j_lo - level - 1), min(self.rows - 1, self.j_hi + level))
        if direction == DOWN:
            j = self.j_lo - level - 1
            return (max(0, self.i_lo - level - 1), min(self.cols - 1, self.i_hi + level), j, j)
        # LEFT
        i = self.i_lo - level - 1
        return (i, i, max(0, self.j_lo - level), min(self.rows - 1, self.j_hi + level + 1))

    def strip_cells(self, direction: int, level: int) -> Iterator[CellCoord]:
        """Cells of rectangle ``DIR_level`` (clipped to the grid)."""
        i0, i1, j0, j1 = self.strip_cell_range(direction, level)
        if j0 == j1:  # horizontal arm (U or D)
            for i in range(i0, i1 + 1):
                yield (i, j0)
        else:  # vertical arm (L or R)
            for j in range(j0, j1 + 1):
                yield (i0, j)

    def strip_cell_count(self, direction: int, level: int) -> int:
        """Number of grid cells in rectangle ``DIR_level``."""
        i0, i1, j0, j1 = self.strip_cell_range(direction, level)
        return (i1 - i0 + 1) * (j1 - j0 + 1)

    def core_cells(self) -> Iterator[CellCoord]:
        """Cells of the core block (just ``c_q`` for plain NN queries)."""
        for i in range(self.i_lo, self.i_hi + 1):
            for j in range(self.j_lo, self.j_hi + 1):
                yield (i, j)

    def core_cell_count(self) -> int:
        return (self.i_hi - self.i_lo + 1) * (self.j_hi - self.j_lo + 1)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def owner_of(self, cell: CellCoord) -> tuple[int, int] | None:
        """Return ``(direction, level)`` of the rectangle owning ``cell``.

        Returns ``None`` for core-block cells.  Used by tests to verify that
        the rectangles tile the grid exactly once.
        """
        i, j = cell
        if not (0 <= i < self.cols and 0 <= j < self.rows):
            raise ValueError(f"cell {cell} outside the grid")
        in_core_i = self.i_lo <= i <= self.i_hi
        in_core_j = self.j_lo <= j <= self.j_hi
        if in_core_i and in_core_j:
            return None
        # Candidate levels by perpendicular offset from the core block.
        candidates: list[tuple[int, int]] = []
        if j > self.j_hi:
            candidates.append((UP, j - self.j_hi - 1))
        if i > self.i_hi:
            candidates.append((RIGHT, i - self.i_hi - 1))
        if j < self.j_lo:
            candidates.append((DOWN, self.j_lo - j - 1))
        if i < self.i_lo:
            candidates.append((LEFT, self.i_lo - i - 1))
        owners = [
            (direction, level)
            for direction, level in candidates
            if self._strip_contains(direction, level, cell)
        ]
        if len(owners) != 1:  # pragma: no cover - guarded by property tests
            raise AssertionError(f"cell {cell} owned by {owners}")
        return owners[0]

    def _strip_contains(self, direction: int, level: int, cell: CellCoord) -> bool:
        if not self.exists(direction, level):
            return False
        i0, i1, j0, j1 = self.strip_cell_range(direction, level)
        i, j = cell
        return i0 <= i <= i1 and j0 <= j <= j1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConceptualPartition(core=({self.i_lo}..{self.i_hi}, "
            f"{self.j_lo}..{self.j_hi}), grid={self.cols}x{self.rows})"
        )
