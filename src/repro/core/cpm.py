"""The CPM continuous monitoring algorithm (Section 3).

The monitor owns the grid ``G``, the query table ``QT`` and the full
processing pipeline:

* **NN computation** (Figure 3.4) — best-first search over the conceptual
  partitioning; processes the minimal set of cells (those intersecting the
  circle with radius ``best_dist``) and leaves behind the visit list, the
  residual search heap and the influence-list marks.
* **NN re-computation** (Figure 3.6) — re-runs an affected query by
  re-scanning the visit list sequentially (O(1) "get next" instead of heap
  operations) and only then resuming the residual heap.
* **Update handling** (Figure 3.8) — batch processing of a cycle's object
  updates.  Only queries whose influence region intersects an updated cell
  are touched; if the k best incomers (``in_list``) outnumber the outgoing
  NNs (``out_count``) the new result is assembled *without accessing the
  grid*, otherwise re-computation runs.
* **NN monitoring** (Figure 3.9) — the per-cycle driver: object updates
  first (ignoring queries that received updates), then query terminations,
  movements (termination + re-insertion) and insertions.

Query generality (Section 5): any :class:`repro.core.strategies.QueryStrategy`
can be installed, so the same engine monitors point NN, aggregate NN
(sum/min/max) and constrained queries.

Ablation/robustness switches (see DESIGN.md):

* ``reuse_bookkeeping=False`` — the paper's low-memory fallback: drop the
  visit list/heap and recompute affected queries from scratch.
* ``merge_optimization=False`` — disable the Section 3.3 batch enhancement;
  any outgoing NN triggers re-computation as in the single-update
  processing of Section 3.2.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Iterable, Sequence
from heapq import heappop
from math import hypot, inf as _INF

from repro.core.bookkeeping import CycleScratch, QueryState
from repro.core.heap import CELL
from repro.core.partition import DIRECTIONS
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    PointNNStrategy,
    QueryStrategy,
)
from repro.geometry.aggregates import AggregateFunction
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind


class CPMMonitor(ContinuousMonitor):
    """Conceptual Partitioning Monitoring over a main-memory grid."""

    name = "CPM"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        reuse_bookkeeping: bool = True,
        merge_optimization: bool = True,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds)
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, QueryState] = {}
        # Recycled CycleScratch instances (see CycleScratch.reset): the
        # steady-state update loop allocates no per-cycle scratch objects.
        self._scratch_pool: list[CycleScratch] = []
        self.reuse_bookkeeping = reuse_bookkeeping
        self.merge_optimization = merge_optimization

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        """The underlying object grid ``G`` (read-only use by callers)."""
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    @property
    def object_count(self) -> int:
        return len(self._positions)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def query_state(self, qid: int) -> QueryState:
        """Book-keeping of a query (tests, diagnostics, space accounting)."""
        return self._queries[qid]

    def best_dist(self, qid: int) -> float:
        """Distance of the query's k-th neighbor (``inf`` when under-full)."""
        return self._queries[qid].best_dist

    def influence_cells(self, qid: int) -> list[tuple[int, int]]:
        """Cells currently in the query's influence region (marked cells)."""
        return self._queries[qid].influence_cells()

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Bulk-load the initial object set.

        Only valid before any query is installed — afterwards objects must
        arrive as appearance updates so that results stay consistent.
        """
        if self._queries:
            raise RuntimeError(
                "bulk loading after query installation would corrupt results; "
                "send appearance updates instead"
            )
        for oid, (x, y) in objects:
            self._grid.insert(oid, x, y)
            self._positions[oid] = (x, y)

    # ------------------------------------------------------------------
    # Query installation (Figure 3.4)
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        """Register a plain point k-NN query."""
        return self.install_strategy_query(qid, PointNNStrategy(point[0], point[1]), k)

    def install_ann_query(
        self,
        qid: int,
        points: Sequence[Point],
        k: int = 1,
        fn: str | AggregateFunction = "sum",
    ) -> list[ResultEntry]:
        """Register an aggregate NN query over ``points`` (Section 5)."""
        return self.install_strategy_query(qid, AggregateNNStrategy(points, fn), k)

    def install_constrained_query(
        self, qid: int, point: Point, region: Rect, k: int = 1
    ) -> list[ResultEntry]:
        """Register a constrained NN query (Figure 5.3)."""
        strategy = ConstrainedStrategy(PointNNStrategy(point[0], point[1]), region)
        return self.install_strategy_query(qid, strategy, k)

    def install_strategy_query(
        self, qid: int, strategy: QueryStrategy, k: int = 1
    ) -> list[ResultEntry]:
        """Register a query with an arbitrary geometry strategy."""
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        state = QueryState(qid, strategy, k, strategy.partition(self._grid))
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)
        self._queries[qid] = state
        return state.result_entries()

    def remove_query(self, qid: int) -> None:
        """Terminate a query: drop its QT entry and influence marks."""
        state = self._queries.pop(qid)
        state.unmark_all(self._grid)

    def result(self, qid: int) -> list[ResultEntry]:
        return self._queries[qid].result_entries()

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------

    def _seed_heap(self, state: QueryState) -> None:
        """Lines 3-5 of Figure 3.4: en-heap the core cells and the level-0
        rectangle of each direction."""
        grid = self._grid
        strategy = state.strategy
        heap = state.heap
        partition = state.partition
        if state.is_point:
            # Plain point NN: mindist computed inline, no constraint filter.
            qx = state.qx
            qy = state.qy
            mindist = grid.mindist_xy
            for i, j in partition.core_cells():
                heap.push_cell(mindist(i, j, qx, qy), i, j)
        else:
            for i, j in partition.core_cells():
                if strategy.cell_allowed(grid, i, j):
                    heap.push_cell(strategy.cell_key(grid, i, j), i, j)
        for direction in DIRECTIONS:
            if partition.exists(direction, 0):
                heap.push_rect(
                    strategy.strip_key0(grid, partition, direction), direction, 0
                )

    def _run_search(self, state: QueryState) -> None:
        """The de-heaping loop of Figure 3.4 (also the heap continuation of
        Figure 3.6): process entries in ascending key order until the next
        key is ``>= best_dist`` (``kth_dist`` is ``inf`` while under-full,
        so the comparison never stops an unfinished search).

        De-heaped cells run lines 10-12 of Figure 3.4 inline: scan the
        cell, update ``best_NN``, insert the query into the cell's
        influence list, extend the visit list.  For plain point queries the
        best-NN insertion (the semantics of ``NeighborList.add``) is
        likewise inlined against the live entry/distance containers — this
        is the hottest loop of the library.
        """
        grid = self._grid
        strategy = state.strategy
        heap = state.heap
        nn = state.nn
        partition = state.partition
        step = strategy.level_step(grid)
        is_point = state.is_point
        qx = state.qx
        qy = state.qy
        qid = state.qid
        mindist = grid.mindist_xy
        scan = grid.scan
        add_mark_id = grid.add_mark_id
        rows = grid.rows
        visit_cells = state.visit_cells
        visit_keys = state.visit_keys
        # The NN list identity is stable here: the search only inserts (in
        # place); replace() — which rebinds — never runs during a search.
        heap_list = heap._heap
        entries = nn._entries
        dists = nn._dists
        k = nn.k
        n_cur = len(entries)
        kd = entries[k - 1][0] if n_cur >= k else _INF
        while heap_list:
            if heap_list[0][0] >= kd:
                break
            key, _seq, kind, a, b = heappop(heap_list)
            if kind == CELL:
                cell = scan(a, b)
                if cell:
                    if is_point:
                        for oid, pt in cell.items():
                            d = hypot(pt[0] - qx, pt[1] - qy)
                            # Pre-filter on the k-th distance: candidates
                            # beyond it can never enter; ties resolve by
                            # (dist, oid) entry order exactly as add().
                            if d <= kd:
                                if n_cur < k:
                                    insort(entries, (d, oid))
                                    dists[oid] = d
                                    n_cur += 1
                                    if n_cur == k:
                                        kd = entries[k - 1][0]
                                else:
                                    entry = (d, oid)
                                    last = entries[-1]
                                    if entry < last:
                                        entries.pop()
                                        del dists[last[1]]
                                        insort(entries, entry)
                                        dists[oid] = d
                                        kd = entries[k - 1][0]
                    else:
                        for oid, (x, y) in cell.items():
                            if strategy.accepts(x, y):
                                nn.add(strategy.dist(x, y), oid)
                        n_cur = len(entries)
                        kd = entries[k - 1][0] if n_cur >= k else _INF
                add_mark_id(a * rows + b, qid)
                visit_cells.append((a, b))
                visit_keys.append(key)
                state.marked_upto = len(visit_cells)
            else:
                direction, level = a, b
                if is_point:
                    for i, j in partition.strip_cells(direction, level):
                        heap.push_cell(mindist(i, j, qx, qy), i, j)
                else:
                    for i, j in partition.strip_cells(direction, level):
                        if strategy.cell_allowed(grid, i, j):
                            heap.push_cell(strategy.cell_key(grid, i, j), i, j)
                if partition.exists(direction, level + 1):
                    heap.push_rect(key + step, direction, level + 1)

    def _recompute(self, state: QueryState) -> None:
        """NN re-computation (Figure 3.6): rescan the visit list first, then
        resume the residual heap."""
        grid = self._grid
        nn = state.nn
        nn.clear()
        visit_cells = state.visit_cells
        visit_keys = state.visit_keys
        scan = grid.scan
        qid = state.qid
        is_point = state.is_point
        qx = state.qx
        qy = state.qy
        strategy = state.strategy
        pos = 0
        total = len(visit_cells)
        entries = nn._entries
        dists = nn._dists
        k = nn.k
        n_cur = 0
        kd = _INF  # the list was just cleared; under-full never stops a scan
        while pos < total:
            if visit_keys[pos] >= kd:
                break
            i, j = visit_cells[pos]
            cell = scan(i, j)
            if cell:
                if is_point:
                    for oid, pt in cell.items():
                        d = hypot(pt[0] - qx, pt[1] - qy)
                        if d <= kd:
                            # Inline best-NN insertion (same semantics as
                            # NeighborList.add, see _run_search).
                            if n_cur < k:
                                insort(entries, (d, oid))
                                dists[oid] = d
                                n_cur += 1
                                if n_cur == k:
                                    kd = entries[k - 1][0]
                            else:
                                entry = (d, oid)
                                last = entries[-1]
                                if entry < last:
                                    entries.pop()
                                    del dists[last[1]]
                                    insort(entries, entry)
                                    dists[oid] = d
                                    kd = entries[k - 1][0]
                else:
                    for oid, (x, y) in cell.items():
                        if strategy.accepts(x, y):
                            nn.add(strategy.dist(x, y), oid)
                    kd = nn.kth_dist
            if pos >= state.marked_upto:
                grid.add_mark((i, j), qid)
                state.marked_upto = pos + 1
            pos += 1
        if pos == total:
            # The whole visit list was consumed; the residual heap holds the
            # frontier (its minimum key is >= every visit-list key).
            self._run_search(state)
            pos = state.visit_length
        state.best_dist = nn.kth_dist
        state.reconcile_marks(grid, processed_upto=pos)

    def _recompute_from_scratch(self, state: QueryState) -> None:
        """Low-memory / ablation path: forget the book-keeping and run the
        full NN computation again (Section 3.3, last paragraph)."""
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        state.nn.clear()
        state.best_dist = float("inf")
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)

    def drop_bookkeeping(self, qid: int) -> None:
        """Manually shed a query's visit list and heap to free memory; the
        query keeps being monitored, falling back to computation from
        scratch on its next re-computation."""
        state = self._queries[qid]
        marked = state.influence_cells()
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        # The influence marks must survive — update filtering depends on
        # them — so re-mark the same cells through a synthetic visit list
        # (sorted by key, preserving the ascending-key invariant).
        keyed = sorted(
            (state.strategy.cell_key(self._grid, i, j), (i, j)) for i, j in marked
        )
        for key, coord in keyed:
            state.append_visit(key, coord)
            self._grid.add_mark(coord, qid)
        state.marked_upto = state.visit_length

    # ------------------------------------------------------------------
    # Update handling (Figures 3.8 and 3.9)
    # ------------------------------------------------------------------

    def _acquire_scratch(self, state: QueryState) -> CycleScratch:
        """Pooled CycleScratch (recycled across cycles, see Figure 3.8).

        Scratch acquisition is the first touch of a query within a cycle
        and always precedes the first mutation of its NN list, so this is
        where the pre-cycle result is captured — the exact reference for
        change detection (``CycleScratch.before``) and delta reporting.
        """
        pool = self._scratch_pool
        if pool:
            sc = pool.pop()
            sc.reset(state.k)
        else:
            sc = CycleScratch(state.k)
        before = state.nn.entries()
        sc.before = before
        log = self._delta_log
        if log is not None and state.qid not in log:
            log[state.qid] = before
        return sc

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ):
        """Targeted-capture delta reporting: only touched queries pay."""
        return self._process_deltas_captured(object_updates, query_updates)

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        grid = self._grid
        queries = self._queries
        positions = self._positions
        # "Queries that receive updates are ignored when handling object
        # updates in order to avoid waste of computations" (Section 3.3).
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, CycleScratch] = {}
        cell_id = grid.cell_id
        scratch_get = scratch.get
        # Inlined cell addressing (same float ops as Grid.cell_id) and the
        # live mark store: one multiply-add + one index per influence probe.
        marks_store = grid._marks
        bounds = grid.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        delta = grid.delta
        cols = grid.cols
        rows = grid.rows
        cols_1 = cols - 1
        rows_1 = rows - 1

        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None and new is not None:
                i = int((old[0] - bx0) / delta)
                if i < 0:
                    i = 0
                elif i > cols_1:
                    i = cols_1
                j = int((old[1] - by0) / delta)
                if j < 0:
                    j = 0
                elif j > rows_1:
                    j = rows_1
                old_cid = i * rows + j
                nx = new[0]
                ny = new[1]
                i = int((nx - bx0) / delta)
                if i < 0:
                    i = 0
                elif i > cols_1:
                    i = cols_1
                j = int((ny - by0) / delta)
                if j < 0:
                    j = 0
                elif j > rows_1:
                    j = rows_1
                new_cid = i * rows + j
                if old_cid == new_cid:
                    # Same-cell move (the common case at coarse grids): one
                    # hash-table store and one influence probe instead of a
                    # delete/insert pair touching the mark set twice.  The
                    # combined loop below is exactly the delete-phase
                    # followed by the insert-phase of Figure 3.8 for a cell
                    # whose mark set is probed once.
                    grid.relocate_at(old_cid, oid, new)
                    positions[oid] = new
                    ms = marks_store[old_cid]
                    if ms:
                        for qid in ms:
                            if qid in updated_qids:
                                continue
                            state = queries[qid]
                            sc = scratch_get(qid)
                            if state.is_point:
                                d = hypot(nx - state.qx, ny - state.qy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if oid in state.nn._dists:
                                if sc is None:
                                    sc = scratch[qid] = self._acquire_scratch(state)
                                if ok and d <= state.best_dist:
                                    # p remains in the NN set; update order.
                                    state.nn.update_dist(oid, d)
                                    sc.note_reorder()
                                else:
                                    state.nn.remove(oid)
                                    sc.note_outgoing()
                            else:
                                if sc is not None and oid in sc.in_list._dists:
                                    # Pending incomer moved again in-cycle.
                                    sc.in_list.remove(oid)
                                if ok and d <= state.best_dist:
                                    if sc is None:
                                        sc = scratch[qid] = self._acquire_scratch(
                                            state
                                        )
                                    sc.note_incomer(d, oid)
                    continue
                # Cross-cell move: delete phase on the old cell...
                grid.delete_at(old_cid, oid)
                ms = marks_store[old_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state = queries[qid]
                        sc = scratch_get(qid)
                        if oid in state.nn._dists:
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            if state.is_point:
                                d = hypot(nx - state.qx, ny - state.qy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if ok and d <= state.best_dist:
                                # p remains in the NN set; update the order.
                                state.nn.update_dist(oid, d)
                                sc.note_reorder()
                            else:
                                # p is an outgoing NN (moved beyond
                                # best_dist or left the constraint region).
                                state.nn.remove(oid)
                                sc.note_outgoing()
                        elif sc is not None and oid in sc.in_list._dists:
                            # A pending incomer moved again within this cycle.
                            sc.in_list.remove(oid)
                # ... then insert phase on the new cell.
                grid.insert_at(new_cid, oid, new)
                positions[oid] = new
                ms = marks_store[new_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state = queries[qid]
                        if oid in state.nn._dists:
                            continue
                        if state.is_point:
                            d = hypot(nx - state.qx, ny - state.qy)
                        else:
                            if not state.strategy.accepts(nx, ny):
                                continue
                            d = state.strategy.dist(nx, ny)
                        if d <= state.best_dist:
                            sc = scratch_get(qid)
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            sc.note_incomer(d, oid)
                continue
            if old is not None:
                # Disappearance: off-line NNs are outgoing ones (Section 4.2).
                old_cid = cell_id(old[0], old[1])
                grid.delete_at(old_cid, oid)
                ms = marks_store[old_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state = queries[qid]
                        sc = scratch_get(qid)
                        if oid in state.nn._dists:
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            state.nn.remove(oid)
                            sc.note_outgoing()
                        elif sc is not None and oid in sc.in_list._dists:
                            sc.in_list.remove(oid)
                positions.pop(oid, None)
                continue
            # Appearance (old is None; both None is rejected by ObjectUpdate).
            assert new is not None
            new_cid = cell_id(new[0], new[1])
            grid.insert_at(new_cid, oid, new)
            positions[oid] = new
            ms = marks_store[new_cid]
            if ms:
                nx = new[0]
                ny = new[1]
                for qid in ms:
                    if qid in updated_qids:
                        continue
                    state = queries[qid]
                    if oid in state.nn._dists:
                        continue
                    if state.is_point:
                        d = hypot(nx - state.qx, ny - state.qy)
                    else:
                        if not state.strategy.accepts(nx, ny):
                            continue
                        d = state.strategy.dist(nx, ny)
                    if d <= state.best_dist:
                        sc = scratch_get(qid)
                        if sc is None:
                            sc = scratch[qid] = self._acquire_scratch(state)
                        sc.note_incomer(d, oid)

        changed: set[int] = set()
        for qid, sc in scratch.items():
            if sc.touched:
                state = queries[qid]
                self._finalize_query(state, sc)
                # Exact change detection against the pre-cycle result: a
                # NN that leaves and returns (or re-keys back) to the same
                # distance within one cycle is correctly a no-op.
                if state.nn.entries() != sc.before:
                    changed.add(qid)
        self._scratch_pool.extend(scratch.values())

        # Figure 3.9 lines 5-9: terminations first within each update, then
        # (re-)insertions.
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                changed.discard(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                self.remove_query(qu.qid)
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
        return changed

    def _finalize_query(self, state: QueryState, sc: CycleScratch) -> None:
        """Lines 17-24 of Figure 3.8: merge when the incomers can replace
        the outgoing NNs, otherwise re-compute."""
        if self.merge_optimization:
            can_merge = len(sc.in_list) >= sc.out_count
        else:
            # Ablation: Section 3.2 single-update semantics — any outgoing
            # NN forces a re-computation.
            can_merge = sc.out_count == 0
        if can_merge:
            merged = state.nn.entries() + sc.in_list.entries()
            state.nn.replace(merged)
            new_best = state.nn.kth_dist
            assert new_best <= state.best_dist or state.best_dist == float("inf")
            state.best_dist = new_best
            # The influence region can only shrink here (Section 3.3).
            state.reconcile_marks(self._grid, processed_upto=state.marked_upto)
        elif self.reuse_bookkeeping:
            self._recompute(state)
        else:
            self._recompute_from_scratch(state)
